"""The paper's named ILM patterns: imploding and exploding stars (§2.1).

* **Imploding star** — "information from all the domains in the datagrid is
  finally pulled towards this domain" (the BBSRC-CCLRC archiver). Built as
  an :class:`~repro.ilm.policy.ILMPolicy` from the archiver domain's point
  of view: archive everything not yet archived, trim source copies once
  the domain value has decayed, and eventually let retention expire.

* **Exploding star** — "information is pushed or replicated outside the
  domain of its creation … replicated in stages at different tiers across
  the globe" (CERN CMS). Built as an explicit DGL flow: per object, a
  sequential chain of tiers, each tier a parallel fan-out of replications.
  Because the DGMS selects the *nearest* source replica, tier-2 copies pull
  from their tier-1 parents, not from the center — the staging the paper
  describes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import PolicyError
from repro.dgl.builder import flow_builder
from repro.dgl.model import Flow
from repro.ilm.policy import ILMPolicy, PlacementRule
from repro.sim.calendar import ExecutionWindow

__all__ = ["imploding_star_policy", "exploding_star_flow"]


def imploding_star_policy(
        name: str,
        collection: str,
        archiver_domain: str,
        archive_resource: str,
        trim_below_value: float = 0.25,
        delete_after_days: Optional[float] = None,
        window: Optional[ExecutionWindow] = None,
        query: str = "") -> ILMPolicy:
    """The archiver-domain policy pulling everything inward.

    Rule order (first match wins):

    1. ``archive`` — no copy on the archive yet: replicate one in.
    2. ``trim`` — archived, and the owning domains' interest (domain
       value) has decayed below ``trim_below_value``: drop the expensive
       source copies, keeping only the archive replica.
    3. ``expire`` — optional: archived data older than
       ``delete_after_days`` leaves the grid entirely.
    """
    rules: List[PlacementRule] = [
        PlacementRule(
            name="archive",
            condition="last_action == null",
            action="replicate_to",
            target_resource=archive_resource),
        PlacementRule(
            name="trim",
            condition=(f"last_action == 'archive' and "
                       f"value < {trim_below_value} and replica_count > 1"),
            action="trim_to_target",
            target_resource=archive_resource),
    ]
    if delete_after_days is not None:
        rules.append(PlacementRule(
            name="expire",
            condition=(f"last_action == 'trim' and "
                       f"age_days > {delete_after_days}"),
            action="delete"))
    return ILMPolicy(name=name, collection=collection, domain=archiver_domain,
                     rules=rules, query=query, window=window)


def exploding_star_flow(
        name: str,
        collection: str,
        tier_resources: Sequence[Sequence[str]],
        query: str = "",
        max_concurrent_per_tier: int = 0) -> Flow:
    """Staged tiered replication outward from the producing domain.

    ``tier_resources`` lists, per tier, the logical resources that tier's
    sites serve (e.g. ``[["t1-ral", "t1-fnal"], ["t2-a", "t2-b"]]``). Tiers
    replicate sequentially; sites within a tier replicate in parallel.
    """
    if not tier_resources or not all(tier_resources):
        raise PolicyError("exploding star needs at least one non-empty tier")
    per_object = flow_builder("stage-out").sequential()
    for tier_index, resources in enumerate(tier_resources, start=1):
        tier = flow_builder(f"tier-{tier_index}").parallel(
            max_concurrent=max_concurrent_per_tier)
        for resource in resources:
            tier.step(f"to-{resource}", "srb.replicate",
                      path="${f}", resource=resource)
        per_object.subflow(tier)
    return (flow_builder(name)
            .for_each("f", collection=collection, query=query or None)
            .subflow(per_object)
            .build())

"""Domain value of information.

"During its lifecycle, information in the grid would have different
business values for different domains participating in the datagrid …
Once a domain's users are not interested in some information, its domain
value decreases and data can either be deleted or migrated to less
expensive storage systems." (§2.1)

The model: an explicit per-domain value (metadata ``value:<domain>``) wins
when present — that is the business-policy channel; otherwise value decays
from a base value (metadata ``value``, default 1.0) with a configurable
half-life from the object's last modification — the HSM-style freshness
fallback the paper contrasts ILM against. Values are unitless; ILM rules
compare them against thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PolicyError
from repro.grid.namespace import DataObject

__all__ = ["DomainValueModel", "SECONDS_PER_DAY"]

SECONDS_PER_DAY = 86400.0


@dataclass(frozen=True)
class DomainValueModel:
    """Computes the business value of one object for one domain."""

    half_life_days: float = 30.0
    default_base_value: float = 1.0

    def __post_init__(self) -> None:
        if self.half_life_days <= 0:
            raise PolicyError("half life must be positive")

    def domain_value(self, obj: DataObject, domain: str, now: float) -> float:
        """Value of ``obj`` to ``domain`` at virtual time ``now``."""
        explicit = obj.metadata.get(f"value:{domain}")
        if explicit is not None:
            try:
                return float(explicit)
            except (TypeError, ValueError):
                raise PolicyError(
                    f"value:{domain} on {obj.path} is not numeric: "
                    f"{explicit!r}") from None
        base = obj.metadata.get("value", self.default_base_value)
        try:
            base = float(base)
        except (TypeError, ValueError):
            raise PolicyError(
                f"value on {obj.path} is not numeric: {base!r}") from None
        age_days = max(0.0, now - obj.modified_at) / SECONDS_PER_DAY
        return base * 0.5 ** (age_days / self.half_life_days)

    def age_days(self, obj: DataObject, now: float) -> float:
        """Days since the object was last modified."""
        return max(0.0, now - obj.modified_at) / SECONDS_PER_DAY

"""ILM policies: declarative rules compiled to DGL flows.

A policy says, for one collection and one domain's point of view: *when an
object looks like this, move it there*. Rules are ordered; the first whose
condition holds is applied. Conditions are DGL expressions over:

* ``value`` — the object's domain value (see :mod:`repro.ilm.value`);
* ``age_days`` — days since last modification;
* ``size`` — bytes;
* ``replica_count`` — good replicas right now;
* ``meta`` — the object's metadata dict;
* ``last_action`` — the rule this policy last applied to the object.

Actions: ``replicate_to`` / ``migrate_to`` / ``trim_to_target`` (drop every
replica except on the target resource) / ``delete`` / ``none``.

A policy pass compiles to an ordinary DGL flow (for-each over the policy's
datagrid query, then per object an optional execution-window gate and the
apply step), so the DfMS gives ILM everything §2.1 demands for free:
start/stop/pause/restart, status queries, provenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import PolicyError
from repro.dgl.model import Flow, FlowLogic, ForEach, Operation, Step
from repro.sim.calendar import ExecutionWindow

__all__ = ["PlacementRule", "ILMPolicy", "ACTIONS"]

ACTIONS = ("replicate_to", "migrate_to", "trim_to_target", "delete", "none")


@dataclass(frozen=True)
class PlacementRule:
    """One ordered rule: condition → action (→ target resource)."""

    name: str
    condition: str
    action: str
    target_resource: Optional[str] = None

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise PolicyError(
                f"rule {self.name!r}: unknown action {self.action!r} "
                f"(choose from {ACTIONS})")
        needs_target = self.action in ("replicate_to", "migrate_to",
                                       "trim_to_target")
        if needs_target and not self.target_resource:
            raise PolicyError(
                f"rule {self.name!r}: action {self.action!r} needs a "
                "target_resource")
        if not self.condition.strip():
            raise PolicyError(f"rule {self.name!r}: empty condition")


@dataclass
class ILMPolicy:
    """A named lifecycle policy over one collection."""

    name: str
    collection: str
    domain: str                        # whose point of view `value` takes
    rules: List[PlacementRule] = field(default_factory=list)
    query: str = ""                    # narrows the collection (text form)
    window: Optional[ExecutionWindow] = None
    #: Metadata attribute recording the last applied rule per object.
    mark_attribute: str = "ilm:last_action"

    def __post_init__(self) -> None:
        if not self.rules:
            raise PolicyError(f"policy {self.name!r} has no rules")
        names = [rule.name for rule in self.rules]
        if len(names) != len(set(names)):
            raise PolicyError(f"policy {self.name!r} has duplicate rule names")

    def rule(self, name: str) -> PlacementRule:
        """The rule called ``name`` (raises if unknown)."""
        for rule in self.rules:
            if rule.name == name:
                return rule
        raise PolicyError(f"policy {self.name!r} has no rule {name!r}")

    def compile_to_flow(self) -> Flow:
        """One policy pass as a DGL flow.

        The per-object work is the domain-specific operations ``ilm.gate``
        (wait for the execution window, if any) and ``ilm.apply`` (evaluate
        this policy's rules and perform the chosen action) — registered by
        the :class:`~repro.ilm.engine.ILMManager` that owns the policy.
        """
        steps: List[Step] = []
        if self.window is not None:
            steps.append(Step(
                name="gate",
                operation=Operation("ilm.gate", {"policy": self.name})))
        steps.append(Step(
            name="apply",
            operation=Operation("ilm.apply",
                                {"policy": self.name, "path": "${f}"})))
        return Flow(
            name=f"ilm:{self.name}",
            logic=FlowLogic(pattern=ForEach(
                item_variable="f", collection=self.collection,
                query=self.query or None)),
            children=steps)

"""Datagrid information lifecycle management (§2.1).

Domain-value model, declarative placement/retention policies compiled to
DGL, execution windows, the ILM manager, and the imploding/exploding star
patterns.
"""

from repro.ilm.engine import ILMManager, PassRecord
from repro.ilm.patterns import exploding_star_flow, imploding_star_policy
from repro.ilm.policy import ACTIONS, ILMPolicy, PlacementRule
from repro.ilm.value import DomainValueModel

__all__ = [
    "DomainValueModel", "ILMPolicy", "PlacementRule", "ACTIONS",
    "ILMManager", "PassRecord",
    "imploding_star_policy", "exploding_star_flow",
]

"""The ILM manager: policies bound to a DfMS server.

Owns the registered policies, provides the two domain-specific DGL
operations their compiled flows use (``ilm.gate``, ``ilm.apply``), and
drives one-shot or recurring policy passes through the DfMS — so every ILM
process is an ordinary datagridflow with start/stop/pause/restart, status
queries, and provenance (§2.1's requirement list).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import ExpressionError, NamespaceError, PolicyError
from repro.dfms.context import ExecutionContext
from repro.dfms.server import DfMSServer
from repro.dgl.expressions import evaluate_condition
from repro.dgl.model import DataGridRequest
from repro.grid.namespace import DataObject
from repro.grid.users import User
from repro.ilm.policy import ILMPolicy, PlacementRule
from repro.ilm.value import DomainValueModel

__all__ = ["ILMManager", "PassRecord"]


@dataclass
class PassRecord:
    """One completed (or running) policy pass."""

    policy: str
    request_id: str
    started_at: float
    finished_at: Optional[float] = None
    state: Optional[str] = None


class ILMManager:
    """Registers and runs ILM policies on one DfMS server."""

    def __init__(self, server: DfMSServer,
                 value_model: Optional[DomainValueModel] = None) -> None:
        self.server = server
        self.dgms = server.dgms
        self.env = server.env
        self.value_model = value_model or DomainValueModel()
        self._policies: Dict[str, ILMPolicy] = {}
        self.passes: List[PassRecord] = []
        self._recurring_stop: Dict[str, bool] = {}
        #: Observers of ILM progress (same idiom as ``FlowEngine.
        #: listeners``); each is called as
        #: listener(kind, policy_name, time, detail_dict).
        self.listeners: List[Callable] = []
        server.registry.register("ilm.gate", self._op_gate, replace=True)
        server.registry.register("ilm.apply", self._op_apply, replace=True)

    # -- notifications -------------------------------------------------------

    def _notify(self, kind: str, policy_name: str, **detail) -> None:
        for listener in self.listeners:
            listener(kind, policy_name, self.env.now, detail)
        t = self.env.telemetry
        if t is not None:
            t.log.emit(f"ilm.{kind}", policy=policy_name, **detail)

    # -- policies ------------------------------------------------------------

    def add_policy(self, policy: ILMPolicy) -> None:
        """Register a policy (names are unique)."""
        if policy.name in self._policies:
            raise PolicyError(f"policy {policy.name!r} already registered")
        self._policies[policy.name] = policy

    def policy(self, name: str) -> ILMPolicy:
        """The policy called ``name`` (raises if unknown)."""
        try:
            return self._policies[name]
        except KeyError:
            raise PolicyError(f"no policy named {name!r}") from None

    # -- running passes --------------------------------------------------------

    def run_pass(self, policy_name: str, user: User) -> str:
        """Submit one asynchronous policy pass; returns the request id."""
        policy = self.policy(policy_name)
        response = self.server.submit(DataGridRequest(
            user=user.qualified_name, virtual_organization="ilm",
            body=policy.compile_to_flow(), asynchronous=True))
        if not response.body.valid:
            raise PolicyError(
                f"policy pass rejected: {response.body.message}")
        self.passes.append(PassRecord(policy=policy_name,
                                      request_id=response.request_id,
                                      started_at=self.env.now))
        t = self.env.telemetry
        if t is not None:
            t.ilm_passes.labels(policy=policy_name).inc()
        self._notify("pass_submitted", policy_name,
                     request_id=response.request_id)
        return response.request_id

    def run_pass_sync(self, policy_name: str, user: User, supervisor=None):
        """Generator: run one pass to completion; returns its status.

        With a :class:`~repro.faults.recovery.FlowSupervisor`, a pass
        that fails retryably is checkpoint-restarted (journalled objects
        are skipped on replay) instead of reported failed — ILM passes
        are exactly the months-long processes §2.1 wants restartable.
        """
        request_id = self.run_pass(policy_name, user)
        if supervisor is None:
            yield self.server.wait(request_id)
        else:
            yield from supervisor.supervise(request_id)
        record = next(p for p in self.passes if p.request_id == request_id)
        record.finished_at = self.env.now
        status = self.server.status(request_id)
        record.state = status.state.value
        self._notify("pass_completed", policy_name, request_id=request_id,
                     state=record.state)
        return status

    def start_recurring(self, policy_name: str, user: User,
                        interval: float, max_passes: Optional[int] = None):
        """Run passes forever (or ``max_passes`` times), ``interval`` apart.

        Returns the simulation process; stop early with
        :meth:`stop_recurring`.
        """
        self.policy(policy_name)   # fail fast on unknown names
        self._recurring_stop[policy_name] = False

        def _loop():
            count = 0
            while not self._recurring_stop[policy_name]:
                yield from self.run_pass_sync(policy_name, user)
                count += 1
                if max_passes is not None and count >= max_passes:
                    break
                yield self.env.timeout(interval)

        return self.env.process(_loop())

    def stop_recurring(self, policy_name: str) -> None:
        """Stop a recurring pass loop after its current pass."""
        self._recurring_stop[policy_name] = True

    # -- DGL operations ------------------------------------------------------

    def _op_gate(self, ctx: ExecutionContext, params):
        """Wait until the policy's execution window is open."""
        policy = self.policy(params["policy"])
        if policy.window is None or policy.window.contains(ctx.env.now):
            return None
        delay = policy.window.next_open(ctx.env.now) - ctx.env.now
        yield ctx.env.timeout(delay)
        return delay

    def _op_apply(self, ctx: ExecutionContext, params):
        """Evaluate the policy's rules for one object and act."""
        policy = self.policy(params["policy"])
        path = params["path"]
        t = self.env.telemetry
        # One namespace walk instead of a separate exists + resolve.
        obj = self.dgms.namespace.try_resolve(path)
        if obj is None:
            if t is not None:
                t.ilm_apply.labels(policy=policy.name,
                                   outcome="vanished").inc()
            return "vanished"
        if not isinstance(obj, DataObject):
            raise NamespaceError(f"{path!r} is a collection, not a data object")
        scope = {
            "value": self.value_model.domain_value(obj, policy.domain,
                                                   ctx.env.now),
            "age_days": self.value_model.age_days(obj, ctx.env.now),
            "size": obj.size,
            "replica_count": len(obj.good_replicas()),
            "meta": obj.metadata.as_dict(),
            "last_action": obj.metadata.get(policy.mark_attribute),
        }
        chosen: Optional[PlacementRule] = None
        for rule in policy.rules:
            try:
                if evaluate_condition(rule.condition, scope):
                    chosen = rule
                    break
            except ExpressionError as exc:
                raise PolicyError(
                    f"policy {policy.name!r} rule {rule.name!r}: {exc}"
                ) from None
        if chosen is None:
            if t is not None:
                t.ilm_apply.labels(policy=policy.name,
                                   outcome="no-match").inc()
            return "no-match"
        outcome = yield from self._perform(ctx, obj, policy, chosen)
        if t is not None:
            t.ilm_apply.labels(policy=policy.name, outcome="applied").inc()
            t.ilm_actions.labels(policy=policy.name, rule=chosen.name,
                                 outcome=outcome).inc()
        self._notify("applied", policy.name, path=path, rule=chosen.name,
                     outcome=outcome)
        if outcome != "deleted" and self.dgms.namespace.exists(path):
            self.dgms.set_metadata(ctx.user, path, policy.mark_attribute,
                                   chosen.name)
        return f"{chosen.name}:{outcome}"

    def _target_members(self, resource_name: str):
        return {m.name for m in
                self.dgms.resources.logical(resource_name).members}

    def _perform(self, ctx, obj, policy, rule):
        path = obj.path
        if rule.action == "none":
            return "noop"
            yield   # pragma: no cover - generator marker
        if rule.action == "delete":
            yield ctx.dgms.delete(ctx.user, path)
            return "deleted"
        members = self._target_members(rule.target_resource)
        on_target = [r for r in obj.good_replicas()
                     if r.physical_name in members]
        if rule.action == "replicate_to":
            if on_target:
                return "already-placed"
            yield ctx.dgms.replicate(ctx.user, path, rule.target_resource)
            return "replicated"
        if rule.action == "migrate_to":
            sources = [r for r in obj.good_replicas()
                       if r.physical_name not in members]
            if not sources:
                return "already-placed"
            source = min(sources, key=lambda r: r.replica_number)
            yield ctx.dgms.migrate(ctx.user, path, source.physical_name,
                                   rule.target_resource)
            return "migrated"
        if rule.action == "trim_to_target":
            if not on_target:
                return "unsafe-no-target-copy"
            extras = [r for r in obj.good_replicas()
                      if r.physical_name not in members]
            for replica in extras:
                yield ctx.dgms.remove_replica(ctx.user, path,
                                              replica.physical_name)
            return "trimmed" if extras else "already-placed"
        raise PolicyError(f"unhandled action {rule.action!r}")

"""The durable provenance store.

Append-only JSON-lines, optionally backed by a file so records survive
process restarts — the paper's "query … any time, even (years) after the
execution" requirement means provenance must outlive both the execution
and the server that ran it. An in-memory index by subject keeps audit
queries fast as history grows (experiment E12 measures this).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import ProvenanceError
from repro.provenance.record import ProvenanceRecord

__all__ = ["ProvenanceStore"]


class ProvenanceStore:
    """Append-only record store with per-subject indexing."""

    def __init__(self, path: Optional[str] = None) -> None:
        self._path = Path(path) if path is not None else None
        self._records: List[ProvenanceRecord] = []
        self._by_subject: Dict[str, List[int]] = {}
        self._file = None
        if self._path is not None and self._path.exists():
            self._load()
        if self._path is not None:
            self._file = self._path.open("a", encoding="utf-8")

    # -- persistence ------------------------------------------------------

    def _load(self) -> None:
        with self._path.open(encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ProvenanceError(
                        f"{self._path}:{line_number}: corrupt record: {exc}"
                    ) from None
                self._index(ProvenanceRecord.from_dict(data))

    def close(self) -> None:
        """Flush and close the backing file (no-op for in-memory stores)."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "ProvenanceStore":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.close()

    # -- writing ------------------------------------------------------------

    def _index(self, record: ProvenanceRecord) -> None:
        self._records.append(record)
        self._by_subject.setdefault(record.subject, []).append(
            len(self._records) - 1)

    def append(self, record: ProvenanceRecord) -> None:
        """Add one record (written through to the file, if any)."""
        self._index(record)
        if self._file is not None:
            self._file.write(json.dumps(record.to_dict(), sort_keys=True))
            self._file.write("\n")
            self._file.flush()

    # -- reading ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> List[ProvenanceRecord]:
        """All records, in append order."""
        return list(self._records)

    def for_subject(self, subject: str) -> List[ProvenanceRecord]:
        """All records about one subject, in append order (indexed)."""
        return [self._records[i] for i in self._by_subject.get(subject, ())]

    def query(self, subject_prefix: Optional[str] = None,
              category: Optional[str] = None,
              operation: Optional[str] = None,
              actor: Optional[str] = None,
              since: Optional[float] = None,
              until: Optional[float] = None) -> List[ProvenanceRecord]:
        """Filtered scan; every criterion is optional and conjunctive."""
        out = []
        for record in self._records:
            if subject_prefix is not None and not record.subject.startswith(
                    subject_prefix):
                continue
            if category is not None and record.category != category:
                continue
            if operation is not None and record.operation != operation:
                continue
            if actor is not None and record.actor != actor:
                continue
            if since is not None and record.time < since:
                continue
            if until is not None and record.time >= until:
                continue
            out.append(record)
        return out

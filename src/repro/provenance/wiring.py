"""Wiring provenance capture into a DGMS and a DfMS server.

The capture points are the two listener surfaces the substrates already
expose — :attr:`DataGridManagementSystem.operation_listeners` for datagrid
operations and :attr:`FlowEngine.listeners` for engine events — so
provenance is strictly observational: removing it changes nothing about
execution.
"""

from __future__ import annotations

from repro.dfms.server import DfMSServer
from repro.grid.dgms import DataGridManagementSystem, OperationRecord
from repro.provenance.record import ProvenanceRecord
from repro.provenance.store import ProvenanceStore

__all__ = ["attach_to_dgms", "attach_to_server", "record_pipeline_operation"]


def attach_to_dgms(store: ProvenanceStore,
                   dgms: DataGridManagementSystem) -> None:
    """Record every DGMS operation into ``store``."""

    def _listener(record: OperationRecord) -> None:
        store.append(ProvenanceRecord(
            category="dgms", operation=record.operation,
            subject=record.path, time=record.start_time,
            end_time=record.end_time, actor=record.user,
            detail=dict(record.detail)))

    dgms.operation_listeners.append(_listener)


def attach_to_server(store: ProvenanceStore, server: DfMSServer) -> None:
    """Record every engine event (and the server's DGMS ops) into ``store``."""

    def _listener(kind: str, execution, instance_key: str, time: float,
                  detail: dict) -> None:
        subject = (f"{execution.request_id}/{instance_key}"
                   if instance_key else execution.request_id)
        store.append(ProvenanceRecord(
            category="engine", operation=kind, subject=subject, time=time,
            actor=execution.user_name, detail=dict(detail)))

    server.engine.listeners.append(_listener)


def record_pipeline_operation(store: ProvenanceStore, operation: str,
                              subject: str, time: float,
                              actor: str = None, **detail) -> None:
    """Record an application-level (archival-pipeline) operation.

    Business logic calls this for the §2.1 requirement that pipeline
    operations — not just DGMS ones — leave provenance.
    """
    store.append(ProvenanceRecord(
        category="pipeline", operation=operation, subject=subject,
        time=time, actor=actor, detail=detail))

"""Provenance record model.

§2.1 (NARA Persistent Archives): the system must store "provenance
information for not only the DGMS operations performed by the system, but
also the operations that are performed as part of the archival pipeline",
queryable "at any time, even (years) after the execution".

A record is deliberately flat and JSON-serializable: category + subject +
actor + operation + times + free detail. Three categories cover the
paper's requirement:

* ``dgms`` — every datagrid operation (put, replicate, migrate, …);
* ``engine`` — every DfMS engine event (step started/completed/failed,
  pause/resume, execution lifecycle);
* ``pipeline`` — application-level annotations recorded explicitly by
  business logic (the archival-pipeline operations).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Optional

from repro.errors import ProvenanceError

__all__ = ["ProvenanceRecord", "CATEGORIES"]

CATEGORIES = ("dgms", "engine", "pipeline")


@dataclass(frozen=True)
class ProvenanceRecord:
    """One immutable provenance fact."""

    category: str                 # dgms | engine | pipeline
    operation: str                # e.g. "put", "step_completed", "ocr"
    subject: str                  # object path, or request id / instance key
    time: float                   # virtual time of the fact
    actor: Optional[str] = None   # qualified user, server name, …
    end_time: Optional[float] = None
    detail: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise ProvenanceError(
                f"unknown category {self.category!r} (use one of {CATEGORIES})")
        if not self.operation:
            raise ProvenanceError("operation cannot be empty")

    def to_dict(self) -> dict:
        """Plain-dict form (for the JSON-lines store)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ProvenanceRecord":
        try:
            return cls(category=data["category"], operation=data["operation"],
                       subject=data["subject"], time=data["time"],
                       actor=data.get("actor"),
                       end_time=data.get("end_time"),
                       detail=data.get("detail", {}))
        except KeyError as exc:
            raise ProvenanceError(f"record is missing {exc}") from None

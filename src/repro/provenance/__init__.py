"""Provenance: durable, append-only history of everything the grid did.

Records DGMS operations, DfMS engine events, and application pipeline
steps; queryable during execution and arbitrarily long after it (§2.1,
§3.1).
"""

from repro.provenance.record import CATEGORIES, ProvenanceRecord
from repro.provenance.store import ProvenanceStore
from repro.provenance.wiring import (
    attach_to_dgms,
    attach_to_server,
    record_pipeline_operation,
)

__all__ = [
    "ProvenanceRecord", "ProvenanceStore", "CATEGORIES",
    "attach_to_dgms", "attach_to_server", "record_pipeline_operation",
]

"""The hard-wired workflow baseline.

"There are many ways to hard-wire workflows … Any change in the execution
logic or the infrastructure logic would require modification of the whole
system." (§3)

:class:`HardwiredIntegrityPipeline` is the UCSD-Libraries data-integrity
job written the pre-DfMS way: resource names, collection paths, and
ordering baked into code. Experiment E16 contrasts it with the equivalent
DGL document from :func:`dgl_integrity_flow`: re-targeting the DGL version
to new infrastructure is a parameter change in a *document*; re-targeting
the hard-wired version is a code change (here, constructing a whole new
object — and until someone does, it simply breaks).
"""

from __future__ import annotations


from repro.dgl.builder import flow_builder
from repro.dgl.model import Flow
from repro.grid.dgms import DataGridManagementSystem
from repro.grid.users import User
from repro.sim.kernel import Environment

__all__ = ["HardwiredIntegrityPipeline", "dgl_integrity_flow"]


class HardwiredIntegrityPipeline:
    """MD5 + archive pipeline with everything baked in.

    The constants below are the "hard-wiring": the collection scanned, the
    archive resource written, and the metadata attribute set. Pointing this
    pipeline at different infrastructure means editing this class.
    """

    #: Hard-wired configuration (the point of the baseline).
    COLLECTION = "/library/ingest"
    ARCHIVE_RESOURCE = "library-tape"
    CHECKSUM_ATTRIBUTE = "md5"

    def __init__(self, env: Environment, dgms: DataGridManagementSystem,
                 user: User) -> None:
        self.env = env
        self.dgms = dgms
        self.user = user
        self.objects_processed = 0

    def run(self):
        """Generator: checksum, tag, and archive every ingested object."""
        paths = [obj.path for obj in
                 self.dgms.namespace.iter_objects(self.COLLECTION)]
        for path in paths:
            digest = yield self.dgms.checksum(self.user, path)
            self.dgms.set_metadata(self.user, path,
                                   self.CHECKSUM_ATTRIBUTE, digest)
            yield self.dgms.replicate(self.user, path, self.ARCHIVE_RESOURCE)
            self.objects_processed += 1


def dgl_integrity_flow(collection: str, archive_resource: str,
                       checksum_attribute: str = "md5") -> Flow:
    """The same pipeline as a DGL document.

    Everything the hard-wired class bakes in is a parameter here; the
    document can be regenerated (or edited as XML) for new infrastructure
    without touching code.
    """
    return (flow_builder("integrity-pipeline")
            .for_each("f", collection=collection)
            .step("checksum", "srb.checksum", assign_to="digest",
                  path="${f}")
            .step("tag", "srb.set_metadata", path="${f}",
                  attribute=checksum_attribute, value="${digest}")
            .step("archive", "srb.replicate", path="${f}",
                  resource=archive_resource)
            .build())

"""Baseline comparators drawn from the paper's own alternatives:
cron + scripts (§2.1), client-side engines (§5, GridAnt), and hard-wired
workflows (§3)."""

from repro.baselines.clientside import (
    ClientDisconnected,
    ClientSideEngine,
    ClientStats,
)
from repro.baselines.cron_scripts import CronScriptArchiver, CronStats
from repro.baselines.hardwired import (
    HardwiredIntegrityPipeline,
    dgl_integrity_flow,
)

__all__ = [
    "CronScriptArchiver", "CronStats",
    "ClientSideEngine", "ClientStats", "ClientDisconnected",
    "HardwiredIntegrityPipeline", "dgl_integrity_flow",
]

"""The client-side workflow-engine baseline (GridAnt-style).

"GridAnt is a client-side workflow engine … The state information of the
workflow is managed at the client side." (§5). That design is the contrast
for two DfMS properties: nobody else can query the workflow's status, and
a client disconnect loses all execution state — the workflow restarts from
scratch, re-executing completed steps (experiment E13/E16 territory).

Steps here are (name, operation, params) triples over a small op set
(sleep / replicate / checksum / set_metadata), enough to express the
paper's prototype pipelines without a server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ExecutionError, ReplicaError
from repro.grid.dgms import DataGridManagementSystem
from repro.grid.users import User
from repro.sim.kernel import Environment

__all__ = ["ClientDisconnected", "ClientSideEngine", "ClientStats"]

#: (step name, operation, params)
ClientStep = Tuple[str, str, Dict[str, object]]


class ClientDisconnected(ExecutionError):
    """The client process died; all client-held state is gone."""


@dataclass
class ClientStats:
    """Work accounting across runs (including re-runs after disconnects)."""

    steps_executed: int = 0
    steps_reexecuted: int = 0
    seconds_working: float = 0.0
    disconnects: int = 0


class ClientSideEngine:
    """Runs a step list with all state held in the client."""

    def __init__(self, env: Environment, dgms: DataGridManagementSystem,
                 user: User) -> None:
        self.env = env
        self.dgms = dgms
        self.user = user
        self.stats = ClientStats()
        #: Steps completed across ALL runs (for re-execution accounting
        #: only — a real client cannot see this after a crash, and the
        #: engine never consults it to skip work).
        self._ever_completed: set = set()

    def run(self, steps: List[ClientStep],
            disconnect_at: Optional[float] = None):
        """Generator: execute ``steps`` in order.

        If virtual time reaches ``disconnect_at`` before a step starts, the
        client "dies": :class:`ClientDisconnected` is raised and — the
        point of the baseline — nothing about progress survives except
        whatever side effects already landed in the grid.
        """
        for name, op, params in steps:
            if disconnect_at is not None and self.env.now >= disconnect_at:
                self.stats.disconnects += 1
                raise ClientDisconnected(
                    f"client lost before step {name!r} at t={self.env.now}")
            started = self.env.now
            yield from self._execute(op, dict(params))
            self.stats.steps_executed += 1
            if name in self._ever_completed:
                self.stats.steps_reexecuted += 1
            self._ever_completed.add(name)
            self.stats.seconds_working += self.env.now - started

    def _execute(self, op: str, params: Dict[str, object]):
        if op == "sleep":
            yield self.env.timeout(float(params["duration"]))
        elif op == "checksum":
            yield self.dgms.checksum(self.user, params["path"])
        elif op == "set_metadata":
            self.dgms.set_metadata(self.user, params["path"],
                                   params["attribute"], params["value"])
            return
            yield   # pragma: no cover - generator marker
        elif op == "replicate":
            try:
                yield self.dgms.replicate(self.user, params["path"],
                                          params["resource"])
            except ReplicaError:
                pass   # re-run after a crash: the copy already exists
        else:
            raise ExecutionError(f"client-side engine: unknown op {op!r}")

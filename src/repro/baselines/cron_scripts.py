"""The cron + shell-script ILM baseline.

"Currently, some simple datagrid ILM processes can be implemented using
simple scripts and cron jobs on some operating systems. … However, once the
requirements include multiple domains, multiple system administrators and
multiple ILM processes, more sophisticated systems are required." (§2.1)

:class:`CronScriptArchiver` is that baseline, faithfully limited: a
periodic scan-and-copy loop with no coordination, no execution windows, no
pause/status/provenance, and no memory beyond the grid itself. Running one
per domain (as real sites did) exposes the §2.1 failure modes experiment
E8 measures: work attempted outside the site's allowed window, and
conflicting duplicate work when two administrators' scripts race on the
same objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ReplicaError, ReproError
from repro.grid.dgms import DataGridManagementSystem
from repro.grid.users import User
from repro.sim.calendar import ExecutionWindow
from repro.sim.kernel import Environment

__all__ = ["CronScriptArchiver", "CronStats"]


@dataclass
class CronStats:
    """What the script did (and did wrong)."""

    passes: int = 0
    objects_scanned: int = 0
    replicas_created: int = 0
    bytes_copied: float = 0.0
    #: Copies attempted while the site's window was closed — the script has
    #: no window concept, so it violates freely.
    window_violations: int = 0
    #: Copies that raced another script and failed (duplicate work).
    conflicts: int = 0
    errors: int = 0


class CronScriptArchiver:
    """One administrator's periodic archive-everything script."""

    def __init__(self, env: Environment, dgms: DataGridManagementSystem,
                 user: User, collection: str, archive_resource: str,
                 interval: float,
                 window: Optional[ExecutionWindow] = None) -> None:
        self.env = env
        self.dgms = dgms
        self.user = user
        self.collection = collection
        self.archive_resource = archive_resource
        self.interval = interval
        #: The window the site *should* respect; the script does not check
        #: it — it exists here only so the stats can count violations.
        self.window = window
        self.stats = CronStats()
        self._stopped = False

    def start(self):
        """Launch the cron loop as a simulation process."""
        return self.env.process(self._loop())

    def stop(self) -> None:
        """Disable the loop; it exits after the current pass."""
        self._stopped = True

    def _members(self):
        return {m.name
                for m in self.dgms.resources.logical(
                    self.archive_resource).members}

    def _loop(self):
        while not self._stopped:
            yield from self._one_pass()
            self.stats.passes += 1
            yield self.env.timeout(self.interval)

    def _one_pass(self):
        members = self._members()
        if not self.dgms.namespace.exists(self.collection):
            return
        paths = [obj.path
                 for obj in self.dgms.namespace.iter_objects(self.collection)]
        for path in paths:
            self.stats.objects_scanned += 1
            if not self.dgms.namespace.exists(path):
                continue   # another script deleted it mid-scan
            obj = self.dgms.namespace.resolve_object(path)
            if any(replica.physical_name in members
                   for replica in obj.good_replicas()):
                continue   # already archived
            if self.window is not None and not self.window.contains(
                    self.env.now):
                self.stats.window_violations += 1
                # ... and the script copies anyway: it cannot know better.
            try:
                yield self.dgms.replicate(self.user, path,
                                          self.archive_resource)
                self.stats.replicas_created += 1
                self.stats.bytes_copied += obj.size
            except ReplicaError:
                self.stats.conflicts += 1
            except ReproError:
                self.stats.errors += 1

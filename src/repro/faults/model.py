"""Declarative, seeded fault schedules for datagrid simulations.

Long-run processes on datagrids must survive component faults — the paper
makes start/stop/restart a first-class requirement precisely because "a
process that runs for months *will* see failures" (§2.1). This module
supplies the failure side of that story: a :class:`FaultSchedule` is a
declarative list of :class:`FaultEvent` records — storage outages, whole
failure-domain outages, link drops, bandwidth degradations, flaky-window
injections — and a :class:`FaultDriver` arms them as kernel timeouts so
every fault begins and ends at an exact virtual-time instant.

Determinism rules:

* A schedule is plain data; arming it schedules each begin/end through
  the simulation kernel, so two runs of the same schedule produce
  bit-identical fault timing.
* Randomized schedules (:meth:`FaultSchedule.random`) draw from one named
  substream (``fault-schedule``) of the run's
  :class:`~repro.sim.rng.RandomStreams`; flaky windows install injectors
  drawing from the per-resource ``storage-failures/<name>`` substreams.
  Neither consumes from any other component's stream.
* With no schedule attached, nothing in the simulation changes: the
  driver is the only writer of :attr:`TransferService.down_links` and of
  resource ``online`` flags.

Overlap semantics: outages are reference-counted (a link or resource held
down by two overlapping events comes back only when both end) and
degradations compose multiplicatively. Flaky windows stack; overlapping
windows restore injectors in pop order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.errors import FaultError
from repro.sim.rng import RandomStreams
from repro.storage.failures import FailureInjector

__all__ = [
    "FaultEvent",
    "StorageOutage",
    "DomainOutage",
    "LinkOutage",
    "LinkDegradation",
    "FlakyWindow",
    "ZoneOutage",
    "BridgeDegradation",
    "FaultSchedule",
    "FaultDriver",
    "attach_faults",
]

#: Stream name :meth:`FaultSchedule.random` draws from.
SCHEDULE_STREAM = "fault-schedule"

#: Event kinds :meth:`FaultSchedule.random` picks between by default.
#: Domain outages are opt-in: they take down every resource and link of a
#: failure domain at once, which small chaos topologies may not survive.
DEFAULT_RANDOM_KINDS = ("storage-outage", "link-outage",
                        "link-degradation", "flaky-window")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: a kind-specific condition open for a window."""

    start: float
    duration: float

    kind: ClassVar[str] = "fault"

    def __post_init__(self) -> None:
        if self.start < 0:
            raise FaultError(f"fault start cannot be negative: {self.start}")
        if self.duration <= 0:
            raise FaultError(
                f"fault duration must be positive: {self.duration}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def target(self) -> str:
        """Human-readable identifier of what the fault hits."""
        return "?"


@dataclass(frozen=True)
class StorageOutage(FaultEvent):
    """A physical storage resource rejects all operations for the window."""

    resource: str = ""

    kind: ClassVar[str] = "storage-outage"

    @property
    def target(self) -> str:
        return self.resource


@dataclass(frozen=True)
class DomainOutage(FaultEvent):
    """A whole failure domain goes dark: every physical resource homed
    there goes offline and every link touching it drops."""

    domain: str = ""

    kind: ClassVar[str] = "domain-outage"

    @property
    def target(self) -> str:
        return self.domain


@dataclass(frozen=True)
class LinkOutage(FaultEvent):
    """The direct link between two domains drops; in-flight transfers are
    interrupted with their byte offset and routing goes around (or fails
    with ``NoRouteError``)."""

    a: str = ""
    b: str = ""

    kind: ClassVar[str] = "link-outage"

    @property
    def ends(self) -> FrozenSet[str]:
        return frozenset((self.a, self.b))

    @property
    def target(self) -> str:
        return "--".join(sorted((self.a, self.b)))


@dataclass(frozen=True)
class LinkDegradation(FaultEvent):
    """The link's bandwidth is scaled by ``factor`` for the window.

    Overlapping degradations of the same link compose multiplicatively.
    """

    a: str = ""
    b: str = ""
    factor: float = 0.5

    kind: ClassVar[str] = "link-degradation"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.factor < 1.0:
            raise FaultError(
                f"degradation factor must be in (0, 1), got {self.factor}")

    @property
    def ends(self) -> FrozenSet[str]:
        return frozenset((self.a, self.b))

    @property
    def target(self) -> str:
        return "--".join(sorted((self.a, self.b)))


@dataclass(frozen=True)
class FlakyWindow(FaultEvent):
    """A storage resource fails each operation with ``probability`` for
    the window, drawing from its own ``storage-failures/<name>`` stream."""

    resource: str = ""
    probability: float = 0.1

    kind: ClassVar[str] = "flaky-window"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.probability <= 1.0:
            raise FaultError(
                f"flaky probability must be in (0, 1], got {self.probability}")

    @property
    def target(self) -> str:
        return self.resource


@dataclass(frozen=True)
class ZoneOutage(FaultEvent):
    """A whole federated zone goes dark for the window: every physical
    resource in the zone goes offline and every intra-zone link drops.

    Zone events target a :class:`~repro.grid.federation.Federation`, not a
    single datagrid — arm them with a
    :class:`~repro.federation.chaos.FederationFaultDriver` (a plain
    :class:`FaultDriver` rejects them at arm time)."""

    zone: str = ""

    kind: ClassVar[str] = "zone-outage"

    @property
    def target(self) -> str:
        return self.zone


@dataclass(frozen=True)
class BridgeDegradation(FaultEvent):
    """The inter-zone bridge between two zones loses bandwidth: its
    effective rate is scaled by ``factor`` for the window. Overlapping
    degradations of the same bridge compose multiplicatively.

    Like :class:`ZoneOutage`, this targets a federation and needs a
    :class:`~repro.federation.chaos.FederationFaultDriver`."""

    zone_a: str = ""
    zone_b: str = ""
    factor: float = 0.5

    kind: ClassVar[str] = "bridge-degradation"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.factor < 1.0:
            raise FaultError(
                f"degradation factor must be in (0, 1), got {self.factor}")

    @property
    def ends(self) -> FrozenSet[str]:
        return frozenset((self.zone_a, self.zone_b))

    @property
    def target(self) -> str:
        return "~~".join(sorted((self.zone_a, self.zone_b)))


#: Event kinds that target a federation rather than one datagrid.
ZONE_EVENT_TYPES = (ZoneOutage, BridgeDegradation)


class FaultSchedule:
    """An ordered list of fault events (plain data; arming is separate)."""

    def __init__(self, events: Sequence[FaultEvent] = ()) -> None:
        for event in events:
            if not isinstance(event, FaultEvent):
                raise FaultError(
                    f"not a fault event: {event!r}")
        self.events: Tuple[FaultEvent, ...] = tuple(events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def horizon(self) -> float:
        """Instant the last fault window closes (0.0 when empty)."""
        return max((event.end for event in self.events), default=0.0)

    @classmethod
    def random(cls, streams: RandomStreams, dgms, horizon: float,
               n_events: int = 6,
               kinds: Sequence[str] = DEFAULT_RANDOM_KINDS
               ) -> "FaultSchedule":
        """A seeded random schedule against ``dgms``'s current layout.

        Draws exclusively from the ``fault-schedule`` substream, so the
        same seed always yields the same schedule and generating one never
        perturbs any other stochastic component of the run. Starts land in
        the first three quarters of ``horizon``; each window lasts 5–20 %
        of it.
        """
        if horizon <= 0:
            raise FaultError(f"horizon must be positive: {horizon}")
        if n_events < 0:
            raise FaultError(f"n_events cannot be negative: {n_events}")
        rng = streams.stream(SCHEDULE_STREAM)
        resources = dgms.resources.physical_names()
        links = dgms.topology.links
        domains = sorted(dgms.topology.domains)
        events: List[FaultEvent] = []
        for _ in range(n_events):
            kind = rng.choice(list(kinds))
            start = rng.uniform(0.0, 0.75 * horizon)
            duration = rng.uniform(0.05 * horizon, 0.2 * horizon)
            if kind == "storage-outage":
                events.append(StorageOutage(start, duration,
                                            rng.choice(resources)))
            elif kind == "domain-outage":
                events.append(DomainOutage(start, duration,
                                           rng.choice(domains)))
            elif kind == "link-outage":
                link = rng.choice(links)
                events.append(LinkOutage(start, duration, link.a, link.b))
            elif kind == "link-degradation":
                link = rng.choice(links)
                events.append(LinkDegradation(
                    start, duration, link.a, link.b,
                    round(rng.uniform(0.1, 0.6), 3)))
            elif kind == "flaky-window":
                events.append(FlakyWindow(
                    start, duration, rng.choice(resources),
                    round(rng.uniform(0.05, 0.35), 3)))
            else:
                raise FaultError(f"unknown fault kind {kind!r}")
        return cls(events)


class FaultDriver:
    """Applies a schedule to one datagrid through kernel timeouts.

    Each event gets a begin timer and an end timer; the callbacks mutate
    the grid (resource ``online`` flags, topology links, transfer-service
    outage set) and emit a telemetry record per transition, so every fault
    is visible to invariant checkers as a begin/end pair.
    """

    def __init__(self, dgms, schedule: FaultSchedule,
                 streams: Optional[RandomStreams] = None) -> None:
        self.dgms = dgms
        self.env = dgms.env
        self.schedule = schedule
        self._streams = streams if streams is not None else RandomStreams(0)
        self.begun = 0
        self.ended = 0
        #: (time, phase, kind, target) per transition, for assertions that
        #: run without a telemetry session.
        self.log: List[Tuple[float, str, str, str]] = []
        self._armed = False
        # Pristine Link per ends, captured before any mutation.
        self._base: Dict[FrozenSet[str], object] = {}
        # Refcounts: how many open events hold this link / resource down.
        self._link_down: Dict[FrozenSet[str], int] = {}
        self._resource_down: Dict[str, int] = {}
        # Active degradation factors per link (composed multiplicatively).
        self._degraded: Dict[FrozenSet[str], List[float]] = {}
        # Injectors displaced by open flaky windows, restored in pop order.
        self._flaky_saved: Dict[str, List[object]] = {}
        # Per-domain-outage (resource names, link ends), resolved at arm.
        self._domain_members: Dict[DomainOutage,
                                   Tuple[List[str],
                                         List[FrozenSet[str]]]] = {}

    @property
    def open_faults(self) -> int:
        """Fault windows currently open (begin seen, end not yet)."""
        return self.begun - self.ended

    def arm(self) -> "FaultDriver":
        """Validate the schedule against the grid and schedule every
        begin/end as a kernel timeout. One-shot."""
        if self._armed:
            raise FaultError("fault driver is already armed")
        self._armed = True
        self._resolve_targets()
        now = self.env.now
        for event in self.schedule:
            begin = self.env.timeout(max(0.0, event.start - now))
            begin.callbacks.append(lambda _e, ev=event: self._begin(ev))
            end = self.env.timeout(max(0.0, event.end - now))
            end.callbacks.append(lambda _e, ev=event: self._end(ev))
        return self

    # -- composable hold/release (for higher-level drivers) ------------------
    #
    # Zone-scoped chaos (repro.federation.chaos) reuses this driver's
    # refcounted mechanics without a schedule of its own: a zone outage is
    # "hold every resource and link of the zone, then release them". The
    # holds share the refcounts with any armed schedule, so overlapping
    # zone and intra-zone faults still come back exactly once.

    def hold_storage(self, name: str) -> None:
        """Take the physical resource ``name`` offline (refcounted)."""
        self.dgms.resources.physical(name)   # raises on unknown names
        self._storage_begin(name)

    def release_storage(self, name: str) -> None:
        """Drop one hold on ``name``; it comes back online at zero holds."""
        self._storage_end(name)

    def hold_link(self, a: str, b: str) -> None:
        """Drop the direct link ``a--b`` (refcounted); in-flight transfers
        are interrupted exactly as for a scheduled :class:`LinkOutage`."""
        ends = frozenset((a, b))
        if ends not in self._base:
            link = self.dgms.topology.link_between(a, b)
            if link is None:
                raise FaultError(
                    f"no link {'--'.join(sorted((a, b)))} to fault")
            self._base[ends] = link
        self._link_down_begin(ends)

    def release_link(self, a: str, b: str) -> None:
        """Drop one hold on ``a--b``; it reconnects at zero holds (with
        any still-open degradations composed back in)."""
        self._link_down_end(frozenset((a, b)))

    # -- arming-time resolution ---------------------------------------------

    def _resolve_targets(self) -> None:
        topology = self.dgms.topology
        for event in self.schedule:
            if isinstance(event, ZONE_EVENT_TYPES):
                raise FaultError(
                    f"{event.kind} targets a federation, not one datagrid; "
                    "arm it with a FederationFaultDriver")
            if isinstance(event, (LinkOutage, LinkDegradation)):
                link = topology.link_between(event.a, event.b)
                if link is None:
                    raise FaultError(
                        f"no link {event.target} to fault")
                self._base.setdefault(link.ends, link)
            elif isinstance(event, (StorageOutage, FlakyWindow)):
                # Raises LogicalResourceError on unknown names.
                self.dgms.resources.physical(event.resource)
            elif isinstance(event, DomainOutage):
                if event.domain not in topology.domains:
                    raise FaultError(f"unknown domain {event.domain!r}")
                ends_list = []
                for link in topology.links:
                    if event.domain in link.ends:
                        self._base.setdefault(link.ends, link)
                        ends_list.append(link.ends)
                names = sorted(
                    self.dgms.domains.get(event.domain).resource_names)
                self._domain_members[event] = (names, ends_list)

    # -- transitions ---------------------------------------------------------

    def _note(self, phase: str, event: FaultEvent) -> None:
        if phase == "begin":
            self.begun += 1
        else:
            self.ended += 1
        self.log.append((self.env.now, phase, event.kind, event.target))
        t = self.env.telemetry
        if t is not None:
            t.fault_events.labels(kind=event.kind, phase=phase).inc()
            # start/duration give SLO probes and causal traces the full
            # window geometry from either transition record alone.
            t.log.emit(f"fault.{phase}", fault=event.kind,
                       target=event.target, start=event.start,
                       duration=event.duration)

    def _begin(self, event: FaultEvent) -> None:
        if isinstance(event, StorageOutage):
            self._storage_begin(event.resource)
        elif isinstance(event, FlakyWindow):
            self._flaky_begin(event.resource, event.probability)
        elif isinstance(event, LinkOutage):
            self._link_down_begin(event.ends)
        elif isinstance(event, LinkDegradation):
            self._degrade_begin(event.ends, event.factor)
        elif isinstance(event, DomainOutage):
            names, ends_list = self._domain_members[event]
            for name in names:
                self._storage_begin(name)
            for ends in ends_list:
                self._link_down_begin(ends)
        self._note("begin", event)

    def _end(self, event: FaultEvent) -> None:
        if isinstance(event, StorageOutage):
            self._storage_end(event.resource)
        elif isinstance(event, FlakyWindow):
            self._flaky_end(event.resource)
        elif isinstance(event, LinkOutage):
            self._link_down_end(event.ends)
        elif isinstance(event, LinkDegradation):
            self._degrade_end(event.ends, event.factor)
        elif isinstance(event, DomainOutage):
            names, ends_list = self._domain_members[event]
            for name in names:
                self._storage_end(name)
            for ends in ends_list:
                self._link_down_end(ends)
        self._note("end", event)

    # -- storage -------------------------------------------------------------

    def _physical(self, name: str):
        return self.dgms.resources.physical(name).physical

    def _storage_begin(self, name: str) -> None:
        count = self._resource_down.get(name, 0)
        self._resource_down[name] = count + 1
        if count == 0:
            self._physical(name).online = False

    def _storage_end(self, name: str) -> None:
        count = self._resource_down[name] - 1
        if count:
            self._resource_down[name] = count
            return
        del self._resource_down[name]
        self._physical(name).online = True

    def _flaky_begin(self, name: str, probability: float) -> None:
        physical = self._physical(name)
        self._flaky_saved.setdefault(name, []).append(physical.failures)
        physical.failures = FailureInjector.for_resource(
            self._streams, name, probability)

    def _flaky_end(self, name: str) -> None:
        self._physical(name).failures = self._flaky_saved[name].pop()

    # -- links ---------------------------------------------------------------

    def _link_down_begin(self, ends: FrozenSet[str]) -> None:
        count = self._link_down.get(ends, 0)
        self._link_down[ends] = count + 1
        if count:
            return
        base = self._base[ends]
        self.dgms.topology.disconnect(base.a, base.b)
        transfers = self.dgms.transfers
        transfers.down_links.add(ends)
        transfers.fail_link(base.a, base.b)

    def _link_down_end(self, ends: FrozenSet[str]) -> None:
        count = self._link_down[ends] - 1
        if count:
            self._link_down[ends] = count
            return
        del self._link_down[ends]
        self.dgms.transfers.down_links.discard(ends)
        self._reconnect(ends)

    def _degrade_begin(self, ends: FrozenSet[str], factor: float) -> None:
        self._degraded.setdefault(ends, []).append(factor)
        if ends not in self._link_down:
            self._reconnect(ends)

    def _degrade_end(self, ends: FrozenSet[str], factor: float) -> None:
        factors = self._degraded[ends]
        factors.remove(factor)
        if not factors:
            del self._degraded[ends]
        if ends not in self._link_down:
            self._reconnect(ends)

    def _reconnect(self, ends: FrozenSet[str]) -> None:
        """(Re)install the link at ``ends`` with the composition of its
        pristine parameters and every still-open degradation, and re-point
        any in-flight transfers at the new link object."""
        base = self._base[ends]
        bandwidth = base.bandwidth_bps
        for factor in self._degraded.get(ends, ()):
            bandwidth *= factor
        link = self.dgms.topology.connect(base.a, base.b,
                                          base.latency_s, bandwidth)
        self.dgms.transfers.replace_link(link)


def attach_faults(dgms, schedule: FaultSchedule,
                  streams: Optional[RandomStreams] = None) -> FaultDriver:
    """Arm ``schedule`` against ``dgms``; returns the armed driver."""
    return FaultDriver(dgms, schedule, streams).arm()

"""Recovery policies: retry, failover, resume, checkpoint/restart.

The counterpart of :mod:`repro.faults.model`: faults make operations fail
with :class:`~repro.errors.Retryable` exceptions, and this module supplies
the policies that turn those failures back into completed work:

* :class:`RetryPolicy` — exponential backoff with bounded, seeded jitter
  (drawn from a dedicated ``recovery/*`` substream so retry timing never
  perturbs any other stochastic component).
* :class:`RecoveryService` — attached to a DGMS via
  :func:`attach_recovery`; gives reads alternate-replica failover and
  gives every WAN leg resume-from-offset semantics
  (:meth:`RecoveryService.run_transfer` restarts an interrupted transfer
  with only the bytes that had not yet arrived).
* :class:`FlowSupervisor` — wraps DfMS submissions in an automatic
  checkpoint/restart loop: when an execution fails with a retryable
  error, its journal is checkpointed, the supervisor backs off, and the
  flow is restored in replay mode so completed steps are skipped.

Dispatch is strictly by exception type (:class:`~repro.errors.Retryable`),
never by message text. With no service attached (``dgms.recovery is
None``) the DGMS takes its original code paths and behaviour is
bit-identical to a build without this module.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import (
    FaultError,
    NoRouteError,
    Retryable,
    TransferInterrupted,
)
from repro.dgl.model import ExecutionState
from repro.sim.rng import RandomStreams

__all__ = ["RetryPolicy", "RecoveryService", "FlowSupervisor",
           "attach_recovery"]

#: Stream names for the two jitter consumers.
BACKOFF_STREAM = "recovery/backoff"
SUPERVISOR_STREAM = "recovery/supervisor"


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with bounded jitter.

    Attempt ``n`` (1-based) sleeps
    ``min(max_delay, base_delay * multiplier**(n-1))`` scaled by a jitter
    factor uniform in ``[1-jitter, 1+jitter]``.
    """

    max_attempts: int = 5
    base_delay: float = 1.0
    multiplier: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise FaultError("delays cannot be negative")
        if self.multiplier < 1.0:
            raise FaultError(
                f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise FaultError(f"jitter must be in [0, 1), got {self.jitter}")

    def delay(self, attempt: int,
              rng: Optional[random.Random] = None) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        base = min(self.max_delay,
                   self.base_delay * self.multiplier ** max(0, attempt - 1))
        if rng is not None and self.jitter > 0.0:
            base *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        return base


class RecoveryService:
    """Per-DGMS recovery: transfer resume and failover accounting.

    The DGMS holds one (or ``None``) on its ``recovery`` attribute and
    duck-types into it, which keeps :mod:`repro.grid.dgms` free of any
    import of this package (the supervisor side imports the DfMS, which
    imports the DGMS — a cycle if the DGMS imported us back).
    """

    def __init__(self, env, policy: Optional[RetryPolicy] = None,
                 streams: Optional[RandomStreams] = None) -> None:
        self.env = env
        self.policy = policy if policy is not None else RetryPolicy()
        streams = streams if streams is not None else RandomStreams(0)
        self.rng = streams.stream(BACKOFF_STREAM)
        #: Action counts by kind (retry / resume / failover), for
        #: invariant checkers that run without a telemetry session.
        self.counts: Dict[str, int] = {}

    def count(self, kind: str) -> int:
        """How many actions of ``kind`` have been taken."""
        return self.counts.get(kind, 0)

    @property
    def total_actions(self) -> int:
        return sum(self.counts.values())

    def note(self, kind: str, **fields) -> None:
        """Record one recovery action (and mirror it to telemetry)."""
        self.counts[kind] = self.counts.get(kind, 0) + 1
        t = self.env.telemetry
        if t is not None:
            t.recovery_actions.labels(kind=kind).inc()
            t.log.emit(f"recovery.{kind}", **fields)

    def backoff(self, attempt: int, **fields):
        """Generator: jittered exponential sleep before retry ``attempt``."""
        delay = self.policy.delay(attempt, self.rng)
        self.note("retry", attempt=attempt, delay=round(delay, 6), **fields)
        yield self.env.timeout(delay)

    def run_transfer(self, transfers, src: str, dst: str, nbytes: float):
        """Generator: a WAN transfer that survives link churn.

        An interruption carries the byte offset already delivered, so the
        next attempt moves only the remainder; a missing route (the link
        is down and no detour exists) backs off until routing recovers.
        Gives up (re-raising) after ``policy.max_attempts`` failures.
        """
        policy = self.policy
        remaining = float(nbytes)
        attempt = 0
        while True:
            try:
                yield transfers.transfer(src, dst, remaining)
                return
            except TransferInterrupted as exc:
                attempt += 1
                if exc.transferred:
                    remaining = max(0.0, remaining - exc.transferred)
                    self.note("resume", src=src, dst=dst,
                              remaining=round(remaining, 3))
                if attempt >= policy.max_attempts:
                    raise
            except NoRouteError:
                attempt += 1
                if attempt >= policy.max_attempts:
                    raise
            yield from self.backoff(attempt, operation="transfer",
                                    src=src, dst=dst)


def attach_recovery(dgms, streams: Optional[RandomStreams] = None,
                    policy: Optional[RetryPolicy] = None) -> RecoveryService:
    """Give ``dgms`` failover reads and resumable transfers."""
    service = RecoveryService(dgms.env, policy=policy, streams=streams)
    dgms.recovery = service
    return service


class FlowSupervisor:
    """Automatic checkpoint/restart for DfMS executions.

    Wraps a submission (:meth:`run`) or an already-submitted request
    (:meth:`supervise`): whenever the execution fails with a
    :class:`~repro.errors.Retryable` error, the supervisor checkpoints
    its journal, backs off per the policy, and restores it in replay
    mode — completed steps are skipped, the failed step reruns. Gives up
    after ``policy.max_attempts`` rounds or on a non-retryable failure,
    returning the execution in whatever terminal state it reached.
    """

    def __init__(self, server, streams: Optional[RandomStreams] = None,
                 policy: Optional[RetryPolicy] = None,
                 recovery: Optional[RecoveryService] = None) -> None:
        self.server = server
        self.env = server.env
        self.policy = policy if policy is not None else RetryPolicy()
        streams = streams if streams is not None else RandomStreams(0)
        self.rng = streams.stream(SUPERVISOR_STREAM)
        #: Shared action ledger, when the run also has a DGMS-side
        #: recovery service (chaos invariants count both in one place).
        self.recovery = recovery
        self.restarts = 0

    def _note(self, **fields) -> None:
        self.restarts += 1
        if self.recovery is not None:
            self.recovery.note("restart", **fields)
            return
        t = self.env.telemetry
        if t is not None:
            t.recovery_actions.labels(kind="restart").inc()
            t.log.emit("recovery.restart", **fields)

    def run(self, request):
        """Generator: submit ``request`` and supervise it to completion.

        Returns the final :class:`~repro.dfms.execution.FlowExecution`.
        Raises :class:`FaultError` if the server rejects the document
        (rejections are not executions; there is nothing to restart).
        """
        response = self.server.submit(request)
        if not response.body.valid:
            raise FaultError(
                f"request rejected, nothing to supervise: "
                f"{response.body.message}")
        execution = yield from self.supervise(response.request_id)
        return execution

    def supervise(self, request_id: str):
        """Generator: watch one request, restarting retryable failures."""
        # Local import: this module is reachable from workload setup code
        # that must not pull the whole DfMS stack until a supervisor is
        # actually used.
        from repro.dfms.checkpoint import (
            checkpoint_execution,
            restore_execution,
        )
        attempt = 0
        while True:
            execution = yield self.server.wait(request_id)
            if execution.state is not ExecutionState.FAILED:
                return execution
            failure = execution.failure
            if not isinstance(failure, Retryable):
                return execution
            attempt += 1
            if attempt >= self.policy.max_attempts:
                return execution
            snapshot = checkpoint_execution(self.server, request_id)
            self._note(request_id=request_id, attempt=attempt,
                       steps_done=len(snapshot["journal"]),
                       error=type(failure).__name__)
            yield self.env.timeout(self.policy.delay(attempt, self.rng))
            restore_execution(self.server, snapshot, replace=True)

"""Faults & recovery: failure domains, retry/failover policies, chaos.

Two halves, deliberately separable:

* :mod:`repro.faults.model` — declarative, seeded fault schedules
  (storage / domain / link outages, bandwidth degradations, flaky
  windows) armed as kernel timeouts by a :class:`FaultDriver`.
* :mod:`repro.faults.recovery` — :class:`RetryPolicy` backoff,
  alternate-replica failover and transfer resume via
  :class:`RecoveryService`, and checkpoint/restart supervision of flow
  executions via :class:`FlowSupervisor`.

Attaching neither leaves the simulation bit-identical to a build without
this package; the chaos harness in :mod:`repro.workloads.chaos` runs both
against randomized schedules and checks the survival invariants.
"""

from repro.faults.model import (
    BridgeDegradation,
    DomainOutage,
    FaultDriver,
    FaultSchedule,
    FlakyWindow,
    LinkDegradation,
    LinkOutage,
    StorageOutage,
    ZoneOutage,
    attach_faults,
)
from repro.faults.recovery import (
    FlowSupervisor,
    RecoveryService,
    RetryPolicy,
    attach_recovery,
)

__all__ = [
    "BridgeDegradation",
    "DomainOutage",
    "FaultDriver",
    "FaultSchedule",
    "FlakyWindow",
    "FlowSupervisor",
    "LinkDegradation",
    "LinkOutage",
    "RecoveryService",
    "RetryPolicy",
    "StorageOutage",
    "ZoneOutage",
    "attach_faults",
    "attach_recovery",
]

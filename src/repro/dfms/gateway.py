"""An admission-controlled front end for the DfMS server.

The paper's DfMS answers DGL requests for "millions of users" (§1) but
our :class:`~repro.dfms.server.DfMSServer` is a thin dispatcher: every
submit starts a flow immediately, so offered load translates directly
into concurrent executions and there is no backpressure anywhere. This
module adds the production-shaped tier in front of it, mirroring how the
EU DataGrid services structure data management as load-managed request
streams:

* a **bounded request queue** drained by a fixed pool of kernel worker
  processes — ``workers`` is the server's concurrency bound, so backlog
  forms when offered load exceeds service rate instead of melting the
  engine;
* **token-bucket admission per virtual organization** — each VO refills
  at its provisioned rate (lazily, in sim time); a request that finds
  no token is shed immediately with an explicit
  :class:`~repro.dgl.model.RequestRejection` carrying ``retry_after_s``.
  Status queries are charged a fractional cost so a polling-heavy VO
  cannot starve its own submissions;
* **weighted-fair dequeue** (deficit round robin) across the VO lanes —
  a VO with weight 2 drains twice as fast as a weight-1 VO under
  contention, and an idle lane accumulates no credit;
* explicit **shed responses under overload** — a full queue rejects with
  ``queue-full`` rather than growing without bound.

Flow responses keep the server's protocol shape: the async path answers
with a ``PENDING`` :class:`~repro.dgl.model.RequestAcknowledgement`
carrying the (pre-allocated) real request id; :meth:`submit_sync` waits
for the queued flow to finish and returns the final status response.
Status queries for a still-queued id are answered by the gateway itself.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.dgl.model import (
    DataGridRequest,
    DataGridResponse,
    ExecutionState,
    FlowStatusQuery,
    RequestAcknowledgement,
    RequestRejection,
)
from repro.dfms.server import DfMSServer
from repro.ids import IdFactory
from repro.sim.kernel import Environment, Event

__all__ = ["DfMSGateway", "TokenBucket", "VOPolicy"]

#: Fraction of a flow-submission token a status query costs.
STATUS_QUERY_COST = 0.25


class TokenBucket:
    """A lazily-refilled token bucket in sim time.

    ``rate`` tokens arrive per sim second up to ``burst``; the balance is
    brought forward on every :meth:`take` from the elapsed sim time, so
    no kernel events are scheduled for refills.
    """

    def __init__(self, env: Environment, rate: float, burst: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("token bucket needs positive rate and burst")
        self.env = env
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._refilled_at = env.now

    def _refill(self) -> None:
        now = self.env.now
        elapsed = now - self._refilled_at
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self._refilled_at = now

    def take(self, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens if available; False means throttled."""
        self._refill()
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False

    def eta(self, cost: float = 1.0) -> float:
        """Sim seconds until ``cost`` tokens will have accrued."""
        self._refill()
        deficit = cost - self.tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate


class VOPolicy:
    """Admission provisioning for one virtual organization."""

    __slots__ = ("rate", "burst", "weight")

    def __init__(self, rate: float = 10.0, burst: float = 20.0,
                 weight: float = 1.0) -> None:
        if weight < 1.0:
            raise ValueError("DRR weights must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self.weight = float(weight)


class _Entry:
    """One queued (or running) gateway request."""

    __slots__ = ("request", "vo", "enqueued_at", "started_at", "done",
                 "response")

    def __init__(self, request: DataGridRequest, vo: str,
                 enqueued_at: float, done: Event) -> None:
        self.request = request
        self.vo = vo
        self.enqueued_at = enqueued_at
        self.started_at: Optional[float] = None
        self.done = done
        self.response: Optional[DataGridResponse] = None


class DfMSGateway:
    """Bounded-queue, token-bucket, weighted-fair DfMS front end."""

    def __init__(self, env: Environment, server: DfMSServer,
                 name: Optional[str] = None,
                 queue_limit: int = 64, workers: int = 4,
                 default_policy: Optional[VOPolicy] = None,
                 vo_policies: Optional[Dict[str, VOPolicy]] = None,
                 status_query_cost: float = STATUS_QUERY_COST) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")
        if workers < 1:
            raise ValueError("the gateway needs at least one worker")
        self.env = env
        self.server = server
        self.name = name if name is not None else f"{server.name}-gw"
        self.queue_limit = int(queue_limit)
        self.workers = int(workers)
        self.default_policy = default_policy or VOPolicy()
        self.vo_policies: Dict[str, VOPolicy] = dict(vo_policies or {})
        self.status_query_cost = float(status_query_cost)
        self.ids = IdFactory()
        self._buckets: Dict[str, TokenBucket] = {}
        # DRR state: per-VO FIFO lanes of request ids + a rotation of
        # the VOs that currently have queued work.
        self._lanes: Dict[str, Deque[str]] = {}
        self._active: Deque[str] = deque()
        self._deficit: Dict[str, float] = {}
        self._depth = 0
        #: High-water mark of the queue depth (saturation evidence).
        self.peak_depth = 0
        # Every admitted, not-yet-finished request (queued or running).
        self._entries: Dict[str, _Entry] = {}
        self._park: Optional[Event] = None
        #: Counters for reports; telemetry mirrors them when attached.
        self.admitted = 0
        self.completed = 0
        self.succeeded = 0
        self.coalesced = 0
        self.sheds: Dict[str, int] = {}
        # Same-instant status-answer memo: monitoring fan-outs poll the
        # same (request_id, granularity) at the same virtual instant;
        # the first answer is reused, later duplicates never reach the
        # server. Cleared the moment the clock moves.
        self._status_memo: Dict[tuple, DataGridResponse] = {}
        self._status_memo_at = -1.0
        #: Queue-wait per dequeued request, and submit→finish sojourn per
        #: finished flow (sim seconds) — the benchmark's raw material.
        self.queue_waits: List[float] = []
        self.sojourns: List[float] = []
        for _ in range(self.workers):
            env.process(self._worker())

    # -- policy and bookkeeping ----------------------------------------------

    def policy_for(self, vo: str) -> VOPolicy:
        """The admission policy covering ``vo``."""
        return self.vo_policies.get(vo, self.default_policy)

    def _bucket(self, vo: str) -> TokenBucket:
        bucket = self._buckets.get(vo)
        if bucket is None:
            policy = self.policy_for(vo)
            bucket = TokenBucket(self.env, policy.rate, policy.burst)
            self._buckets[vo] = bucket
        return bucket

    @property
    def queue_depth(self) -> int:
        """Requests admitted but not yet dequeued by a worker."""
        return self._depth

    def queued(self, request_id: str) -> bool:
        """True while ``request_id`` sits in the gateway queue."""
        entry = self._entries.get(request_id)
        return entry is not None and entry.started_at is None

    def stats(self) -> Dict[str, object]:
        """A plain-dict snapshot for reports and benchmarks."""
        return {
            "admitted": self.admitted, "completed": self.completed,
            "succeeded": self.succeeded, "shed": dict(self.sheds),
            "queue_depth": self._depth, "peak_depth": self.peak_depth,
            "coalesced": self.coalesced,
        }

    def _set_depth_gauge(self) -> None:
        telemetry = self.env.telemetry
        if telemetry is not None:
            telemetry.gateway_queue_depth.labels(
                gateway=self.name).set(self._depth)

    def _note_shed(self, reason: str) -> None:
        self.sheds[reason] = self.sheds.get(reason, 0) + 1
        telemetry = self.env.telemetry
        if telemetry is not None:
            telemetry.gateway_shed.labels(
                gateway=self.name, reason=reason).inc()

    def _note_admitted(self) -> None:
        self.admitted += 1
        telemetry = self.env.telemetry
        if telemetry is not None:
            telemetry.gateway_admitted.labels(gateway=self.name).inc()

    # -- status-poll coalescing ----------------------------------------------

    def _status_answer(self, request: DataGridRequest) -> DataGridResponse:
        """Answer a not-queued status query, coalescing duplicates.

        Monitoring fan-outs (dashboards, per-step pollers) issue the
        same ``(request_id, path, max_depth)`` query many times at the
        same virtual instant; only the first reaches the server — later
        duplicates get the identical answer back (status is a pure read,
        so within one instant the answers are interchangeable). Each
        query is still charged its token cost before landing here:
        coalescing saves server work, not admission budget.
        """
        if self.env.now != self._status_memo_at:  # dgf: noqa[DGF004]: intentional exact identity — the memo is valid only while the clock has not moved at all; any advance, however small, must invalidate it
            self._status_memo.clear()
            self._status_memo_at = self.env.now
        key = (request.body.request_id, request.body.path,
               request.body.max_depth)
        cached = self._status_memo.get(key)
        if cached is not None:
            self._note_coalesced()
            return cached
        response = self._query_server(request)
        self._status_memo[key] = response
        return response

    def _query_server(self, request: DataGridRequest) -> DataGridResponse:
        """The one seam status queries cross to the server (tests count
        calls here to prove coalescing)."""
        return self.server.submit(request)

    def _note_coalesced(self) -> None:
        self.coalesced += 1
        telemetry = self.env.telemetry
        if telemetry is not None:
            telemetry.gateway_coalesced.labels(gateway=self.name).inc()

    # -- admission ------------------------------------------------------------

    def _shed(self, reason: str, message: str,
              retry_after_s: Optional[float] = None) -> DataGridResponse:
        self._note_shed(reason)
        request_id = self.ids.next(f"{self.name}.shed")
        return DataGridResponse(
            request_id=request_id,
            body=RequestRejection(request_id=request_id, reason=reason,
                                  message=message,
                                  retry_after_s=retry_after_s))

    def submit(self, request: DataGridRequest) -> DataGridResponse:
        """Handle one request; always returns immediately.

        Flow requests are admitted (token bucket, then queue bound) and
        answered with a ``PENDING`` acknowledgement carrying the real
        request id, or shed with a :class:`RequestRejection`. Status
        queries are charged fractionally, answered here while the target
        is still queued, and forwarded to the server otherwise.
        """
        vo = request.virtual_organization
        bucket = self._bucket(vo)
        if isinstance(request.body, FlowStatusQuery):
            if not bucket.take(self.status_query_cost):
                return self._shed(
                    "throttled",
                    f"virtual organization {vo!r} is over its query rate",
                    retry_after_s=bucket.eta(self.status_query_cost))
            if self.queued(request.body.request_id):
                return DataGridResponse(
                    request_id=request.body.request_id,
                    body=RequestAcknowledgement(
                        request_id=request.body.request_id,
                        state=ExecutionState.PENDING, valid=True,
                        message=f"queued at {self.name}"))
            return self._status_answer(request)
        if not bucket.take(1.0):
            return self._shed(
                "throttled",
                f"virtual organization {vo!r} is over its submit rate",
                retry_after_s=bucket.eta(1.0))
        if self._depth >= self.queue_limit:
            return self._shed(
                "queue-full",
                f"{self.name} queue is at its bound of {self.queue_limit}")
        request_id = self.server.allocate_request_id()
        entry = _Entry(request, vo, self.env.now, self.env.event())
        self._entries[request_id] = entry
        lane = self._lanes.get(vo)
        if lane is None:
            lane = self._lanes[vo] = deque()
        if vo not in self._deficit:
            self._deficit[vo] = 0.0
            self._active.append(vo)
        lane.append(request_id)
        self._depth += 1
        if self._depth > self.peak_depth:
            self.peak_depth = self._depth
        self._note_admitted()
        self._set_depth_gauge()
        self._wake()
        return DataGridResponse(
            request_id=request_id,
            body=RequestAcknowledgement(
                request_id=request_id, state=ExecutionState.PENDING,
                valid=True, message=f"queued by {self.name}"))

    def submit_sync(self, request: DataGridRequest):
        """Generator (sim process body): submit and wait for completion.

        Sheds, status queries, and invalid documents return immediately,
        exactly like :meth:`submit`; an admitted flow waits out both the
        queue and the execution.
        """
        response = self.submit(request)
        if (response.is_rejection
                or isinstance(request.body, FlowStatusQuery)
                or not response.body.valid):
            return response
            yield   # pragma: no cover - makes this function a generator
        entry = self._entries[response.request_id]
        yield entry.done
        return entry.response

    # -- weighted-fair dequeue -----------------------------------------------

    def _dequeue(self) -> Optional[str]:
        """Next request id under deficit round robin, if any.

        The head VO is topped up by its weight once per visit and keeps
        the head while its credit lasts, so a weight-``w`` VO drains
        ``w`` requests per round under contention. A lane that empties
        drops its deficit entirely — idle VOs bank no credit.
        """
        while self._active:
            vo = self._active[0]
            lane = self._lanes.get(vo)
            if not lane:
                self._active.popleft()
                self._deficit.pop(vo, None)
                continue
            if self._deficit[vo] < 1.0:
                # A fresh visit in this round: credit the VO's weight.
                # Weights are >= 1, so the head can always serve.
                self._deficit[vo] += self.policy_for(vo).weight
            self._deficit[vo] -= 1.0
            request_id = lane.popleft()
            if not lane:
                self._active.popleft()
                self._deficit.pop(vo, None)
                del self._lanes[vo]
            elif self._deficit[vo] < 1.0:
                self._active.rotate(-1)
            self._depth -= 1
            self._set_depth_gauge()
            return request_id
        return None

    # -- workers ---------------------------------------------------------------

    def _parked(self) -> Event:
        if self._park is None:
            self._park = self.env.event()
        return self._park

    def _wake(self) -> None:
        if self._park is not None:
            park, self._park = self._park, None
            park.succeed()

    def _worker(self):
        """One drain loop: dequeue → start flow → wait it out → repeat."""
        while True:
            request_id = self._dequeue()
            if request_id is None:
                yield self._parked()
                continue
            entry = self._entries[request_id]
            entry.started_at = self.env.now
            wait = entry.started_at - entry.enqueued_at
            self.queue_waits.append(wait)
            telemetry = self.env.telemetry
            if telemetry is not None:
                telemetry.gateway_queue_wait.labels(
                    gateway=self.name).samples.append(
                        (entry.started_at, wait))
            response = self.server.start_flow(entry.request, request_id)
            if not response.body.valid:
                self._finish(request_id, entry, response)
                continue
            execution = self.server.execution(request_id)
            if not execution.state.is_terminal:
                yield execution.done
            self._finish(request_id, entry, DataGridResponse(
                request_id=request_id,
                body=execution.status.snapshot()))

    def _finish(self, request_id: str, entry: _Entry,
                response: DataGridResponse) -> None:
        entry.response = response
        self.completed += 1
        body = response.body
        if getattr(body, "state", None) is ExecutionState.COMPLETED:
            self.succeeded += 1
        self.sojourns.append(self.env.now - entry.enqueued_at)
        del self._entries[request_id]
        entry.done.succeed(response)

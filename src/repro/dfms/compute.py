"""Simulated compute resources.

Data-intensive workflows run business logic on "a certain number of compute
nodes" (§2.3). A :class:`ComputeResource` models one cluster at one domain:
a bounded pool of core slots with a relative speed factor. Execution time
for a task is ``base_duration / speed_factor`` once a slot is held; queueing
for slots is what makes scheduling heuristics matter.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SchedulingError
from repro.sim.kernel import Environment
from repro.sim.resources import Request, Resource

__all__ = ["ComputeResource"]


class ComputeResource:
    """A pool of cores at one domain."""

    def __init__(self, name: str, domain: str, cores: int,
                 speed_factor: float = 1.0,
                 env: Optional[Environment] = None) -> None:
        if cores < 1:
            raise SchedulingError(f"cores must be >= 1, got {cores}")
        if speed_factor <= 0:
            raise SchedulingError(f"speed factor must be positive, got {speed_factor}")
        self.name = name
        self.domain = domain
        self.cores = cores
        self.speed_factor = float(speed_factor)
        self.online = True
        self._slots: Optional[Resource] = None
        if env is not None:
            self.attach(env)
        # Accounting for the cost model's "CPU cycles left idle" term.
        self.busy_core_seconds = 0.0
        self.tasks_run = 0

    def attach(self, env: Environment) -> None:
        """Bind the core pool to a simulation environment."""
        self.env = env
        self._slots = Resource(env, capacity=self.cores)

    @property
    def slots(self) -> Resource:
        if self._slots is None:
            raise SchedulingError(
                f"compute resource {self.name!r} is not attached to an "
                "environment")
        return self._slots

    @property
    def cores_in_use(self) -> int:
        return self.slots.count

    @property
    def queue_length(self) -> int:
        return self.slots.queue_length

    def run_time(self, base_duration: float) -> float:
        """Wall time for a task of ``base_duration`` reference seconds."""
        if base_duration < 0:
            raise SchedulingError(f"negative duration: {base_duration}")
        return base_duration / self.speed_factor

    def execute(self, base_duration: float):
        """Generator: acquire a core, run the task, release (timed)."""
        request: Request = self.slots.request()
        yield request
        try:
            duration = self.run_time(base_duration)
            yield self.env.timeout(duration)
            self.busy_core_seconds += duration
            self.tasks_run += 1
        finally:
            self.slots.release(request)

    def idle_core_seconds(self, horizon_seconds: float) -> float:
        """Idle core-seconds over ``[0, horizon]`` — the §2.3 idle-CPU cost."""
        return max(0.0, self.cores * horizon_seconds - self.busy_core_seconds)

    def __repr__(self) -> str:
        return (f"<ComputeResource {self.name} @{self.domain} "
                f"{self.cores}x{self.speed_factor:g}>")

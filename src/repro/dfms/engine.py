"""The recursive DGL flow interpreter.

Executes a :class:`~repro.dgl.model.Flow` over the simulation kernel:

* each Flow opens a variable scope and runs its children under its
  FlowLogic's control pattern (sequential, parallel, while, repeat,
  for-each over a datagrid query, switch-case);
* each Step expands its operation's ``${...}`` parameter templates against
  the scope chain and invokes the bound operation handler (timed handlers
  run as simulation processes);
* the reserved ``beforeEntry`` / ``afterExit`` rules run around flows and
  steps; the reserved ``onError`` rule gives steps fault handling
  (retry / ignore / abort — "fault handling information for the processes
  could also be provided in the execution logic", §2.3);
* the engine honours pause / resume / cancel at every step boundary and
  journals completed step instances so a checkpointed execution can be
  restarted without redoing work (§2.1: ILM processes "could be started,
  stopped and restarted at any time").

Observability: every progress notification goes through the
``listeners`` event bus (one emission path shared by
:class:`~repro.dfms.monitoring.ExecutionMonitor` push-watchers and the
telemetry layer), and when a telemetry session is attached to the
environment the engine additionally opens execution → flow → step tracing
spans, propagating span context into the separate simulation processes it
spawns for parallel branches and timed operation handlers.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import (
    DGLValidationError,
    ExecutionError,
    ExpressionError,
    ReproError,
)
from repro.dfms.context import ExecutionContext
from repro.dfms.execution import FlowExecution
from repro.dgl.expressions import (
    Scope,
    evaluate,
    evaluate_condition,
    render_template,
)
from repro.dgl.model import (
    AFTER_EXIT,
    BEFORE_ENTRY,
    ExecutionState,
    Flow,
    FlowStatus,
    ForEach,
    Operation,
    Parallel,
    Repeat,
    Sequential,
    Step,
    SwitchCase,
    UserDefinedRule,
    WhileLoop,
)
from repro.dgl.operations import OperationRegistry
from repro.grid.query import Query, parse_conditions
from repro.sim.kernel import Environment
from repro.sim.resources import Resource

__all__ = ["FlowEngine", "FlowCancelled", "ON_ERROR"]

#: Reserved rule name for step fault handling.
ON_ERROR = "onError"

#: Safety bound on while/repeat loops, so a buggy DGL document cannot hang
#: the simulation. Generous relative to any workload in the experiments.
MAX_LOOP_ITERATIONS = 1_000_000

#: Flow nesting is interpreted with native recursion (a few Python frames
#: per level), so Python's recursion limit caps practical depth near 200.
#: Documents are validated against this before execution.
MAX_NESTING_DEPTH = 150


class FlowCancelled(ReproError):
    """Internal control-flow signal: the execution was cancelled."""


class FlowEngine:
    """Interprets flows for a DfMS server."""

    def __init__(self, env: Environment, registry: OperationRegistry) -> None:
        self.env = env
        self.registry = registry
        #: Observers of engine progress; each is called as
        #: listener(kind, execution, instance_key, time, detail_dict).
        self.listeners: List[Callable] = []

    # -- public entry -----------------------------------------------------

    def start(self, execution: FlowExecution, ctx: ExecutionContext):
        """Launch ``execution`` as a simulation process and return it."""
        return self.env.process(self._run_root(execution, ctx))

    # -- notifications ------------------------------------------------------

    def _notify(self, kind: str, execution: FlowExecution, key: str,
                **detail) -> None:
        listeners = self.listeners
        if listeners:
            now = self.env._now
            for listener in listeners:
                listener(kind, execution, key, now, detail)

    # -- control gate --------------------------------------------------------

    def _gate(self, execution: FlowExecution):
        """Honour pause/cancel requests; runs at every step boundary."""
        if execution.cancel_requested:
            raise FlowCancelled(execution.request_id)
        while execution.pause_requested:
            if execution.state is not ExecutionState.PAUSED:
                execution.state = ExecutionState.PAUSED
                self._notify("paused", execution, "")
            yield execution.wait_for_resume()
            if execution.cancel_requested:
                raise FlowCancelled(execution.request_id)
        if execution.state is ExecutionState.PAUSED:
            execution.state = ExecutionState.RUNNING
            self._notify("resumed", execution, "")

    # -- root ------------------------------------------------------------------

    def _run_root(self, execution: FlowExecution, ctx: ExecutionContext):
        execution.state = ExecutionState.RUNNING
        self._notify("execution_started", execution, "")
        t = self.env.telemetry
        # Spans are parented explicitly: each _run_* level holds its own
        # span in a local and passes it down as the children's parent
        # (Tracer.begin/finish — no context-stack bookkeeping).
        span = None if t is None else t.tracer.begin(
            "execution", None,
            {"request_id": execution.request_id,
             "flow": execution.flow.name})
        try:
            yield from self._run_flow(execution.flow, execution.status,
                                      ctx.scope, ctx, execution, "", span)
        except FlowCancelled:
            execution.finish(ExecutionState.CANCELLED)
            self._notify("execution_cancelled", execution, "")
        except Exception as exc:
            execution.finish(ExecutionState.FAILED, error=str(exc),
                             failure=exc)
            self._notify("execution_failed", execution, "", error=str(exc),
                         error_type=type(exc).__name__)
        else:
            execution.finish(ExecutionState.COMPLETED)
            self._notify("execution_completed", execution, "")
        if span is not None:
            t.tracer.finish(
                span, status="ok" if execution.state is
                ExecutionState.COMPLETED else execution.state.value)
        return execution

    # -- flows ------------------------------------------------------------------

    def _run_flow(self, flow: Flow, status: FlowStatus, parent_scope: Scope,
                  ctx: ExecutionContext, execution: FlowExecution,
                  prefix: str, parent_span=None):
        yield from self._gate(execution)
        if status.started_at is None:
            status.started_at = self.env.now
        status.state = ExecutionState.RUNNING
        self._notify("flow_started", execution, prefix or flow.name)
        t = self.env.telemetry
        span = None if t is None else t.tracer.begin(
            "flow", parent_span,
            {"key": prefix or flow.name,
             "request_id": execution.request_id})
        scope = Scope(parent=parent_scope)
        for variable in flow.variables:
            scope.declare(variable.name,
                          render_template(variable.value, parent_scope))
        try:
            yield from self._run_rule_if_defined(
                flow.logic.rule(BEFORE_ENTRY), scope, ctx, execution)
            yield from self._dispatch_pattern(flow, status, scope, ctx,
                                              execution, prefix, span)
            yield from self._run_rule_if_defined(
                flow.logic.rule(AFTER_EXIT), scope, ctx, execution)
        except FlowCancelled:
            status.state = ExecutionState.CANCELLED
            status.finished_at = self.env.now
            if span is not None:
                t.tracer.finish(span, status="cancelled")
            raise
        except Exception as exc:
            status.state = ExecutionState.FAILED
            status.error = str(exc)
            status.finished_at = self.env.now
            self._notify("flow_failed", execution, prefix or flow.name,
                         error=str(exc), error_type=type(exc).__name__)
            if span is not None:
                t.tracer.finish(span, status="error")
            raise
        status.state = ExecutionState.COMPLETED
        status.finished_at = self.env.now
        if span is not None:
            t.tracer.finish(span)
        self._notify("flow_completed", execution, prefix or flow.name)

    def _dispatch_pattern(self, flow, status, scope, ctx, execution, prefix,
                          span=None):
        pattern = flow.logic.pattern
        if isinstance(pattern, Sequential):
            yield from self._run_children_once(flow, status, scope, ctx,
                                               execution, prefix, span)
        elif isinstance(pattern, Parallel):
            yield from self._run_parallel(flow, status, scope, ctx,
                                          execution, prefix, pattern, span)
        elif isinstance(pattern, WhileLoop):
            yield from self._run_loop(
                flow, status, scope, ctx, execution, prefix, span,
                should_continue=lambda i: bool(
                    evaluate_condition(pattern.condition, scope)))
        elif isinstance(pattern, Repeat):
            count = pattern.count
            if isinstance(count, str):
                count = int(render_template(count, scope)
                            if "${" in count else evaluate(count, scope))
            if count < 0:
                raise ExecutionError(f"repeat count is negative: {count}")
            yield from self._run_loop(
                flow, status, scope, ctx, execution, prefix, span,
                should_continue=lambda i: i < count)
        elif isinstance(pattern, ForEach):
            yield from self._run_foreach(flow, status, scope, ctx,
                                         execution, prefix, pattern, span)
        elif isinstance(pattern, SwitchCase):
            yield from self._run_switch(flow, status, scope, ctx,
                                        execution, prefix, pattern, span)
        else:  # pragma: no cover - FlowLogic already validates
            raise DGLValidationError(
                f"unknown control pattern {type(pattern).__name__}")

    def _run_children_once(self, flow, status, scope, ctx, execution, prefix,
                           span=None):
        for child, child_status in zip(flow.children, status.children):
            yield from self._run_child(child, child_status, scope, ctx,
                                       execution, prefix, span)

    def _run_child(self, child, child_status, scope, ctx, execution, prefix,
                   span=None):
        key = f"{prefix}/{child.name}" if prefix else child.name
        if isinstance(child, Flow):
            yield from self._run_flow(child, child_status, scope, ctx,
                                      execution, key, span)
        else:
            yield from self._run_step(child, child_status, scope, ctx,
                                      execution, key, span)

    def _run_parallel(self, flow, status, scope, ctx, execution, prefix,
                      pattern: Parallel, span=None):
        limiter: Optional[Resource] = None
        if pattern.max_concurrent:
            limiter = Resource(self.env, capacity=pattern.max_concurrent)

        def _bounded(child, child_status):
            if limiter is None:
                yield from self._run_child(child, child_status, scope, ctx,
                                           execution, prefix, span)
                return
            request = limiter.request()
            yield request
            try:
                yield from self._run_child(child, child_status, scope, ctx,
                                           execution, prefix, span)
            finally:
                limiter.release(request)

        # Branches run as separate kernel processes. The flow span
        # reaches their steps as the closed-over `span` argument; pin it
        # on the process too so any work that reads the active process's
        # span context (rules spawning, transfers) parents correctly.
        def _branch(child, child_status):
            process = self.env.process(_bounded(child, child_status))
            process._tspan = span
            return process

        processes = [_branch(child, child_status)
                     for child, child_status in
                     zip(flow.children, status.children)]
        # Wait for every branch to settle, then surface the first error —
        # failing fast would orphan still-running siblings.
        first_error: Optional[BaseException] = None
        for process in processes:
            try:
                yield process
            except BaseException as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

    def _run_loop(self, flow, status, scope, ctx, execution, prefix, span=None,
                  should_continue=None):
        iteration = 0
        while should_continue(iteration):
            if iteration >= MAX_LOOP_ITERATIONS:
                raise ExecutionError(
                    f"flow {flow.name!r} exceeded {MAX_LOOP_ITERATIONS} "
                    "iterations; aborting (runaway loop?)")
            yield from self._gate(execution)
            iter_prefix = (f"{prefix}[{iteration}]" if prefix
                           else f"{flow.name}[{iteration}]")
            for child, child_status in zip(flow.children, status.children):
                yield from self._run_child(child, child_status, scope, ctx,
                                           execution, iter_prefix, span)
            iteration += 1
            status.iterations = iteration

    def _run_foreach(self, flow, status, scope, ctx, execution, prefix,
                     pattern: ForEach, span=None):
        if pattern.items is not None:
            items = evaluate(pattern.items, scope)
            if not isinstance(items, list):
                raise ExecutionError(
                    f"forEach items expression must yield a list, "
                    f"got {type(items).__name__}")
        else:
            collection = render_template(pattern.collection, scope)
            conditions = parse_conditions(
                render_template(pattern.query, scope) if pattern.query else "")
            query = Query(collection=collection, conditions=conditions)
            items = [obj.path for obj in ctx.dgms.query(ctx.user, query)]
        scope.declare(pattern.item_variable, None)
        for index, item in enumerate(items):
            yield from self._gate(execution)
            scope.declare(pattern.item_variable, item)
            iter_prefix = (f"{prefix}[{index}]" if prefix
                           else f"{flow.name}[{index}]")
            for child, child_status in zip(flow.children, status.children):
                yield from self._run_child(child, child_status, scope, ctx,
                                           execution, iter_prefix, span)
            status.iterations = index + 1

    def _run_switch(self, flow, status, scope, ctx, execution, prefix,
                    pattern: SwitchCase, span=None):
        value = evaluate_condition(pattern.expression, scope)
        child = flow.child(value) if isinstance(value, str) else None
        if child is None and pattern.default is not None:
            child = flow.child(pattern.default)
        if child is None:
            return   # no matching case and no default: a no-op (documented)
        index = flow.children.index(child)
        yield from self._run_child(child, status.children[index], scope, ctx,
                                   execution, prefix, span)

    # -- steps ------------------------------------------------------------------

    def _run_step(self, step: Step, status: FlowStatus, parent_scope: Scope,
                  ctx: ExecutionContext, execution: FlowExecution, key: str,
                  parent_span=None):
        yield from self._gate(execution)
        entry = execution.journalled(key)
        if entry is not None:
            # Recovery: this instance already completed before the restart.
            for name, value in entry.effects:
                parent_scope.assign(name, value)
            status.state = ExecutionState.COMPLETED
            if status.started_at is None:
                status.started_at = self.env.now
            status.finished_at = self.env.now
            self._notify("step_replayed", execution, key)
            return
        if status.started_at is None:
            status.started_at = self.env.now
        status.state = ExecutionState.RUNNING
        self._notify("step_started", execution, key,
                     operation=step.operation.name)
        t = self.env.telemetry
        if t is None:
            span = None
        else:
            span = t.tracer.begin(
                "step", parent_span,
                {"key": key, "operation": step.operation.name,
                 "request_id": execution.request_id})
            # Make the step span this process's span context for the
            # step's duration, so synchronous transfers and spawned
            # handler processes (_invoke) parent under it.
            active = self.env._active_process
            prev_tspan = active._tspan
            active._tspan = span
        scope = Scope(parent=parent_scope)
        for variable in step.variables:
            scope.declare(variable.name,
                          render_template(variable.value, parent_scope))
        step_ctx = ctx.for_step(scope, step.requirements)
        try:
            yield from self._run_rule_if_defined(
                step.rule(BEFORE_ENTRY), scope, step_ctx, execution)
            result = yield from self._run_operation_with_fault_handling(
                step, scope, step_ctx, execution)
            if step.operation.assign_to is not None:
                parent_scope.assign(step.operation.assign_to, result)
                step_ctx.effects.append((step.operation.assign_to, result))
            yield from self._run_rule_if_defined(
                step.rule(AFTER_EXIT), scope, step_ctx, execution)
        except FlowCancelled:
            status.state = ExecutionState.CANCELLED
            status.finished_at = self.env.now
            if span is not None:
                active._tspan = prev_tspan
                t.tracer.finish(span, status="cancelled")
            raise
        except Exception as exc:
            status.state = ExecutionState.FAILED
            status.error = str(exc)
            status.finished_at = self.env.now
            self._notify("step_failed", execution, key, error=str(exc),
                         error_type=type(exc).__name__)
            if span is not None:
                active._tspan = prev_tspan
                t.tracer.finish(span, status="error")
            raise
        status.state = ExecutionState.COMPLETED
        status.finished_at = self.env.now
        if span is not None:
            active._tspan = prev_tspan
            t.tracer.finish(span)
            # Raw sample append; buckets fold at export (see Histogram).
            t.dfms_step_duration.samples.append(
                (status.finished_at,
                 status.finished_at - status.started_at))
        execution.record_step(key, step_ctx.effects)
        self._notify("step_completed", execution, key,
                     operation=step.operation.name)

    def _run_operation_with_fault_handling(self, step, scope, step_ctx,
                                           execution):
        attempts = 0
        while True:
            try:
                result = yield from self._invoke(step.operation, scope,
                                                 step_ctx)
                return result
            except FlowCancelled:
                raise
            except Exception as exc:
                decision = self._fault_decision(step, scope, exc)
                if decision is None:
                    raise
                action, params = decision
                if action == "retry":
                    attempts += 1
                    t = self.env.telemetry
                    if t is not None:
                        t.dfms_step_retries.inc()
                    max_attempts = int(params.get("max", 3))
                    if attempts > max_attempts:
                        raise ExecutionError(
                            f"step {step.name!r} failed after "
                            f"{attempts} attempts: {exc}") from exc
                    delay = float(params.get("delay", 0.0))
                    if delay > 0:
                        yield self.env.timeout(delay)
                    continue
                if action == "ignore":
                    return None
                raise   # "abort" or a notification action that ran already

    def _fault_decision(self, step, scope, exc):
        """Consult the step's onError rule. Returns (kind, params) or None.

        The rule's condition is evaluated with ``error`` bound to the
        failure message; the chosen action's operation decides the outcome:
        ``dgl.retry`` / ``dgl.ignore`` / ``dgl.abort``. Any other operation
        is treated as abort (the step still fails after it is noted).
        """
        rule = step.rule(ON_ERROR)
        if rule is None:
            return None
        error_scope = Scope(parent=scope)
        error_scope.declare("error", str(exc))
        try:
            value = evaluate_condition(rule.condition, error_scope)
        except ExpressionError:
            return None
        action = None
        if value is True:
            action = rule.actions[0]
        elif isinstance(value, str):
            for candidate in rule.actions:
                if candidate.name == value:
                    action = candidate
                    break
        if action is None:
            return None
        operation = action.operation
        if operation.name == "dgl.retry":
            return "retry", operation.parameters
        if operation.name == "dgl.ignore":
            return "ignore", operation.parameters
        return "abort", operation.parameters

    # -- rules -------------------------------------------------------------------

    def _run_rule_if_defined(self, rule: Optional[UserDefinedRule],
                             scope: Scope, ctx: ExecutionContext,
                             execution: FlowExecution):
        if rule is None:
            return
        value = evaluate_condition(rule.condition, scope)
        action = None
        if value is True:
            action = rule.actions[0]
        elif isinstance(value, str):
            for candidate in rule.actions:
                if candidate.name == value:
                    action = candidate
                    break
        if action is None:
            return
        yield from self._invoke(action.operation, scope, ctx)

    # -- operations -----------------------------------------------------------------

    def _invoke(self, operation: Operation, scope: Scope,
                ctx: ExecutionContext):
        handler = self.registry.get(operation.name)
        params = {name: render_template(value, scope)
                  for name, value in operation.parameters.items()}
        result = handler(ctx, params)
        if OperationRegistry.is_timed(result):
            process = self.env.process(result)
            t = self.env.telemetry
            if t is not None:
                # Timed handlers run as separate kernel processes; hand
                # them the invoking process's span context (the step's
                # span) so transfers they start parent under it.
                process._tspan = self.env._active_process._tspan
            result = yield process
        return result

"""Checkpoint and restart of long-run executions.

§2.1 requires that datagrid ILM processes "could be started, stopped and
restarted at any time" — including across DfMS server restarts, which is
more than :meth:`~repro.dfms.execution.FlowExecution.pause` gives. A
checkpoint is a JSON document holding the original DGL request plus the
journal of completed step instances. Restoring replays the flow in
recovery mode: journalled steps are skipped instantly (their recorded
variable effects re-applied), and execution continues live from the first
instance not in the journal.

This is step-granularity recovery, the standard discipline for workflow
engines: datagrid side effects of completed steps already live in the grid,
so skipping them is exactly right; a step that was mid-flight at checkpoint
time reruns from scratch.
"""

from __future__ import annotations

import json

from repro.errors import CheckpointError
from repro.dfms.context import ExecutionContext
from repro.dfms.execution import FlowExecution, JournalEntry
from repro.dfms.server import DfMSServer
from repro.dgl.expressions import Scope
from repro.dgl.model import Flow
from repro.dgl.xml_io import request_from_xml, request_to_xml

__all__ = ["checkpoint_execution", "restore_execution",
           "checkpoint_to_json", "checkpoint_from_json"]

FORMAT_VERSION = 1


def checkpoint_execution(server: DfMSServer, request_id: str) -> dict:
    """Capture a restartable snapshot of one execution.

    Typically taken while the execution is paused, but any instant works:
    the journal only ever contains *completed* step instances.
    """
    execution = server.execution(request_id)
    request = server.request_document(request_id)
    return {
        "format": FORMAT_VERSION,
        "request_id": request_id,
        "request_xml": request_to_xml(request),
        "submitted_at": execution.submitted_at,
        "journal": [
            {"key": entry.instance_key,
             "effects": [[name, value] for name, value in entry.effects],
             "finished_at": entry.finished_at}
            for entry in execution.journal.values()
        ],
    }


def restore_execution(server: DfMSServer, snapshot: dict,
                      replace: bool = False) -> FlowExecution:
    """Recreate and restart an execution from a checkpoint snapshot.

    The restored execution keeps its original request identifier, so status
    queries issued against the old identifier keep working on the new
    server instance. ``replace=True`` permits restoring onto a server
    that still holds the (terminal) original — the automatic
    checkpoint/restart path of
    :class:`repro.faults.recovery.FlowSupervisor`.
    """
    if snapshot.get("format") != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint format {snapshot.get('format')!r}")
    try:
        request = request_from_xml(snapshot["request_xml"])
        request_id = snapshot["request_id"]
        journal_entries = snapshot["journal"]
    except KeyError as exc:
        raise CheckpointError(f"checkpoint is missing {exc}") from None
    if not isinstance(request.body, Flow):
        raise CheckpointError("checkpointed request does not carry a flow")
    execution = FlowExecution(
        request_id=request_id, flow=request.body, user_name=request.user,
        virtual_organization=request.virtual_organization, env=server.env)
    execution.submitted_at = snapshot.get("submitted_at",
                                          execution.submitted_at)
    for entry in journal_entries:
        execution.journal[entry["key"]] = JournalEntry(
            instance_key=entry["key"],
            effects=[(name, value) for name, value in entry["effects"]],
            finished_at=entry["finished_at"])
    execution.replaying = True
    server.adopt_execution(execution, request, replace=replace)
    user = server.dgms.users.get(request.user)
    ctx = ExecutionContext(env=server.env, dgms=server.dgms, user=user,
                           scope=Scope(), execution=execution, server=server)
    server.engine.start(execution, ctx)
    return execution


def checkpoint_to_json(snapshot: dict) -> str:
    """Serialize a snapshot for durable storage."""
    try:
        return json.dumps(snapshot, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise CheckpointError(f"checkpoint not serializable: {exc}") from None


def checkpoint_from_json(text: str) -> dict:
    """Parse a snapshot previously produced by :func:`checkpoint_to_json`."""
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"corrupt checkpoint: {exc}") from None

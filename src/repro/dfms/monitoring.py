"""Programmatic monitoring of running datagridflows.

§2.1's requirement list includes a "programmatic API to query and monitor
any step in the datagrid ILM process". Status queries (pull) exist on the
server; this module adds the push half: an :class:`ExecutionMonitor`
subscribes to the engine's event stream and fans events out to filtered
watchers — by request, by step path, by event kind — plus simulation
events that trigger when a given task reaches a given state (so flows can
be coordinated from other processes).

The monitor is a subscriber on ``FlowEngine.listeners`` — the same event
bus the telemetry layer (:mod:`repro.telemetry`) attaches to — so
push-watchers, metrics, spans, and the structured event log all observe
one emission path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.dgl.model import ExecutionState
from repro.dfms.server import DfMSServer
from repro.sim.kernel import Event

__all__ = ["EngineEvent", "ExecutionMonitor"]


@dataclass(frozen=True)
class EngineEvent:
    """One observed engine event, as delivered to watchers."""

    kind: str                 # step_started / step_completed / paused / ...
    request_id: str
    instance_key: str         # step/flow instance path ('' for the root)
    time: float
    detail: Dict[str, object] = field(default_factory=dict)


class ExecutionMonitor:
    """Filtered push notifications over one server's engine events."""

    def __init__(self, server: DfMSServer) -> None:
        self.server = server
        self.events_seen = 0
        self._watchers: List[Tuple[dict, Callable[[EngineEvent], None]]] = []
        self._waits: List[Tuple[dict, Event]] = []
        server.engine.listeners.append(self._on_engine_event)

    # -- subscription -----------------------------------------------------

    def watch(self, callback: Callable[[EngineEvent], None],
              request_id: Optional[str] = None,
              kind: Optional[str] = None,
              key_prefix: Optional[str] = None) -> Callable[[], None]:
        """Register a watcher; returns an unsubscribe function.

        Every filter is optional and conjunctive: ``request_id`` pins one
        execution, ``kind`` one event kind (e.g. ``step_completed``),
        ``key_prefix`` a task subtree (e.g. ``stage-2/``).
        """
        filters = {"request_id": request_id, "kind": kind,
                   "key_prefix": key_prefix}
        entry = (filters, callback)
        self._watchers.append(entry)

        def _unsubscribe() -> None:
            try:
                self._watchers.remove(entry)
            except ValueError:
                pass

        return _unsubscribe

    #: Target states :meth:`wait_for` can watch, mapped to the engine
    #: event-kind suffix that announces them.
    WAITABLE_STATES = {
        ExecutionState.COMPLETED: "completed",
        ExecutionState.FAILED: "failed",
        ExecutionState.RUNNING: "started",
        ExecutionState.CANCELLED: "cancelled",
    }

    def wait_for(self, request_id: str, key: str = "",
                 state: ExecutionState = ExecutionState.COMPLETED) -> Event:
        """Simulation event triggering when task ``key`` reaches ``state``.

        Triggers immediately if the task is already there. Yields the
        matching :class:`EngineEvent` (or a synthetic one when already
        satisfied). Only states the engine announces are watchable
        (:attr:`WAITABLE_STATES`); asking for any other state — PENDING,
        PAUSED — raises :class:`ValueError` rather than registering a
        wait that could never trigger.
        """
        kind = self.WAITABLE_STATES.get(state)
        if kind is None:
            # getattr, not state.value: a caller passing a plain string
            # (or anything else) deserves the same clear error naming
            # exactly what they asked for, not an AttributeError.
            offending = getattr(state, "value", state)
            raise ValueError(
                f"cannot wait for state {offending!r}; watchable states "
                f"are {sorted(s.value for s in self.WAITABLE_STATES)}")
        event = self.server.env.event()
        status = self.server.status(request_id).find(key)
        if status is not None and status.state is state:
            event.succeed(EngineEvent(
                kind="already", request_id=request_id, instance_key=key,
                time=self.server.env.now))
            return event
        self._waits.append(({"request_id": request_id, "key": key,
                             "suffix": kind}, event))
        return event

    # -- delivery ------------------------------------------------------------

    @staticmethod
    def _matches(filters: dict, event: EngineEvent) -> bool:
        if (filters["request_id"] is not None
                and event.request_id != filters["request_id"]):
            return False
        if filters["kind"] is not None and event.kind != filters["kind"]:
            return False
        if (filters["key_prefix"] is not None
                and not event.instance_key.startswith(filters["key_prefix"])):
            return False
        return True

    #: Lifecycle transitions mirrored into the structured event log as
    #: ``monitor.transition`` records, so causal traces cover what the
    #: monitor's watchers saw even when nothing subscribed.
    LIFECYCLE_KINDS = frozenset({
        "execution_started", "execution_completed", "execution_failed",
        "execution_cancelled", "paused", "resumed"})

    def _on_engine_event(self, kind, execution, instance_key, time,
                         detail) -> None:
        self.events_seen += 1
        event = EngineEvent(kind=kind, request_id=execution.request_id,
                            instance_key=instance_key, time=time,
                            detail=dict(detail))
        telemetry = self.server.env.telemetry
        if telemetry is not None and kind in self.LIFECYCLE_KINDS:
            telemetry.log.emit("monitor.transition", state=kind,
                               request_id=execution.request_id,
                               key=instance_key)
        for filters, callback in list(self._watchers):
            if self._matches(filters, event):
                callback(event)
        # Loop instances carry iteration suffixes ("loop[2]/work"); a wait
        # on the *definition* path matches any instance of it.
        stripped = _strip_iterations(instance_key)
        for entry in list(self._waits):
            filters, sim_event = entry
            if execution.request_id != filters["request_id"]:
                continue
            if filters["suffix"] is None or not kind.endswith(
                    filters["suffix"]):
                # Execution-level waits match execution_* events on key ''.
                continue
            if stripped != filters["key"] and instance_key != filters["key"]:
                continue
            self._waits.remove(entry)
            if not sim_event.triggered:
                sim_event.succeed(event)
                if telemetry is not None:
                    telemetry.log.emit(
                        "monitor.wait_satisfied", state=kind,
                        request_id=execution.request_id, key=instance_key)


def _strip_iterations(key: str) -> str:
    """Remove ``[i]`` iteration suffixes from an instance key."""
    out = []
    depth = 0
    for char in key:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        elif depth == 0:
            out.append(char)
    return "".join(out)

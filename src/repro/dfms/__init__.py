"""The Datagridflow Management System (DfMS).

Server, admission-controlled gateway + cache tier, flow-interpreter
engine, execution control (pause / resume / cancel / checkpoint /
restore), infrastructure description + scheduling, virtual data, and the
peer-to-peer server network.
"""

from repro.dfms.bindings import bind_default_operations
from repro.dfms.cache import DgmsCache, attach_cache
from repro.dfms.checkpoint import (
    checkpoint_execution,
    checkpoint_from_json,
    checkpoint_to_json,
    restore_execution,
)
from repro.dfms.compute import ComputeResource
from repro.dfms.context import ExecutionContext
from repro.dfms.engine import ON_ERROR, FlowCancelled, FlowEngine
from repro.dfms.gateway import DfMSGateway, TokenBucket, VOPolicy
from repro.dfms.execution import FlowExecution, JournalEntry, build_status_tree
from repro.dfms.idl import (
    SLA,
    DomainDescription,
    InfrastructureDescription,
    StorageOffer,
)
from repro.dfms.monitoring import EngineEvent, ExecutionMonitor
from repro.dfms.p2p import DfMSNetwork, LookupServer
from repro.dfms.procedures import (
    ProcedureParameter,
    ProcedureRegistry,
    StoredProcedure,
)
from repro.dfms.server import DfMSServer
from repro.dfms.virtualdata import Derivation, VirtualDataCatalog

__all__ = [
    "DfMSServer", "DfMSGateway", "TokenBucket", "VOPolicy",
    "DgmsCache", "attach_cache",
    "FlowEngine", "FlowExecution", "ExecutionContext",
    "FlowCancelled", "ON_ERROR", "JournalEntry", "build_status_tree",
    "bind_default_operations",
    "ComputeResource", "InfrastructureDescription", "DomainDescription",
    "StorageOffer", "SLA",
    "VirtualDataCatalog", "Derivation",
    "checkpoint_execution", "restore_execution",
    "checkpoint_to_json", "checkpoint_from_json",
    "DfMSNetwork", "LookupServer",
    "StoredProcedure", "ProcedureParameter", "ProcedureRegistry",
    "ExecutionMonitor", "EngineEvent",
]

"""The DfMS server (the paper's SRB Matrix server).

"The DfMS server can service DGL requests both synchronously and
asynchronously. DfMS server manages state information about all the tasks,
which can be queried at any time. The DfMS server works on top of the
datagrid server (DGMS)" (§3.2).

Protocol (Appendix A):

* :meth:`submit` — handle one :class:`~repro.dgl.model.DataGridRequest`.
  A flow request starts executing and is answered immediately with a
  :class:`~repro.dgl.model.RequestAcknowledgement` carrying the unique
  request identifier (the asynchronous path). A status-query request is
  answered immediately with a detached snapshot of the status tree at
  the requested path and depth — only the requested granularity is
  copied, so status-heavy traffic never pays for the full tree. Invalid
  documents are answered with ``valid=False`` rather than an exception —
  the response's validity field exists for exactly this.
* :meth:`submit_sync` — the synchronous path: a generator that completes
  only when the flow does, returning the full status response.
* :meth:`pause` / :meth:`resume` / :meth:`cancel` — the §2.1 control
  surface for long-run processes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import DfMSError, UnknownRequestError
from repro.dfms.bindings import bind_default_operations
from repro.dfms.compute import ComputeResource
from repro.dfms.context import ExecutionContext
from repro.dfms.engine import MAX_NESTING_DEPTH, FlowEngine
from repro.dfms.execution import FlowExecution
from repro.dfms.idl import InfrastructureDescription
from repro.dfms.scheduler.cost import CostModel, CostWeights
from repro.dfms.scheduler.placer import Placer
from repro.dfms.virtualdata import VirtualDataCatalog
from repro.dgl.expressions import Scope
from repro.dgl.model import (
    DataGridRequest,
    DataGridResponse,
    ExecutionState,
    FlowStatus,
    FlowStatusQuery,
    RequestAcknowledgement,
)
from repro.dgl.operations import OperationRegistry
from repro.dgl.schema import validate_request
from repro.errors import DGLValidationError
from repro.grid.dgms import DataGridManagementSystem
from repro.ids import IdFactory
from repro.sim.kernel import Environment
from repro.sim.rng import RandomStreams

__all__ = ["DfMSServer"]


class DfMSServer:
    """One datagridflow management server on top of one DGMS."""

    def __init__(self, env: Environment, dgms: DataGridManagementSystem,
                 name: str = "matrix-1",
                 registry: Optional[OperationRegistry] = None,
                 infrastructure: Optional[InfrastructureDescription] = None,
                 placement_policy: str = "greedy",
                 cost_weights: Optional[CostWeights] = None,
                 streams: Optional[RandomStreams] = None) -> None:
        self.env = env
        self.dgms = dgms
        self.name = name
        self.registry = registry or bind_default_operations()
        self.engine = FlowEngine(env, self.registry)
        self.ids = IdFactory()
        self.virtual_data = VirtualDataCatalog(dgms)
        self.cost_model = CostModel(dgms, weights=cost_weights)
        self.placer: Optional[Placer] = None
        self._placement_policy = placement_policy
        # Randomized placement draws from a named substream of the
        # run's seeded RandomStreams (the repo-wide DGF002 convention),
        # keyed by server name so co-hosted servers stay decorrelated.
        self._rng = (streams.stream(f"{name}.placer")
                     if streams is not None else None)
        self._compute: Dict[str, ComputeResource] = {}
        self.infrastructure: Optional[InfrastructureDescription] = None
        if infrastructure is not None:
            self.set_infrastructure(infrastructure)
        self._executions: Dict[str, FlowExecution] = {}
        self._requests: Dict[str, DataGridRequest] = {}
        #: Advertised liveness; the P2P lookup service skips offline peers.
        self.online = True
        #: Optional zone federation this server participates in; enables
        #: the ``fed.copy`` operation for cross-grid flows (§2.1 BBSRC).
        self.federation = None
        # Stored procedures (§2.2); local import avoids a module cycle.
        from repro.dfms.procedures import ProcedureRegistry
        self.procedures = ProcedureRegistry(self)

    # ------------------------------------------------------------------
    # Infrastructure
    # ------------------------------------------------------------------

    def set_infrastructure(self,
                           infrastructure: InfrastructureDescription) -> None:
        """Adopt an infrastructure description (attaching its compute)."""
        self.infrastructure = infrastructure
        self._compute = {}
        for compute in infrastructure.all_compute():
            if compute._slots is None:
                compute.attach(self.env)
            self._compute[compute.name] = compute
        self.placer = Placer(infrastructure, self.cost_model,
                             policy=self._placement_policy, rng=self._rng)

    def compute_resource(self, name: str) -> Optional[ComputeResource]:
        """The registered compute resource called ``name``, if any."""
        return self._compute.get(name)

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    def _reject(self, request_id: str, message: str) -> DataGridResponse:
        return DataGridResponse(
            request_id=request_id,
            body=RequestAcknowledgement(
                request_id=request_id, state=ExecutionState.FAILED,
                valid=False, message=message))

    def _start_execution(self, request: DataGridRequest,
                         request_id: str) -> FlowExecution:
        user = self.dgms.users.get(request.user)
        execution = FlowExecution(
            request_id=request_id, flow=request.body,
            user_name=request.user,
            virtual_organization=request.virtual_organization, env=self.env)
        ctx = ExecutionContext(env=self.env, dgms=self.dgms, user=user,
                               scope=Scope(), execution=execution,
                               server=self)
        self._executions[request_id] = execution
        self._requests[request_id] = request
        self.engine.start(execution, ctx)
        return execution

    def _admit(self, request: DataGridRequest, request_id: str):
        """Validate and start a flow request. Returns (execution, error)."""
        try:
            validate_request(request)
        except DGLValidationError as exc:
            return None, f"invalid DGL document: {exc}"
        missing = self.registry.missing_operations(request.body)
        if missing:
            return None, f"unknown operations: {', '.join(missing)}"
        problems = self.registry.parameter_problems(request.body)
        if problems:
            return None, "; ".join(problems)
        if request.body.depth() > MAX_NESTING_DEPTH:
            return None, (f"flow nests {request.body.depth()} levels deep; "
                          f"the engine supports at most {MAX_NESTING_DEPTH}")
        if request.user not in self.dgms.users:
            return None, f"unknown grid user {request.user!r}"
        return self._start_execution(request, request_id), None

    def allocate_request_id(self) -> str:
        """Allocate the next request identifier without admitting anything.

        The gateway pre-allocates identifiers for queued requests so the
        queued acknowledgement already carries the id the flow will run
        under; pair with :meth:`start_flow`.
        """
        return self.ids.next(f"{self.name}.dgr")

    def start_flow(self, request: DataGridRequest,
                   request_id: str) -> DataGridResponse:
        """Admit and start a flow request under a pre-allocated id.

        The dequeue half of the gateway protocol: validation failures
        come back as ``valid=False`` responses exactly like
        :meth:`submit`.
        """
        execution, error = self._admit(request, request_id)
        if error is not None:
            return self._reject(request_id, error)
        return DataGridResponse(
            request_id=request_id,
            body=RequestAcknowledgement(
                request_id=request_id, state=execution.state, valid=True,
                message=f"accepted by {self.name}"))

    def submit(self, request: DataGridRequest) -> DataGridResponse:
        """Handle a request; always returns immediately.

        Flow requests are acknowledged and run in the background; status
        queries are answered in place.
        """
        if isinstance(request.body, FlowStatusQuery):
            return self._answer_status_query(request.body)
        return self.start_flow(request, self.allocate_request_id())

    def submit_oneway(self, request: DataGridRequest) -> None:
        """Fire-and-forget submission (Appendix A's one-way messages).

        No response document is produced — not even an acknowledgement.
        Invalid documents are dropped silently, exactly the trade-off
        one-way messaging makes; callers who need delivery confirmation
        use :meth:`submit`.
        """
        if isinstance(request.body, FlowStatusQuery):
            return   # a status query with nowhere to send the answer
        self._admit(request, self.allocate_request_id())

    def submit_sync(self, request: DataGridRequest):
        """Generator (sim process body): submit and wait for completion.

        Returns the final :class:`DataGridResponse` carrying the full
        status tree. Status queries and invalid documents return
        immediately, exactly like :meth:`submit`.
        """
        response = self.submit(request)
        if (isinstance(request.body, FlowStatusQuery)
                or not response.body.valid):
            return response
            yield   # pragma: no cover - makes this function a generator
        execution = self._executions[response.request_id]
        if not execution.state.is_terminal:
            yield execution.done
        return DataGridResponse(request_id=response.request_id,
                                body=execution.status.snapshot())

    def _answer_status_query(self, query: FlowStatusQuery) -> DataGridResponse:
        execution = self._executions.get(query.request_id)
        if execution is None:
            return self._reject(
                query.request_id,
                f"unknown request {query.request_id!r}")
        status = execution.status.find(query.path or "")
        if status is None:
            return self._reject(
                query.request_id,
                f"no task at path {query.path!r} in {query.request_id}")
        return DataGridResponse(request_id=query.request_id,
                                body=status.snapshot(query.max_depth))

    # ------------------------------------------------------------------
    # Programmatic control and inspection
    # ------------------------------------------------------------------

    def execution(self, request_id: str) -> FlowExecution:
        """The execution for ``request_id`` (raises if unknown)."""
        try:
            return self._executions[request_id]
        except KeyError:
            raise UnknownRequestError(
                f"{self.name} knows no request {request_id!r}") from None

    def request_document(self, request_id: str) -> DataGridRequest:
        """The original request document (used by checkpointing)."""
        try:
            return self._requests[request_id]
        except KeyError:
            raise UnknownRequestError(
                f"{self.name} knows no request {request_id!r}") from None

    def status(self, request_id: str, path: Optional[str] = None,
               max_depth: Optional[int] = None) -> FlowStatus:
        """A detached status snapshot of one request, optionally narrowed
        to a subtree (``path``) and truncated to ``max_depth`` levels."""
        execution = self.execution(request_id)
        status = execution.status.find(path or "")
        if status is None:
            raise UnknownRequestError(
                f"no task at path {path!r} in {request_id}")
        return status.snapshot(max_depth)

    def pause(self, request_id: str) -> None:
        """Pause ``request_id`` at its next step boundary."""
        self.execution(request_id).pause()

    def resume(self, request_id: str) -> None:
        """Resume a paused ``request_id``."""
        self.execution(request_id).resume()

    def cancel(self, request_id: str) -> None:
        """Stop ``request_id`` at its next step boundary."""
        self.execution(request_id).cancel()

    def wait(self, request_id: str):
        """Event that triggers when the request reaches a terminal state."""
        execution = self.execution(request_id)
        if execution.state.is_terminal:
            event = self.env.event()
            event.succeed(execution)
            return event
        return execution.done

    # -- load, for the P2P network ------------------------------------------

    @property
    def running_count(self) -> int:
        """Executions not yet in a terminal state."""
        return sum(1 for execution in self._executions.values()
                   if not execution.state.is_terminal)

    def executions(self) -> List[FlowExecution]:
        """All executions this server has accepted."""
        return list(self._executions.values())

    def adopt_execution(self, execution: FlowExecution,
                        request: DataGridRequest,
                        replace: bool = False) -> None:
        """Register a restored execution (checkpoint recovery path).

        ``replace=True`` lets a recovery supervisor restart a *terminal*
        (typically FAILED) execution in place: the identifier keeps
        resolving, now to the restarted attempt. Replacing a live
        execution is still refused — two engines would race on one
        request id.
        """
        existing = self._executions.get(execution.request_id)
        if existing is not None:
            if not (replace and existing.state.is_terminal):
                raise DfMSError(
                    f"request {execution.request_id!r} already registered")
        self._executions[execution.request_id] = execution
        self._requests[execution.request_id] = request

"""Default operation bindings for the DfMS.

"DGL supports a number of DataGrid related operations for SDSC's Storage
Resource Broker (SRB) or execution of business logic (code) by the DfMS
server" (Appendix A). Three families:

* ``dgl.*`` — language utilities (logging, variable assignment, sleeping,
  deliberate failure for tests, and the onError markers);
* ``srb.*`` — the datagrid operations, delegating to the DGMS;
* ``exec`` — business-logic execution: inputs staged from their nearest
  replicas, a compute slot acquired (placement chosen *late*, at this
  instant, unless a ``compute`` pin is present), the task run, the output
  ingested back into the grid. Integrates the virtual-data catalog:
  declaring a ``transformation`` makes equivalent re-derivations no-ops.

Handlers return JSON-safe values (paths, digests, dicts) so journal replay
and checkpointing stay serializable.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ExecutionError, SchedulingError
from repro.dfms.context import ExecutionContext
from repro.dfms.scheduler.cost import TaskSpec
from repro.dgl.operations import OperationRegistry
from repro.grid.query import Query, parse_conditions

__all__ = ["bind_default_operations"]


# --------------------------------------------------------------------------
# dgl.* utilities
# --------------------------------------------------------------------------


def _dgl_noop(ctx: ExecutionContext, params) -> None:
    return None


def _dgl_log(ctx: ExecutionContext, params) -> None:
    ctx.log(params.get("message", ""))


def _dgl_set(ctx: ExecutionContext, params):
    try:
        name = params["variable"]
    except KeyError:
        raise ExecutionError("dgl.set needs a 'variable' parameter") from None
    value = params.get("value")
    ctx.assign(name, value)
    return value


def _dgl_sleep(ctx: ExecutionContext, params):
    duration = float(params.get("duration", 0.0))
    if duration < 0:
        raise ExecutionError(f"dgl.sleep duration cannot be negative: {duration}")
    yield ctx.env.timeout(duration)
    return duration


def _dgl_fail(ctx: ExecutionContext, params) -> None:
    raise ExecutionError(params.get("message", "dgl.fail invoked"))


def _dgl_call(ctx: ExecutionContext, params):
    """Invoke a stored procedure and wait for it (§2.2 composition).

    Parameters: ``procedure`` names the stored procedure; ``arg:<name>``
    parameters become its arguments. The calling step fails if the
    procedure's execution fails, so errors propagate naturally.
    """
    name = _require(params, "procedure", "dgl.call")
    if ctx.server is None:
        raise ExecutionError("dgl.call needs a DfMS server")
    arguments = {key[len("arg:"):]: value for key, value in params.items()
                 if key.startswith("arg:")}
    response = ctx.server.procedures.call(
        ctx.user, name, arguments,
        virtual_organization=ctx.execution.virtual_organization)
    if not response.body.valid:
        raise ExecutionError(
            f"dgl.call {name!r} rejected: {response.body.message}")
    yield ctx.server.wait(response.request_id)
    status = ctx.server.status(response.request_id)
    if status.state.value != "completed":
        raise ExecutionError(
            f"procedure {name!r} ({response.request_id}) ended "
            f"{status.state.value}: {status.error}")
    return response.request_id


def _only_in_on_error(name: str):
    def _handler(ctx: ExecutionContext, params) -> None:
        raise ExecutionError(
            f"{name} is a fault-handling marker; it is only meaningful as "
            "an onError rule action")
    return _handler


# --------------------------------------------------------------------------
# srb.* datagrid operations
# --------------------------------------------------------------------------


def _metadata_from_params(params) -> dict:
    """Collect ``meta:<attr>`` parameters into a metadata dict."""
    return {key[len("meta:"):]: value for key, value in params.items()
            if key.startswith("meta:")}


def _require(params, name: str, operation: str):
    try:
        return params[name]
    except KeyError:
        raise ExecutionError(
            f"{operation} needs a {name!r} parameter") from None


def _srb_create_collection(ctx: ExecutionContext, params):
    path = _require(params, "path", "srb.create_collection")
    ctx.dgms.create_collection(ctx.user, path,
                               parents=bool(params.get("parents", True)))
    return path


def _srb_put(ctx: ExecutionContext, params):
    path = _require(params, "path", "srb.put")
    size = float(_require(params, "size", "srb.put"))
    resource = _require(params, "resource", "srb.put")
    obj = yield ctx.dgms.put(
        ctx.user, path, size, resource,
        source_domain=params.get("source_domain"),
        metadata=_metadata_from_params(params) or None)
    return obj.path


def _srb_get(ctx: ExecutionContext, params):
    path = _require(params, "path", "srb.get")
    to_domain = _require(params, "to_domain", "srb.get")
    obj = yield ctx.dgms.get(ctx.user, path, to_domain,
                             replica_policy=params.get("replica_policy",
                                                       "nearest"))
    return obj.path


def _srb_replicate(ctx: ExecutionContext, params):
    path = _require(params, "path", "srb.replicate")
    resource = _require(params, "resource", "srb.replicate")
    replica = yield ctx.dgms.replicate(
        ctx.user, path, resource,
        replica_policy=params.get("replica_policy", "nearest"))
    return replica.physical_name


def _srb_migrate(ctx: ExecutionContext, params):
    path = _require(params, "path", "srb.migrate")
    from_physical = _require(params, "from_physical", "srb.migrate")
    resource = _require(params, "resource", "srb.migrate")
    replica = yield ctx.dgms.migrate(ctx.user, path, from_physical, resource)
    return replica.physical_name


def _srb_delete(ctx: ExecutionContext, params):
    path = _require(params, "path", "srb.delete")
    yield ctx.dgms.delete(ctx.user, path)
    return path


def _srb_remove_replica(ctx: ExecutionContext, params):
    path = _require(params, "path", "srb.remove_replica")
    physical = _require(params, "physical", "srb.remove_replica")
    yield ctx.dgms.remove_replica(ctx.user, path, physical)
    return path


def _srb_checksum(ctx: ExecutionContext, params):
    path = _require(params, "path", "srb.checksum")
    digest = yield ctx.dgms.checksum(ctx.user, path,
                                     algorithm=params.get("algorithm", "md5"))
    return digest


def _srb_set_metadata(ctx: ExecutionContext, params):
    path = _require(params, "path", "srb.set_metadata")
    attribute = _require(params, "attribute", "srb.set_metadata")
    value = _require(params, "value", "srb.set_metadata")
    ctx.dgms.set_metadata(ctx.user, path, attribute, value,
                          unit=params.get("unit"))
    return value


def _srb_move(ctx: ExecutionContext, params):
    src = _require(params, "src", "srb.move")
    dst = _require(params, "dst", "srb.move")
    ctx.dgms.move(ctx.user, src, dst)
    return dst


def _srb_grant(ctx: ExecutionContext, params):
    """Change an ACL from a flow.

    §2.1's ILM processes "could involve … changing access permissions on
    some data before they are migrated or archived"; this is that step.
    """
    from repro.grid.acl import Permission
    path = _require(params, "path", "srb.grant")
    principal = _require(params, "principal", "srb.grant")
    level_name = str(_require(params, "permission", "srb.grant")).upper()
    try:
        permission = Permission[level_name]
    except KeyError:
        raise ExecutionError(
            f"srb.grant: unknown permission {level_name!r} "
            f"(use NONE/READ/WRITE/OWN)") from None
    ctx.dgms.grant(ctx.user, path, principal, permission)
    return level_name


def _srb_stat(ctx: ExecutionContext, params):
    """Stat one entry; returns a JSON-safe summary dict."""
    path = _require(params, "path", "srb.stat")
    node = ctx.dgms.stat(ctx.user, path)
    from repro.grid.namespace import DataObject
    if isinstance(node, DataObject):
        return {"path": node.path, "kind": "object", "size": node.size,
                "version": node.version,
                "replicas": len(node.good_replicas()),
                "checksum": node.checksum,
                "metadata": node.metadata.as_dict()}
    return {"path": node.path, "kind": "collection",
            "children": len(node),
            "metadata": node.metadata.as_dict()}


def _srb_query(ctx: ExecutionContext, params):
    collection = _require(params, "collection", "srb.query")
    conditions = parse_conditions(params.get("query", ""))
    query = Query(collection=collection, conditions=conditions,
                  recursive=bool(params.get("recursive", True)),
                  limit=params.get("limit"))
    return [obj.path for obj in ctx.dgms.query(ctx.user, query)]


# --------------------------------------------------------------------------
# fed.* — cross-zone (federated) operations
# --------------------------------------------------------------------------


def _fed_copy(ctx: ExecutionContext, params):
    """Copy an object from one federated zone into another (§2.1's
    cross-grid archival, e.g. hospital grids into the BBSRC archive).

    Parameters: ``src_zone``, ``src_path``, ``dst_zone``, ``dst_path``,
    ``dst_resource``. Requires the server to be joined to a federation.
    """
    if ctx.server is None or ctx.server.federation is None:
        raise ExecutionError(
            "fed.copy needs a DfMS server joined to a federation")
    copied = yield ctx.server.federation.cross_zone_copy(
        ctx.user,
        _require(params, "src_zone", "fed.copy"),
        _require(params, "src_path", "fed.copy"),
        _require(params, "dst_zone", "fed.copy"),
        _require(params, "dst_path", "fed.copy"),
        _require(params, "dst_resource", "fed.copy"))
    return copied.path


# --------------------------------------------------------------------------
# exec — business logic
# --------------------------------------------------------------------------


def _resolve_compute(ctx: ExecutionContext, params, task: TaskSpec):
    """Concrete compute resource: a pin if present, else late binding."""
    pin = params.get("compute")
    if pin is not None:
        if ctx.server is None:
            raise SchedulingError("a pinned exec step needs a DfMS server")
        compute = ctx.server.compute_resource(pin)
        if compute is None:
            raise SchedulingError(
                f"pinned compute resource {pin!r} is not registered")
        if not compute.online:
            raise SchedulingError(
                f"pinned compute resource {pin!r} is offline "
                "(early binding met infrastructure churn)")
        return compute
    if ctx.server is not None and ctx.server.placer is not None:
        return ctx.server.placer.place(ctx.execution.virtual_organization,
                                       task)
    return None   # no infrastructure description: run unscheduled


def _exec(ctx: ExecutionContext, params):
    """Run business logic: stage in, compute, stage out."""
    duration = float(params.get("duration", 0.0))
    inputs_text = str(params.get("inputs", "") or "")
    input_paths = [p for p in inputs_text.split(",") if p]
    output_path = params.get("output_path")
    output_size = float(params.get("output_size", 0.0))
    transformation = params.get("transformation")

    catalog = ctx.server.virtual_data if ctx.server is not None else None
    if catalog is not None and transformation and output_path:
        existing = catalog.lookup(transformation, input_paths)
        if existing is not None:
            ctx.log(f"virtual data hit: {transformation} -> {existing}")
            return {"output": existing, "virtual_data_hit": True,
                    "domain": None, "elapsed": 0.0}

    task = TaskSpec(name=transformation or "exec",
                    duration=duration,
                    input_paths=tuple(input_paths),
                    output_size=output_size,
                    requirements=dict(ctx.requirements))
    compute = _resolve_compute(ctx, params, task)
    domain = compute.domain if compute is not None else ctx.user.domain
    started = ctx.env.now

    # Claim the core slot *before* staging, in the same resume that chose
    # the placement: later placements then see this claim in the live load
    # counters, which is what keeps greedy placement from dog-piling one
    # resource when many steps start at the same instant.
    slot = compute.slots.request() if compute is not None else None
    try:
        if slot is not None:
            yield slot
        for path in input_paths:
            yield ctx.dgms.get(ctx.user, path, to_domain=domain,
                               replica_policy=params.get("replica_policy",
                                                         "nearest"))
        if compute is not None:
            run_seconds = compute.run_time(duration)
            yield ctx.env.timeout(run_seconds)
            compute.busy_core_seconds += run_seconds
            compute.tasks_run += 1
        elif duration > 0:
            yield ctx.env.timeout(duration)
    finally:
        if slot is not None:
            compute.slots.release(slot)

    if output_path:
        resource = params.get("output_resource")
        if resource is None:
            raise ExecutionError(
                "exec with output_path needs an output_resource")
        yield ctx.dgms.put(ctx.user, output_path, output_size, resource,
                           source_domain=domain)
        if catalog is not None and transformation:
            catalog.record(transformation, input_paths, output_path,
                           time=ctx.env.now)
    return {"output": output_path, "virtual_data_hit": False,
            "domain": domain, "elapsed": ctx.env.now - started}


# --------------------------------------------------------------------------
# Registry assembly
# --------------------------------------------------------------------------


def bind_default_operations(
        registry: Optional[OperationRegistry] = None) -> OperationRegistry:
    """Register every default operation into ``registry`` (or a new one)."""
    registry = registry or OperationRegistry()
    registry.register("dgl.noop", _dgl_noop)
    registry.register("dgl.log", _dgl_log)
    registry.register("dgl.set", _dgl_set, required_params=("variable",))
    registry.register("dgl.sleep", _dgl_sleep)
    registry.register("dgl.fail", _dgl_fail)
    registry.register("dgl.call", _dgl_call, required_params=("procedure",))
    for marker in ("dgl.retry", "dgl.ignore", "dgl.abort"):
        registry.register(marker, _only_in_on_error(marker))
    registry.register("srb.create_collection", _srb_create_collection,
                      required_params=("path",))
    registry.register("srb.put", _srb_put,
                      required_params=("path", "size", "resource"))
    registry.register("srb.get", _srb_get,
                      required_params=("path", "to_domain"))
    registry.register("srb.replicate", _srb_replicate,
                      required_params=("path", "resource"))
    registry.register("srb.migrate", _srb_migrate,
                      required_params=("path", "from_physical", "resource"))
    registry.register("srb.delete", _srb_delete, required_params=("path",))
    registry.register("srb.remove_replica", _srb_remove_replica,
                      required_params=("path", "physical"))
    registry.register("srb.checksum", _srb_checksum,
                      required_params=("path",))
    registry.register("srb.set_metadata", _srb_set_metadata,
                      required_params=("path", "attribute", "value"))
    registry.register("srb.move", _srb_move, required_params=("src", "dst"))
    registry.register("srb.grant", _srb_grant,
                      required_params=("path", "principal", "permission"))
    registry.register("srb.stat", _srb_stat, required_params=("path",))
    registry.register("srb.query", _srb_query,
                      required_params=("collection",))
    registry.register("fed.copy", _fed_copy,
                      required_params=("src_zone", "src_path", "dst_zone",
                                       "dst_path", "dst_resource"))
    registry.register("exec", _exec)
    return registry

"""A memoizing cache tier for hot DGMS lookups.

The paper's DfMS server answers DGL requests "on top of the datagrid
server" (§3.2); under heavy traffic the same catalog queries and replica
selections repeat thousands of times between namespace changes, and the
query planner re-plans every one. This module memoizes the two hot
read paths:

* **catalog queries** — :meth:`Query.run` results keyed by the caller
  plus the query's full shape (collection, conjuncts, recursion, limit).
  Results are cached *after* ACL filtering so a hit skips both the
  planner and the per-object permission walk; :meth:`~repro.grid.dgms.
  DataGridManagementSystem.grant` — the DGMS's only ACL mutation path —
  notifies the cache, which drops every query entry (``acl`` cause).
* **replica choices** — :meth:`DataGridManagementSystem.select_replica`
  results keyed by (object guid, destination domain, policy).

Correctness model — sim-time TTL plus precise invalidation:

* Every entry carries ``expires_at`` in **virtual** time and is checked
  lazily on lookup. No kernel events are scheduled, no randomness is
  drawn, and the clock is never advanced, so an attached cache cannot
  move a float: the chaos sweep's :func:`~repro.workloads.chaos.
  run_signature` stays bit-identical (gated by
  ``benchmarks/test_e24_gateway.py``).
* Query entries are evicted through the :class:`~repro.grid.catalog.
  GridCatalog` change feed (``register`` / ``deregister`` / ``metadata``
  / ``resize`` — moves fire deregister+register via subtree adoption),
  scoped to the conjuncts a mutation can actually affect: a metadata
  change on attribute ``a`` only drops entries conditioned on
  ``meta:a``; a resize only drops entries conditioned on ``size`` (and
  the object's replica choices); object arrival/departure drops
  everything. Checksums are written in place without a catalog event,
  so queries conditioned on ``checksum`` are served uncached.
* Replica-choice entries are stamped at fill time with the
  :class:`~repro.network.topology.Topology` version counter and the
  object's (size, good-replica) fingerprint. Fault windows
  (:class:`~repro.faults.model.LinkOutage` /
  :class:`~repro.faults.model.LinkDegradation`) drive the topology
  through ``disconnect``/``connect``, each of which bumps the version —
  so a degraded link evicts every replica choice routed over the old
  numbers on its next lookup. The failover path
  (``select_replica(exclude=...)``) always bypasses the cache.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.grid.acl import Permission
from repro.grid.query import Query

__all__ = ["DgmsCache", "attach_cache"]

#: Query fields mutated without a catalog change event (checksums are
#: assigned in place by ``dgms.checksum``); conditions on them make a
#: query uncacheable.
_UNCACHEABLE_FIELDS = frozenset({"checksum"})

#: Default entry lifetime, in sim seconds. Generous on purpose: the
#: change feed does the real invalidation work; the TTL only bounds
#: staleness of surfaces the feed cannot see (none known — belt and
#: braces) and the memory held by one-off queries.
DEFAULT_TTL_S = 300.0


class DgmsCache:
    """Sim-time TTL cache over one DGMS's query and replica lookups.

    Attach with :func:`attach_cache`; the DGMS consults :attr:`~repro.
    grid.dgms.DataGridManagementSystem.cache` duck-typed (``None`` means
    every lookup takes the original code path, keeping the grid package
    import-free of this module).
    """

    def __init__(self, dgms, query_ttl_s: float = DEFAULT_TTL_S,
                 replica_ttl_s: float = DEFAULT_TTL_S,
                 max_entries: int = 4096) -> None:
        self.dgms = dgms
        self.env = dgms.env
        self.query_ttl_s = float(query_ttl_s)
        self.replica_ttl_s = float(replica_ttl_s)
        self.max_entries = int(max_entries)
        # (user, collection, conditions, recursive, limit) ->
        # (expires_at, post-ACL results tuple). Insertion-ordered, so
        # capacity eviction drops the oldest fill first.
        self._queries: Dict[Tuple, Tuple[float, Tuple]] = {}
        # (guid, to_domain, policy) -> (expires_at, stamp, replica).
        self._replicas: Dict[Tuple, Tuple[float, Tuple, object]] = {}
        #: Local tallies (always maintained; telemetry mirrors them when
        #: a session is attached).
        self.hits = {"query": 0, "replica": 0}
        self.misses = {"query": 0, "replica": 0}
        self.bypasses = {"query": 0, "replica": 0}
        self.invalidations: Dict[str, int] = {}
        self.evictions: Dict[str, int] = {}
        self._listening = False

    # -- bookkeeping ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._queries) + len(self._replicas)

    @property
    def hit_rate(self) -> float:
        """Fraction of cacheable lookups answered from the cache."""
        hits = sum(self.hits.values())
        total = hits + sum(self.misses.values())
        return hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        """A plain-dict snapshot for reports and benchmarks."""
        return {
            "hits": dict(self.hits), "misses": dict(self.misses),
            "bypasses": dict(self.bypasses),
            "invalidations": dict(self.invalidations),
            "evictions": dict(self.evictions),
            "hit_rate": self.hit_rate, "entries": len(self),
        }

    def _note(self, surface: str, outcome: str) -> None:
        telemetry = self.env.telemetry
        if telemetry is not None:
            telemetry.cache_requests.labels(
                surface=surface, outcome=outcome).inc()

    def _note_drop(self, cause: str, count: int) -> None:
        if count <= 0:
            return
        self.invalidations[cause] = self.invalidations.get(cause, 0) + count
        telemetry = self.env.telemetry
        if telemetry is not None:
            telemetry.cache_invalidations.labels(cause=cause).inc(count)

    def _evict(self, reason: str, count: int = 1) -> None:
        self.evictions[reason] = self.evictions.get(reason, 0) + count

    # -- catalog queries -----------------------------------------------------

    @staticmethod
    def _query_key(user, query: Query) -> Optional[Tuple]:
        for condition in query.conditions:
            if condition.field in _UNCACHEABLE_FIELDS:
                return None
        return (user.qualified_name, query.collection,
                tuple(query.conditions), query.recursive, query.limit)

    def _run_filtered(self, user, query: Query) -> List:
        results = query.run(self.dgms.namespace)
        return [obj for obj in results
                if obj.acl.allows(user, Permission.READ)]

    def run_query(self, user, query: Query) -> List:
        """``dgms.query`` through the cache (per-caller, post-ACL list)."""
        key = self._query_key(user, query)
        if key is None:
            self.bypasses["query"] += 1
            self._note("query", "bypass")
            return self._run_filtered(user, query)
        now = self.env.now
        entry = self._queries.get(key)
        if entry is not None:
            if now < entry[0]:
                self.hits["query"] += 1
                self._note("query", "hit")
                return list(entry[1])
            del self._queries[key]
            self._evict("ttl")
        self.misses["query"] += 1
        self._note("query", "miss")
        results = self._run_filtered(user, query)
        if len(self._queries) >= self.max_entries:
            self._queries.pop(next(iter(self._queries)))
            self._evict("capacity")
        self._queries[key] = (now + self.query_ttl_s, tuple(results))
        return results

    # -- replica choices -----------------------------------------------------

    def _replica_stamp(self, obj, replicas) -> Tuple:
        """Validity fingerprint for one replica choice.

        The topology version covers every link change (fault windows
        included); the per-object part covers resizes, replica
        arrivals/departures, and state flips (stale after overwrite).
        """
        return (self.dgms.topology.version, obj.size,
                tuple((replica.replica_number, replica.state)
                      for replica in replicas))

    def lookup_replica(self, obj, to_domain: str, policy: str, replicas):
        """The cached choice for this lookup, or None on miss/staleness."""
        key = (obj.guid, to_domain, policy)
        entry = self._replicas.get(key)
        if entry is None:
            self.misses["replica"] += 1
            self._note("replica", "miss")
            return None
        expires_at, stamp, choice = entry
        now = self.env.now
        if now >= expires_at:
            del self._replicas[key]
            self._evict("ttl")
        elif stamp != self._replica_stamp(obj, replicas):
            del self._replicas[key]
            self._evict("stale")
        else:
            self.hits["replica"] += 1
            self._note("replica", "hit")
            return choice
        self.misses["replica"] += 1
        self._note("replica", "miss")
        return None

    def store_replica(self, obj, to_domain: str, policy: str, replicas,
                      choice) -> None:
        """Remember ``choice`` for this lookup, stamped for validity."""
        if len(self._replicas) >= self.max_entries:
            self._replicas.pop(next(iter(self._replicas)))
            self._evict("capacity")
        self._replicas[(obj.guid, to_domain, policy)] = (
            self.env.now + self.replica_ttl_s,
            self._replica_stamp(obj, replicas), choice)

    # -- invalidation --------------------------------------------------------

    def _on_catalog_change(self, kind: str, obj, attribute) -> None:
        """The :attr:`GridCatalog.listeners` subscriber (precise evictions)."""
        queries = self._queries
        if kind == "metadata":
            field = "meta:" + attribute
            stale = [key for key in queries
                     if any(c.field == field for c in key[2])]
        elif kind == "resize":
            stale = [key for key in queries
                     if any(c.field == "size" for c in key[2])]
            self._drop_replicas_for(obj.guid, "resize")
        else:
            # register/deregister: membership (and, via moves, every
            # path) may have changed — nothing keyed on content survives.
            stale = list(queries)
            if kind == "deregister":
                self._drop_replicas_for(obj.guid, kind)
        for key in stale:
            del queries[key]
        self._note_drop(kind, len(stale))

    def on_acl_change(self, path: str) -> None:
        """``dgms.grant`` hook: visibility may have shifted for any caller.

        ACL grants are rare next to queries, and a permission change on a
        collection alters what *recursive* queries elsewhere see — so no
        scoping is attempted; every query entry goes.
        """
        dropped = len(self._queries)
        self._queries.clear()
        self._note_drop("acl", dropped)

    def _drop_replicas_for(self, guid: str, cause: str) -> None:
        stale = [key for key in self._replicas if key[0] == guid]
        for key in stale:
            del self._replicas[key]
        self._note_drop(f"replica-{cause}", len(stale))

    def invalidate_all(self) -> None:
        """Drop every entry (manual escape hatch)."""
        dropped = len(self)
        self._queries.clear()
        self._replicas.clear()
        self._note_drop("manual", dropped)

    # -- attach/detach -------------------------------------------------------

    def attach(self) -> "DgmsCache":
        """Wire this cache into its DGMS (idempotent)."""
        if not self._listening:
            self.dgms.namespace.catalog.listeners.append(
                self._on_catalog_change)
            self._listening = True
        self.dgms.cache = self
        return self

    def detach(self) -> None:
        """Unwire from the DGMS; pending entries are dropped."""
        if self._listening:
            try:
                self.dgms.namespace.catalog.listeners.remove(
                    self._on_catalog_change)
            except ValueError:
                pass
            self._listening = False
        if self.dgms.cache is self:
            self.dgms.cache = None
        self.invalidate_all()


def attach_cache(dgms, query_ttl_s: float = DEFAULT_TTL_S,
                 replica_ttl_s: float = DEFAULT_TTL_S,
                 max_entries: int = 4096) -> DgmsCache:
    """Attach a :class:`DgmsCache` to ``dgms`` (idempotent).

    A cache already attached is returned as-is (the tuning arguments are
    ignored then), mirroring the recovery/observability attach surfaces.
    """
    existing = dgms.cache
    if existing is not None:
        return existing
    return DgmsCache(dgms, query_ttl_s=query_ttl_s,
                     replica_ttl_s=replica_ttl_s,
                     max_entries=max_entries).attach()

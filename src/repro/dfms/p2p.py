"""Peer-to-peer datagridflow networks.

"Multiple DfMS servers can form a peer-to-peer datagridflow network with
one or more lookup servers" (§3.2); the paper's future-work list opens with
"peer-to-peer datagridflow network and its protocols" (§5).

The protocol implemented here is referral-based:

1. a client asks a lookup server for a peer (one network round trip to the
   lookup's domain);
2. the lookup answers with the peer chosen by its policy — least-loaded,
   or data-locality (the peer whose domain is nearest the flow's input
   collection);
3. the client submits to that peer directly (a round trip to the peer's
   domain).

Status queries skip the lookup entirely: request identifiers embed the
serving peer's name (``matrix-2.dgr-000001``), so they route directly —
"the identifier … can be shared with all other processes that require
access to the status" (§4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import P2PError
from repro.dfms.server import DfMSServer
from repro.dgl.model import DataGridRequest, Flow, FlowStatusQuery
from repro.network.topology import Topology
from repro.sim.kernel import Environment

__all__ = ["LookupServer", "DfMSNetwork"]

#: Selection policies a lookup server understands.
_POLICIES = ("least_loaded", "round_robin", "data_locality")


class LookupServer:
    """The registry peers advertise to and clients consult."""

    def __init__(self, name: str, domain: str,
                 policy: str = "least_loaded") -> None:
        if policy not in _POLICIES:
            raise P2PError(f"unknown lookup policy {policy!r} "
                           f"(choose from {_POLICIES})")
        self.name = name
        self.domain = domain
        self.policy = policy
        #: Lookup servers can fail too ("one or more lookup servers", §3.2);
        #: clients holding several fail over past offline ones.
        self.online = True
        self._peers: Dict[str, Tuple[DfMSServer, str]] = {}
        self._round_robin_index = 0
        self.referrals = 0

    def register(self, server: DfMSServer, domain: str) -> None:
        """Advertise a peer DfMS server living at ``domain``."""
        if server.name in self._peers:
            raise P2PError(f"peer {server.name!r} already registered")
        self._peers[server.name] = (server, domain)

    def peers(self) -> List[Tuple[DfMSServer, str]]:
        """All registered peers with their domains, name-sorted."""
        return [self._peers[name] for name in sorted(self._peers)]

    def select(self, topology: Optional[Topology] = None,
               data_collection_domain: Optional[str] = None
               ) -> Tuple[DfMSServer, str]:
        """Choose a live peer for a new flow according to the policy.

        Offline peers are skipped — the failover behaviour §5's
        "peer-to-peer datagridflow network" future work asks about.
        """
        peers = [(server, domain) for server, domain in self.peers()
                 if server.online]
        if not peers:
            raise P2PError(f"lookup server {self.name!r} has no live peers")
        self.referrals += 1
        if self.policy == "round_robin":
            choice = peers[self._round_robin_index % len(peers)]
            self._round_robin_index += 1
            return choice
        if self.policy == "data_locality" and data_collection_domain:
            if topology is None:
                raise P2PError("data_locality selection needs a topology")
            return min(peers, key=lambda peer: (
                topology.path_latency(peer[1], data_collection_domain),
                peer[0].name))
        # least_loaded (also the data_locality fallback with no hint)
        return min(peers, key=lambda peer: (peer[0].running_count,
                                            peer[0].name))

    def find(self, server_name: str) -> Tuple[DfMSServer, str]:
        """Locate a peer by name (for status-query routing)."""
        try:
            server, domain = self._peers[server_name]
        except KeyError:
            raise P2PError(f"no peer named {server_name!r}") from None
        if not server.online:
            raise P2PError(f"peer {server_name!r} is offline")
        return server, domain


class DfMSNetwork:
    """A client-side view of the peer-to-peer datagridflow network.

    Accepts one lookup server or several ("one or more lookup servers",
    §3.2); offline lookups cost a probe round trip and are skipped.
    """

    def __init__(self, env: Environment, topology: Topology,
                 lookup) -> None:
        self.env = env
        self.topology = topology
        self.lookups: List[LookupServer] = (
            list(lookup) if isinstance(lookup, (list, tuple)) else [lookup])
        if not self.lookups:
            raise P2PError("the network needs at least one lookup server")
        self.messages_sent = 0
        self.network_seconds = 0.0

    @property
    def lookup(self) -> LookupServer:
        """The primary lookup server."""
        return self.lookups[0]

    def _reach_lookup(self, client_domain: str):
        """Generator: contact lookups in order until a live one answers.

        Each attempt costs a round trip (a dead lookup is only discovered
        by its timeout). Returns the live lookup server.
        """
        for lookup in self.lookups:
            yield from self._hop(client_domain, lookup.domain)
            if lookup.online:
                return lookup
        raise P2PError("no lookup server is reachable")

    def _hop(self, src: str, dst: str):
        """One message each way between two domains (latency only)."""
        latency = 2 * self.topology.path_latency(src, dst)
        self.messages_sent += 2
        self.network_seconds += latency
        yield self.env.timeout(latency)

    @staticmethod
    def _collection_hint(flow: Flow) -> Optional[str]:
        """The flow's for-each collection, if any (data-locality hint)."""
        pattern = flow.logic.pattern
        collection = getattr(pattern, "collection", None)
        if collection:
            return collection
        for child in flow.children:
            if isinstance(child, Flow):
                hint = DfMSNetwork._collection_hint(child)
                if hint:
                    return hint
        return None

    def submit(self, request: DataGridRequest, client_domain: str):
        """Generator: lookup referral, then direct submission.

        Returns ``(response, server_name)``.
        """
        if isinstance(request.body, FlowStatusQuery):
            result = yield from self.query_status(request, client_domain)
            return result
        lookup = yield from self._reach_lookup(client_domain)
        hint_collection = self._collection_hint(request.body)
        hint_domain = None
        if hint_collection is not None and lookup.policy == "data_locality":
            # Resolve the collection's dominant domain from the first peer's
            # DGMS (all peers share the datagrid's namespace).
            dgms = lookup.peers()[0][0].dgms
            if dgms.namespace.exists(hint_collection):
                for obj in dgms.namespace.iter_objects(hint_collection):
                    replicas = obj.good_replicas()
                    if replicas:
                        hint_domain = replicas[0].domain
                        break
        server, server_domain = lookup.select(
            topology=self.topology, data_collection_domain=hint_domain)
        yield from self._hop(client_domain, server_domain)
        response = server.submit(request)
        return response, server.name

    def query_status(self, request: DataGridRequest, client_domain: str):
        """Generator: route a status query straight to the serving peer."""
        if not isinstance(request.body, FlowStatusQuery):
            raise P2PError("query_status needs a FlowStatusQuery request")
        request_id = request.body.request_id
        server_name, separator, _ = request_id.partition(".dgr-")
        if not separator:
            raise P2PError(
                f"request id {request_id!r} does not embed a peer name")
        # The name -> address map is client-cached registry data; no
        # lookup round trip is needed to route by an embedded peer name.
        server = server_domain = None
        last_error: Optional[P2PError] = None
        for lookup in self.lookups:
            try:
                server, server_domain = lookup.find(server_name)
                break
            except P2PError as exc:
                last_error = exc
        if server is None:
            raise last_error or P2PError(f"no peer named {server_name!r}")
        yield from self._hop(client_domain, server_domain)
        response = server.submit(request)
        return response, server.name

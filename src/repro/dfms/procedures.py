"""Datagrid stored procedures (§2.2).

"The proposed language could also be used to describe constructs in
datagrids similar to stored procedures in databases. This will allow the
datagrid stored procedures to be run from the DGMS itself rather than
executing the procedure outside the DGMS using client side components."

A stored procedure is a named, parameterized DGL flow kept server-side:

* :meth:`ProcedureRegistry.define` stores the flow together with its
  declared parameters (and optional defaults);
* :meth:`ProcedureRegistry.call` binds arguments as DGL variables around
  the stored flow and submits it as an ordinary request — callers send
  only the procedure name and arguments, never the flow body.

Procedures themselves round-trip through DGL XML (the flow body is just a
flow), so they can be installed remotely.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Union

from repro.errors import DfMSError
from repro.dgl.model import DataGridRequest, DataGridResponse, Flow, Variable
from repro.dgl.schema import validate_flow
from repro.grid.users import User

if TYPE_CHECKING:  # the server owns a registry; avoid the import cycle
    from repro.dfms.server import DfMSServer

__all__ = ["ProcedureParameter", "StoredProcedure", "ProcedureRegistry"]


@dataclass(frozen=True)
class ProcedureParameter:
    """One declared parameter: a name, optionally with a default."""

    name: str
    default: Union[str, int, float, None] = None
    required: bool = True


@dataclass
class StoredProcedure:
    """A named server-side flow plus its parameter declarations."""

    name: str
    flow: Flow
    parameters: List[ProcedureParameter] = field(default_factory=list)
    owner: Optional[str] = None
    description: Optional[str] = None

    def __post_init__(self) -> None:
        names = [parameter.name for parameter in self.parameters]
        if len(names) != len(set(names)):
            raise DfMSError(
                f"procedure {self.name!r} declares duplicate parameters")
        validate_flow(self.flow)


class ProcedureRegistry:
    """Stored procedures for one DfMS server."""

    def __init__(self, server: "DfMSServer") -> None:
        self.server = server
        self._procedures: Dict[str, StoredProcedure] = {}

    def define(self, procedure: StoredProcedure) -> None:
        """Install a procedure (names are unique per server)."""
        if procedure.name in self._procedures:
            raise DfMSError(
                f"procedure {procedure.name!r} already defined")
        self._procedures[procedure.name] = procedure

    def drop(self, name: str) -> None:
        """Uninstall a procedure (raises if unknown)."""
        if name not in self._procedures:
            raise DfMSError(f"no procedure named {name!r}")
        del self._procedures[name]

    def get(self, name: str) -> StoredProcedure:
        """The procedure called ``name`` (raises if unknown)."""
        try:
            return self._procedures[name]
        except KeyError:
            raise DfMSError(f"no procedure named {name!r}") from None

    def names(self) -> List[str]:
        """Installed procedure names, sorted."""
        return sorted(self._procedures)

    def _bind(self, procedure: StoredProcedure,
              arguments: Dict[str, object]) -> Flow:
        unknown = set(arguments) - {p.name for p in procedure.parameters}
        if unknown:
            raise DfMSError(
                f"procedure {procedure.name!r} has no parameters "
                f"{sorted(unknown)}")
        variables = []
        for parameter in procedure.parameters:
            if parameter.name in arguments:
                value = arguments[parameter.name]
            elif not parameter.required:
                value = parameter.default
            else:
                raise DfMSError(
                    f"procedure {procedure.name!r} requires argument "
                    f"{parameter.name!r}")
            variables.append(Variable(parameter.name, value))
        # The call wrapper: arguments become variables in an enclosing
        # scope; the stored body is untouched (deep-copied per call).
        return Flow(name=f"call:{procedure.name}", variables=variables,
                    children=[copy.deepcopy(procedure.flow)])

    def call(self, user: User, name: str,
             arguments: Optional[Dict[str, object]] = None,
             virtual_organization: str = "procedures",
             asynchronous: bool = True) -> DataGridResponse:
        """Invoke a procedure as ``user``; returns the submit response."""
        procedure = self.get(name)
        flow = self._bind(procedure, dict(arguments or {}))
        return self.server.submit(DataGridRequest(
            user=user.qualified_name,
            virtual_organization=virtual_organization,
            body=flow, asynchronous=asynchronous))

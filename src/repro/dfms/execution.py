"""Execution state of one submitted datagridflow.

A :class:`FlowExecution` is the DfMS server's record of one DGL request:
the flow definition, the live status tree (queryable at any granularity,
§3.1), the control switches (start / stop / pause / restart), the journal
of completed step instances (the unit of checkpoint/recovery), and the
message log.

The status tree reuses :class:`repro.dgl.model.FlowStatus` as a *mutable*
structure: one node per definition node, mirrored up front so a status
query can see PENDING children before they run. Loop flows report progress
through ``iterations`` rather than materializing per-iteration nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import InvalidTransition
from repro.dgl.model import ExecutionState, Flow, FlowStatus, Step
from repro.sim.kernel import Environment, Event

__all__ = ["FlowExecution", "JournalEntry", "build_status_tree"]


def build_status_tree(node: Union[Flow, Step]) -> FlowStatus:
    """Mirror a flow definition as an all-PENDING status tree."""
    status = FlowStatus(name=node.name, state=ExecutionState.PENDING)
    if isinstance(node, Flow):
        status.children = [build_status_tree(child) for child in node.children]
    return status


@dataclass
class JournalEntry:
    """One completed step instance, sufficient to skip it on replay."""

    instance_key: str
    effects: List[Tuple[str, Any]] = field(default_factory=list)
    finished_at: float = 0.0


class FlowExecution:
    """One request's execution: status, control, journal, messages."""

    def __init__(self, request_id: str, flow: Flow, user_name: str,
                 virtual_organization: str, env: Environment) -> None:
        self.request_id = request_id
        self.flow = flow
        self.user_name = user_name
        self.virtual_organization = virtual_organization
        self.env = env
        self.status = build_status_tree(flow)
        self.state = ExecutionState.PENDING
        self.error: Optional[str] = None
        #: The exception object behind a FAILED state (``error`` keeps the
        #: string for status documents). Recovery supervisors dispatch on
        #: its type — :class:`repro.errors.Retryable` or not — never on
        #: the message text.
        self.failure: Optional[BaseException] = None
        self.submitted_at = env.now
        self.finished_at: Optional[float] = None
        self.messages: List[Tuple[float, str]] = []
        #: instance_key -> JournalEntry for completed steps.
        self.journal: Dict[str, JournalEntry] = {}
        #: When True the engine skips steps found in the journal (recovery).
        self.replaying = False
        # Control switches, inspected by the engine at step boundaries.
        self._pause_requested = False
        self._cancel_requested = False
        self._resume_event: Optional[Event] = None
        #: The completion event; triggers when the execution reaches a
        #: terminal state (used by synchronous submits and by wait()).
        self.done: Event = env.event()

    # -- control ------------------------------------------------------------

    @property
    def pause_requested(self) -> bool:
        return self._pause_requested

    @property
    def cancel_requested(self) -> bool:
        return self._cancel_requested

    def pause(self) -> None:
        """Ask the engine to pause at the next step boundary."""
        if self.state.is_terminal:
            raise InvalidTransition(
                f"{self.request_id} is {self.state.value}; cannot pause")
        self._pause_requested = True

    def resume(self) -> None:
        """Resume a paused (or pause-requested) execution."""
        if self.state.is_terminal:
            raise InvalidTransition(
                f"{self.request_id} is {self.state.value}; cannot resume")
        if not self._pause_requested:
            raise InvalidTransition(f"{self.request_id} is not paused")
        self._pause_requested = False
        self._wake()

    def cancel(self) -> None:
        """Ask the engine to stop at the next step boundary."""
        if self.state.is_terminal:
            raise InvalidTransition(
                f"{self.request_id} is {self.state.value}; cannot cancel")
        self._cancel_requested = True
        self._wake()   # a paused execution must wake up to die

    def _wake(self) -> None:
        if self._resume_event is not None and not self._resume_event.triggered:
            self._resume_event.succeed()
        self._resume_event = None

    def wait_for_resume(self) -> Event:
        """Event the engine parks on while paused."""
        if self._resume_event is None or self._resume_event.triggered:
            self._resume_event = self.env.event()
        return self._resume_event

    # -- completion -----------------------------------------------------------

    def finish(self, state: ExecutionState, error: Optional[str] = None,
               failure: Optional[BaseException] = None) -> None:
        """Record the terminal state and trigger :attr:`done`."""
        self.state = state
        self.error = error
        self.failure = failure
        self.finished_at = self.env.now
        if not self.done.triggered:
            self.done.succeed(self)

    # -- journal -----------------------------------------------------------

    def record_step(self, instance_key: str,
                    effects: List[Tuple[str, Any]]) -> None:
        """Journal a completed step instance."""
        self.journal[instance_key] = JournalEntry(
            instance_key=instance_key, effects=list(effects),
            finished_at=self.env.now)

    def journalled(self, instance_key: str) -> Optional[JournalEntry]:
        """The journal entry for ``instance_key`` if replay should skip it."""
        if not self.replaying:
            return None
        return self.journal.get(instance_key)

    def __repr__(self) -> str:
        return (f"<FlowExecution {self.request_id} {self.flow.name!r} "
                f"{self.state.value}>")

"""Virtual data: a Chimera-like derivation catalog.

"If the required output data is already available (virtual data), it need
not be derived again" (§2.3); the DfMS server "can provide the concepts of
virtual data by incorporating a virtual data system as a component. The
GriPhyN Chimera System is an example" (§3.2).

The catalog records, for every materialized derivation, the
*transformation* (business-logic name), the exact input objects (path +
version, so an overwritten input invalidates the derivation), and the
parameters. Before running an ``exec`` step that declares a
``transformation``, the DfMS asks the catalog; a hit means the output
already exists somewhere in the grid and the computation is skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.grid.dgms import DataGridManagementSystem
from repro.grid.namespace import DataObject

__all__ = ["Derivation", "VirtualDataCatalog"]


@dataclass(frozen=True)
class Derivation:
    """One recorded materialization."""

    transformation: str
    input_signature: Tuple[Tuple[str, int], ...]   # ((path, version), ...)
    parameter_signature: Tuple[Tuple[str, str], ...]
    output_path: str
    recorded_at: float


class VirtualDataCatalog:
    """Lookup-before-compute over recorded derivations."""

    def __init__(self, dgms: DataGridManagementSystem) -> None:
        self.dgms = dgms
        self._derivations: Dict[tuple, Derivation] = {}
        self.hits = 0
        self.misses = 0

    # -- keys ------------------------------------------------------------

    def _input_signature(self, input_paths: Sequence[str]):
        signature = []
        for path in sorted(input_paths):
            obj = self.dgms.namespace.resolve_object(path)
            signature.append((path, obj.version))
        return tuple(signature)

    @staticmethod
    def _parameter_signature(parameters: Optional[Dict]) -> tuple:
        if not parameters:
            return ()
        return tuple(sorted((str(k), str(v)) for k, v in parameters.items()))

    def _key(self, transformation, input_paths, parameters) -> tuple:
        return (transformation, self._input_signature(input_paths),
                self._parameter_signature(parameters))

    # -- operations -----------------------------------------------------------

    def lookup(self, transformation: str, input_paths: Sequence[str],
               parameters: Optional[Dict] = None) -> Optional[str]:
        """Path of an existing equivalent output, or None.

        A recorded derivation only counts if its output object still exists
        in the namespace with at least one good replica; deleted outputs
        fall out of the catalog naturally.
        """
        try:
            key = self._key(transformation, input_paths, parameters)
        except Exception:
            self.misses += 1
            return None   # an input vanished: cannot possibly match
        derivation = self._derivations.get(key)
        if derivation is None:
            self.misses += 1
            return None
        # One namespace walk instead of a separate exists + resolve.
        obj = self.dgms.namespace.try_resolve(derivation.output_path)
        if not isinstance(obj, DataObject):
            del self._derivations[key]
            self.misses += 1
            return None
        if not obj.good_replicas():
            del self._derivations[key]
            self.misses += 1
            return None
        self.hits += 1
        return derivation.output_path

    def record(self, transformation: str, input_paths: Sequence[str],
               output_path: str, parameters: Optional[Dict] = None,
               time: float = 0.0) -> Derivation:
        """Register a freshly materialized derivation."""
        key = self._key(transformation, input_paths, parameters)
        derivation = Derivation(
            transformation=transformation,
            input_signature=key[1],
            parameter_signature=key[2],
            output_path=output_path,
            recorded_at=time)
        self._derivations[key] = derivation
        return derivation

    def __len__(self) -> int:
        return len(self._derivations)

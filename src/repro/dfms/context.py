"""Execution context handed to DGL operation handlers.

A handler sees exactly one object, the :class:`ExecutionContext`: the
simulation clock, the DGMS, the acting user, the step's variable scope, and
the owning execution. Handlers record scope mutations through
:meth:`ExecutionContext.assign` so the engine's journal can replay them
after a restart (see :mod:`repro.dfms.checkpoint`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, List, Optional, Tuple

from repro.dgl.expressions import Scope
from repro.grid.dgms import DataGridManagementSystem
from repro.grid.users import User
from repro.sim.kernel import Environment

if TYPE_CHECKING:  # avoid a runtime import cycle with server.py
    from repro.dfms.execution import FlowExecution
    from repro.dfms.server import DfMSServer


@dataclass
class ExecutionContext:
    """Everything an operation handler may touch."""

    env: Environment
    dgms: DataGridManagementSystem
    user: User
    scope: Scope
    execution: "FlowExecution"
    server: Optional["DfMSServer"] = None
    #: Scope mutations made by the current step, for journal replay.
    effects: List[Tuple[str, Any]] = field(default_factory=list)
    #: The current step's abstract resource requirements (§2.3), consulted
    #: by scheduling-aware operations such as ``exec``.
    requirements: dict = field(default_factory=dict)

    def assign(self, name: str, value: Any) -> None:
        """Bind a DGL variable, recording the effect for checkpoint replay."""
        self.scope.assign(name, value)
        self.effects.append((name, value))

    def log(self, message: str) -> None:
        """Append to the execution's message log (the ``dgl.log`` channel)."""
        self.execution.messages.append((self.env.now, str(message)))

    def for_step(self, scope: Scope,
                 requirements: Optional[dict] = None) -> "ExecutionContext":
        """A derived context with a fresh step scope and effect list."""
        return ExecutionContext(env=self.env, dgms=self.dgms, user=self.user,
                                scope=scope, execution=self.execution,
                                server=self.server,
                                requirements=dict(requirements or {}))

"""The Infrastructure Description Language (IDL).

"The Infrastructure Description Language describes the infrastructure at
each domain and the different SLAs they can support" (§3.2). System
administrators own this document — changing what a domain shares, and at
what service level, is a data edit here, never a code change (the autonomy
requirement of §2.3's infrastructure logic).

An :class:`InfrastructureDescription` lists, per domain:

* compute resources (name, cores, speed factor);
* storage: which logical resource names the domain serves, with a
  ``resource_type`` tag (``disk`` / ``archive`` / ``parallel_fs`` …) the
  matchmaker compares against step requirements;
* an :class:`SLA`: which virtual organizations are admitted, how many
  concurrent tasks the domain accepts, and a relative cost rate.

Like DGL, it round-trips through XML so infrastructure logic can be
"programmatically described and executed dynamically".
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import DGLParseError, MatchmakingError
from repro.dfms.compute import ComputeResource

__all__ = ["SLA", "StorageOffer", "DomainDescription",
           "InfrastructureDescription"]


@dataclass
class SLA:
    """Service level one domain offers to the grid."""

    #: VOs admitted; empty means "any" (fully shared).
    allowed_vos: List[str] = field(default_factory=list)
    #: Maximum concurrent tasks the domain accepts (0 = unlimited).
    max_concurrent_tasks: int = 0
    #: Relative cost rate charged per reference CPU-second.
    cost_per_cpu_second: float = 1.0

    def admits(self, virtual_organization: str) -> bool:
        """True if the VO may run tasks here."""
        return not self.allowed_vos or virtual_organization in self.allowed_vos


@dataclass
class StorageOffer:
    """One logical storage resource a domain serves."""

    logical_resource: str
    resource_type: str   # disk / archive / parallel_fs / memory


@dataclass
class DomainDescription:
    """Everything one domain contributes to the infrastructure."""

    name: str
    compute: List[ComputeResource] = field(default_factory=list)
    storage: List[StorageOffer] = field(default_factory=list)
    sla: SLA = field(default_factory=SLA)

    def storage_of_type(self, resource_type: str) -> List[StorageOffer]:
        """Storage offers of one resource type at this domain."""
        return [offer for offer in self.storage
                if offer.resource_type == resource_type]


class InfrastructureDescription:
    """The grid-wide infrastructure document the scheduler consults."""

    def __init__(self) -> None:
        self._domains: Dict[str, DomainDescription] = {}

    def add_domain(self, description: DomainDescription) -> None:
        """Add one domain's description (names are unique)."""
        if description.name in self._domains:
            raise MatchmakingError(
                f"domain {description.name!r} already described")
        self._domains[description.name] = description

    def domain(self, name: str) -> DomainDescription:
        """The description for ``name`` (raises if undescribed)."""
        try:
            return self._domains[name]
        except KeyError:
            raise MatchmakingError(f"no infrastructure for domain {name!r}") from None

    def domains(self) -> List[DomainDescription]:
        """All domain descriptions, name-sorted."""
        return [self._domains[name] for name in sorted(self._domains)]

    def all_compute(self) -> List[ComputeResource]:
        """Every compute resource, deterministic order."""
        out: List[ComputeResource] = []
        for domain in self.domains():
            out.extend(sorted(domain.compute, key=lambda c: c.name))
        return out

    # -- matchmaking ------------------------------------------------------

    def candidates(self, virtual_organization: str,
                   resource_type: Optional[str] = None,
                   min_cores: int = 0,
                   min_speed: float = 0.0) -> List[ComputeResource]:
        """Compute resources satisfying a step's abstract requirements.

        This is the §3.2 matchmaker: abstract requirements in, concrete
        candidate endpoints out. Raises :class:`MatchmakingError` when
        nothing fits, because an unplaceable task should fail loudly.
        """
        matches: List[ComputeResource] = []
        for domain in self.domains():
            if not domain.sla.admits(virtual_organization):
                continue
            if resource_type is not None and not domain.storage_of_type(resource_type):
                continue
            for compute in sorted(domain.compute, key=lambda c: c.name):
                if not compute.online:
                    continue
                if compute.cores < min_cores:
                    continue
                if compute.speed_factor < min_speed:
                    continue
                matches.append(compute)
        if not matches:
            raise MatchmakingError(
                f"no compute resource matches vo={virtual_organization!r} "
                f"type={resource_type!r} cores>={min_cores} "
                f"speed>={min_speed}")
        return matches

    # -- XML round trip -----------------------------------------------------

    def to_xml(self) -> str:
        """Serialize the infrastructure document."""
        root = ET.Element("infrastructure")
        for domain in self.domains():
            domain_el = ET.SubElement(root, "domain", name=domain.name)
            sla_el = ET.SubElement(
                domain_el, "sla",
                maxConcurrentTasks=str(domain.sla.max_concurrent_tasks),
                costPerCpuSecond=repr(domain.sla.cost_per_cpu_second))
            for vo in domain.sla.allowed_vos:
                ET.SubElement(sla_el, "allowedVO", name=vo)
            for compute in domain.compute:
                ET.SubElement(domain_el, "compute", name=compute.name,
                              cores=str(compute.cores),
                              speedFactor=repr(compute.speed_factor))
            for offer in domain.storage:
                ET.SubElement(domain_el, "storage",
                              logicalResource=offer.logical_resource,
                              resourceType=offer.resource_type)
        ET.indent(root)
        return ET.tostring(root, encoding="unicode")

    @classmethod
    def from_xml(cls, text: str) -> "InfrastructureDescription":
        """Parse an infrastructure document.

        Compute resources come back detached; call
        :meth:`ComputeResource.attach` (or register through a DfMS server)
        before executing on them.
        """
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise DGLParseError(f"malformed infrastructure XML: {exc}") from None
        if root.tag != "infrastructure":
            raise DGLParseError(f"expected <infrastructure>, got <{root.tag}>")
        description = cls()
        for domain_el in root.findall("domain"):
            name = domain_el.get("name")
            if not name:
                raise DGLParseError("<domain> needs a name")
            sla_el = domain_el.find("sla")
            sla = SLA()
            if sla_el is not None:
                sla = SLA(
                    allowed_vos=[vo.get("name", "")
                                 for vo in sla_el.findall("allowedVO")],
                    max_concurrent_tasks=int(
                        sla_el.get("maxConcurrentTasks", "0")),
                    cost_per_cpu_second=float(
                        sla_el.get("costPerCpuSecond", "1.0")))
            compute = [ComputeResource(
                name=el.get("name", ""), domain=name,
                cores=int(el.get("cores", "1")),
                speed_factor=float(el.get("speedFactor", "1.0")))
                for el in domain_el.findall("compute")]
            storage = [StorageOffer(
                logical_resource=el.get("logicalResource", ""),
                resource_type=el.get("resourceType", "disk"))
                for el in domain_el.findall("storage")]
            description.add_domain(DomainDescription(
                name=name, compute=compute, storage=storage, sla=sla))
        return description

"""Grid scheduling and brokering (§3.2 "Grid Schedulers and Brokers").

Cost model, bag-of-tasks heuristics, DAG (HEFT) scheduling, runtime
late-binding placement, and the abstract→concrete rewriter.
"""

from repro.dfms.scheduler.cost import (
    CostBreakdown,
    CostModel,
    CostWeights,
    TaskSpec,
)
from repro.dfms.scheduler.dag import TaskGraph, schedule_heft
from repro.dfms.scheduler.heuristics import (
    POLICIES,
    Assignment,
    SchedulePlan,
    schedule_tasks,
)
from repro.dfms.scheduler.placer import Placer
from repro.dfms.scheduler.rewriter import (
    bind_flow_early,
    pinned_steps,
    task_spec_for_exec,
)

__all__ = [
    "TaskSpec", "CostModel", "CostWeights", "CostBreakdown",
    "schedule_tasks", "SchedulePlan", "Assignment", "POLICIES",
    "TaskGraph", "schedule_heft",
    "Placer", "bind_flow_early", "pinned_steps", "task_spec_for_exec",
]

"""DAG scheduling: task graphs and a HEFT-style heuristic.

Grid workflows are DAGs — "a single grid workflow process could have
multiple tasks that might have to be executed at different domains" with
input/output data dependencies (§2.3). :class:`TaskGraph` captures the
dependency structure (edges carry the bytes flowing between tasks), and
:func:`schedule_heft` implements Heterogeneous-Earliest-Finish-Time list
scheduling: rank tasks by upward rank (critical-path distance using mean
costs), then place each, in rank order, where its earliest finish time is
smallest, accounting for when its predecessors' outputs arrive.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SchedulingError
from repro.dfms.compute import ComputeResource
from repro.dfms.scheduler.cost import CostModel, TaskSpec
from repro.dfms.scheduler.heuristics import Assignment, SchedulePlan

__all__ = ["TaskGraph", "schedule_heft"]


class TaskGraph:
    """A DAG of :class:`TaskSpec` nodes with data-volume edges."""

    def __init__(self) -> None:
        self._tasks: Dict[str, TaskSpec] = {}
        #: (producer, consumer) -> bytes transferred between them.
        self._edges: Dict[Tuple[str, str], float] = {}

    def add_task(self, task: TaskSpec) -> TaskSpec:
        """Add a task node (names are unique)."""
        if task.name in self._tasks:
            raise SchedulingError(f"duplicate task {task.name!r}")
        self._tasks[task.name] = task
        return task

    def add_edge(self, producer: str, consumer: str, nbytes: float = 0.0) -> None:
        """Add a dependency edge carrying ``nbytes`` of data (rejects cycles)."""
        for name in (producer, consumer):
            if name not in self._tasks:
                raise SchedulingError(f"unknown task {name!r}")
        if producer == consumer:
            raise SchedulingError("self-dependency")
        self._edges[(producer, consumer)] = float(nbytes)
        if self._has_cycle():
            del self._edges[(producer, consumer)]
            raise SchedulingError(
                f"edge {producer!r}->{consumer!r} would create a cycle")

    def task(self, name: str) -> TaskSpec:
        """The task called ``name`` (raises if unknown)."""
        try:
            return self._tasks[name]
        except KeyError:
            raise SchedulingError(f"unknown task {name!r}") from None

    def tasks(self) -> List[TaskSpec]:
        """All tasks, name-sorted."""
        return [self._tasks[name] for name in sorted(self._tasks)]

    def predecessors(self, name: str) -> List[Tuple[TaskSpec, float]]:
        """(task, bytes) pairs feeding into ``name``."""
        return [(self._tasks[p], nbytes)
                for (p, c), nbytes in sorted(self._edges.items()) if c == name]

    def successors(self, name: str) -> List[Tuple[TaskSpec, float]]:
        """(task, bytes) pairs consuming ``name``'s output."""
        return [(self._tasks[c], nbytes)
                for (p, c), nbytes in sorted(self._edges.items()) if p == name]

    def _has_cycle(self) -> bool:
        colors: Dict[str, int] = {}

        def visit(node: str) -> bool:
            colors[node] = 1
            for successor, _ in self.successors(node):
                state = colors.get(successor.name, 0)
                if state == 1:
                    return True
                if state == 0 and visit(successor.name):
                    return True
            colors[node] = 2
            return False

        return any(colors.get(name, 0) == 0 and visit(name)
                   for name in self._tasks)

    def topological_order(self) -> List[TaskSpec]:
        """Tasks in a dependency-respecting order (raises on cycles)."""
        order: List[TaskSpec] = []
        indegree = {name: len(self.predecessors(name)) for name in self._tasks}
        ready = sorted(name for name, deg in indegree.items() if deg == 0)
        while ready:
            name = ready.pop(0)
            order.append(self._tasks[name])
            for successor, _ in self.successors(name):
                indegree[successor.name] -= 1
                if indegree[successor.name] == 0:
                    ready.append(successor.name)
                    ready.sort()
        if len(order) != len(self._tasks):
            raise SchedulingError("graph has a cycle")
        return order

    def __len__(self) -> int:
        return len(self._tasks)


def _mean_compute_seconds(task: TaskSpec,
                          resources: Sequence[ComputeResource]) -> float:
    return sum(r.run_time(task.duration) for r in resources) / len(resources)


def _mean_transfer_seconds(nbytes: float, cost_model: CostModel,
                           resources: Sequence[ComputeResource]) -> float:
    """Average inter-resource transfer time for ``nbytes``."""
    if nbytes <= 0:
        return 0.0
    times = []
    for src in resources:
        for dst in resources:
            if src.domain != dst.domain:
                times.append(cost_model.dgms.topology.transfer_time(
                    src.domain, dst.domain, nbytes))
    return sum(times) / len(times) if times else 0.0


def schedule_heft(graph: TaskGraph, resources: Sequence[ComputeResource],
                  cost_model: CostModel) -> SchedulePlan:
    """HEFT-style DAG scheduling; returns a :class:`SchedulePlan`."""
    if not resources:
        raise SchedulingError("cannot schedule on zero resources")
    resources = sorted(resources, key=lambda r: r.name)

    # Upward ranks (critical-path length to the exit, on mean costs).
    rank: Dict[str, float] = {}
    for task in reversed(graph.topological_order()):
        successor_part = 0.0
        for successor, nbytes in graph.successors(task.name):
            successor_part = max(
                successor_part,
                _mean_transfer_seconds(nbytes, cost_model, resources)
                + rank[successor.name])
        rank[task.name] = _mean_compute_seconds(task, resources) + successor_part

    lanes: Dict[str, List[float]] = {r.name: [0.0] * r.cores for r in resources}
    placement: Dict[str, Assignment] = {}

    for task in sorted(graph.tasks(), key=lambda t: (-rank[t.name], t.name)):
        best: Optional[Assignment] = None
        for resource in resources:
            # Earliest moment every predecessor's data has arrived here.
            data_ready = 0.0
            for predecessor, nbytes in graph.predecessors(task.name):
                pred_assignment = placement[predecessor.name]
                arrival = pred_assignment.estimated_finish
                if pred_assignment.resource.domain != resource.domain:
                    arrival += cost_model.dgms.topology.transfer_time(
                        pred_assignment.resource.domain, resource.domain,
                        nbytes)
                data_ready = max(data_ready, arrival)
            stage_in = cost_model.stage_in_seconds(task, resource)
            start = max(min(lanes[resource.name]), data_ready)
            finish = (start + stage_in + resource.run_time(task.duration)
                      + cost_model.stage_out_seconds(task, resource))
            if best is None or finish < best.estimated_finish:
                best = Assignment(task=task, resource=resource,
                                  estimated_start=start,
                                  estimated_finish=finish)
        lane_times = lanes[best.resource.name]
        lane_times[lane_times.index(min(lane_times))] = best.estimated_finish
        placement[task.name] = best

    ordered = sorted(placement.values(), key=lambda a: a.estimated_start)
    return SchedulePlan(policy="heft", assignments=list(ordered))

"""Runtime (late-binding) task placement.

"The group of tasks … would have to be dynamically converted into
infrastructure-based execution logic very late in the process, just before
execution. This late binding allows execution of each iteration at a
different location based on the infrastructure availability just before the
tasks are executed." (§2.3)

The :class:`Placer` is that conversion for a single task: candidates from
the matchmaker, scored by the live cost model, chosen by policy. The DfMS
``exec`` operation calls it at the instant the step runs, so every loop
iteration sees current queue depths, replica locations, and resource
availability.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import SchedulingError
from repro.dfms.compute import ComputeResource
from repro.dfms.idl import InfrastructureDescription
from repro.dfms.scheduler.cost import CostModel, TaskSpec

__all__ = ["Placer"]

_POLICIES = ("greedy", "random", "round_robin")


class Placer:
    """Chooses a compute resource for one task, right now."""

    def __init__(self, infrastructure: InfrastructureDescription,
                 cost_model: CostModel, policy: str = "greedy",
                 rng: Optional[random.Random] = None) -> None:
        if policy not in _POLICIES:
            raise SchedulingError(
                f"unknown placement policy {policy!r} (choose from {_POLICIES})")
        if policy == "random" and rng is None:
            raise SchedulingError("the random policy needs a seeded rng")
        self.infrastructure = infrastructure
        self.cost_model = cost_model
        self.policy = policy
        self._rng = rng
        self._round_robin_index = 0

    def place(self, virtual_organization: str,
              task: TaskSpec) -> ComputeResource:
        """Pick the compute resource ``task`` should run on."""
        requirements = task.requirements
        candidates = self.infrastructure.candidates(
            virtual_organization,
            resource_type=requirements.get("resource_type"),
            min_cores=int(requirements.get("min_cores", 0)),
            min_speed=float(requirements.get("min_speed", 0.0)))
        if self.policy == "random":
            return self._rng.choice(candidates)
        if self.policy == "round_robin":
            choice = candidates[self._round_robin_index % len(candidates)]
            self._round_robin_index += 1
            return choice
        return min(candidates,
                   key=lambda c: (self.cost_model.total(task, c), c.name))

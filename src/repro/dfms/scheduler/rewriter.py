"""Abstract → infrastructure-based execution logic rewriting.

"The Execution Logic is converted dynamically into Infrastructure-based
Execution Logic just before the execution of the tasks … An analogy for
this process could be the query re-writing or optimization of SQL before a
final query plan is generated" (§2.3).

Two binding disciplines live here:

* **Late binding** is the default: ``exec`` steps carry abstract
  requirements, and the :class:`~repro.dfms.scheduler.placer.Placer` binds
  each one at the moment it runs. Nothing to do ahead of time.
* **Early binding** (:func:`bind_flow_early`) is the baseline for
  experiment E5: walk the flow once, up front, and pin every ``exec`` step
  to a concrete compute resource by writing a ``compute`` parameter into a
  copy of the document. If the infrastructure churns afterwards (a resource
  goes offline), the pinned step fails — exactly the fragility the paper's
  late-binding argument predicts.
"""

from __future__ import annotations

import copy
from typing import List, Tuple

from repro.errors import ExpressionError
from repro.dfms.scheduler.cost import TaskSpec
from repro.dfms.scheduler.placer import Placer
from repro.dgl.expressions import render_template
from repro.dgl.model import Flow, Step

__all__ = ["bind_flow_early", "task_spec_for_exec", "pinned_steps"]

#: Operation names the rewriter binds.
_EXEC_OPERATIONS = ("exec",)


def task_spec_for_exec(step: Step, scope=None) -> TaskSpec:
    """Build a :class:`TaskSpec` from an ``exec`` step's parameters.

    Template parameters that cannot be resolved yet (loop variables, at
    early-binding time) degrade gracefully: unknown inputs are treated as
    absent, which is precisely the information deficit that makes early
    binding inferior for iterative flows.
    """
    params = step.operation.parameters

    def _render(value, default):
        if value is None:
            return default
        try:
            return render_template(value, scope or {})
        except ExpressionError:
            return default

    duration = float(_render(params.get("duration", 0.0), 0.0) or 0.0)
    inputs_text = _render(params.get("inputs"), "") or ""
    input_paths = tuple(p for p in str(inputs_text).split(",") if p)
    output_size = float(_render(params.get("output_size", 0.0), 0.0) or 0.0)
    return TaskSpec(name=step.name, duration=duration,
                    input_paths=input_paths, output_size=output_size,
                    requirements=dict(step.requirements))


def bind_flow_early(flow: Flow, virtual_organization: str,
                    placer: Placer) -> Flow:
    """Return a deep copy of ``flow`` with every exec step pinned.

    The pin is the ``compute`` parameter naming a concrete resource; the
    DfMS ``exec`` handler honours it verbatim instead of placing late.
    """
    bound = copy.deepcopy(flow)

    def _walk(node: Flow) -> None:
        for child in node.children:
            if isinstance(child, Flow):
                _walk(child)
                continue
            if child.operation.name not in _EXEC_OPERATIONS:
                continue
            if "compute" in child.operation.parameters:
                continue   # already concrete
            task = task_spec_for_exec(child)
            resource = placer.place(virtual_organization, task)
            child.operation.parameters["compute"] = resource.name

    _walk(bound)
    return bound


def pinned_steps(flow: Flow) -> List[Tuple[str, str]]:
    """(step name, compute resource) for every pinned exec step."""
    pins: List[Tuple[str, str]] = []

    def _walk(node: Flow) -> None:
        for child in node.children:
            if isinstance(child, Flow):
                _walk(child)
            elif (child.operation.name in _EXEC_OPERATIONS
                  and "compute" in child.operation.parameters):
                pins.append((child.name, child.operation.parameters["compute"]))

    _walk(flow)
    return pins

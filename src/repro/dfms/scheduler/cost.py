"""The scheduling cost model.

"The cost of executing each task at a domain could be based on multiple
parameters including the amount of data moved, the number of CPU cycles
that would be left idle in the grid, the clock time taken to execute all
the tasks, the bandwidth utilized" (§2.3). This module turns that sentence
into numbers: a :class:`CostModel` estimates, for one task on one compute
resource, the staging time (data moved over the topology from the nearest
replica), the execution time (duration / speed), a queue-wait proxy, and an
idle-capacity penalty. The weights are explicit so the A2 ablation can zero
them one at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.errors import SchedulingError
from repro.dfms.compute import ComputeResource
from repro.grid.dgms import DataGridManagementSystem

__all__ = ["TaskSpec", "CostBreakdown", "CostWeights", "CostModel"]


@dataclass(frozen=True)
class TaskSpec:
    """What the scheduler needs to know about one task."""

    name: str
    duration: float                      # reference seconds on speed 1.0
    input_paths: Sequence[str] = ()
    output_size: float = 0.0
    requirements: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise SchedulingError(f"task duration cannot be negative: "
                                  f"{self.duration}")


@dataclass(frozen=True)
class CostBreakdown:
    """Component costs of one (task, resource) placement."""

    stage_in_seconds: float
    stage_out_seconds: float
    compute_seconds: float
    queue_wait_seconds: float
    load_penalty_seconds: float
    bytes_moved: float

    @property
    def data_seconds(self) -> float:
        return self.stage_in_seconds + self.stage_out_seconds


@dataclass
class CostWeights:
    """Relative importance of each cost component (ablation knobs)."""

    data: float = 1.0
    compute: float = 1.0
    queue: float = 1.0
    load: float = 1.0


class CostModel:
    """Estimates placement costs against the live grid state."""

    def __init__(self, dgms: DataGridManagementSystem,
                 weights: Optional[CostWeights] = None) -> None:
        self.dgms = dgms
        self.weights = weights or CostWeights()

    # -- component estimates ------------------------------------------------

    def stage_in_seconds(self, task: TaskSpec,
                         compute: ComputeResource) -> float:
        """Time to move every input from its nearest replica to the task."""
        total = 0.0
        for path in task.input_paths:
            obj = self.dgms.namespace.resolve_object(path)
            replicas = obj.good_replicas()
            if not replicas:
                raise SchedulingError(f"{path} has no good replicas to stage")
            total += min(
                self.dgms.topology.transfer_time(r.domain, compute.domain,
                                                 obj.size)
                for r in replicas)
        return total

    def bytes_moved(self, task: TaskSpec, compute: ComputeResource) -> float:
        """Bytes that must cross the WAN for this placement."""
        moved = 0.0
        for path in task.input_paths:
            obj = self.dgms.namespace.resolve_object(path)
            if not any(r.domain == compute.domain
                       for r in obj.good_replicas()):
                moved += obj.size
        return moved

    def stage_out_seconds(self, task: TaskSpec,
                          compute: ComputeResource) -> float:
        """Crude output-write estimate: local write at disk-class bandwidth."""
        if task.output_size <= 0:
            return 0.0
        disk_bandwidth = 50 * 1024 * 1024.0
        return task.output_size / disk_bandwidth

    def queue_wait_seconds(self, task: TaskSpec,
                           compute: ComputeResource) -> float:
        """Proxy for wait time: queued tasks ahead, each of this task's size."""
        try:
            queued = compute.queue_length
            busy = compute.cores_in_use
        except SchedulingError:
            # Detached resource (static planning before attach): no queue info.
            return 0.0
        waiting_slots = max(0, busy + queued - compute.cores + 1)
        return waiting_slots * compute.run_time(task.duration)

    def load_penalty_seconds(self, task: TaskSpec,
                             compute: ComputeResource) -> float:
        """Penalty that steers work toward idle capacity (§2.3's idle-CPU
        term, inverted: loaded resources cost more)."""
        try:
            in_use = compute.cores_in_use
        except SchedulingError:
            return 0.0
        load = in_use / compute.cores
        return load * compute.run_time(task.duration)

    # -- full estimate ----------------------------------------------------------

    def estimate(self, task: TaskSpec,
                 compute: ComputeResource) -> CostBreakdown:
        """Component estimates for placing ``task`` on ``compute``."""
        return CostBreakdown(
            stage_in_seconds=self.stage_in_seconds(task, compute),
            stage_out_seconds=self.stage_out_seconds(task, compute),
            compute_seconds=compute.run_time(task.duration),
            queue_wait_seconds=self.queue_wait_seconds(task, compute),
            load_penalty_seconds=self.load_penalty_seconds(task, compute),
            bytes_moved=self.bytes_moved(task, compute))

    def total(self, task: TaskSpec, compute: ComputeResource) -> float:
        """Weighted scalar cost (what the heuristics minimize)."""
        parts = self.estimate(task, compute)
        weights = self.weights
        return (weights.data * parts.data_seconds
                + weights.compute * parts.compute_seconds
                + weights.queue * parts.queue_wait_seconds
                + weights.load * parts.load_penalty_seconds)

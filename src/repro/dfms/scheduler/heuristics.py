"""Scheduling heuristics.

"The scheduling or selection of the appropriate resources for each task has
to choose the location for execution of a task based on: the available
physical locations of input data (replicas), desired physical location of
the output data, location of the business logic (code) and the available
resources" (§2.3). The cost is "just an approximate value based on certain
heuristics used by the scheduler" — these are the heuristics.

Static list scheduling over a bag of tasks (plus HEFT over DAGs in
:mod:`repro.dfms.scheduler.dag`): each heuristic produces a
:class:`SchedulePlan` of (task → resource) assignments with estimated start
and finish times. Baselines ``random`` and ``round_robin`` ignore costs;
the informed heuristics consult the :class:`~repro.dfms.scheduler.cost
.CostModel` — that gap is experiment E4.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SchedulingError
from repro.dfms.compute import ComputeResource
from repro.dfms.scheduler.cost import CostModel, TaskSpec

__all__ = ["Assignment", "SchedulePlan", "schedule_tasks", "POLICIES"]


@dataclass(frozen=True)
class Assignment:
    """One task pinned to one resource, with estimated times."""

    task: TaskSpec
    resource: ComputeResource
    estimated_start: float
    estimated_finish: float


@dataclass
class SchedulePlan:
    """A full static schedule."""

    policy: str
    assignments: List[Assignment] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        """Estimated completion time of the last task."""
        if not self.assignments:
            return 0.0
        return max(a.estimated_finish for a in self.assignments)

    def resource_for(self, task_name: str) -> ComputeResource:
        """The resource ``task_name`` was assigned to."""
        for assignment in self.assignments:
            if assignment.task.name == task_name:
                return assignment.resource
        raise SchedulingError(f"no assignment for task {task_name!r}")

    def estimated_bytes_moved(self, cost_model: CostModel) -> float:
        """Total WAN bytes the plan's placements would move."""
        return sum(cost_model.bytes_moved(a.task, a.resource)
                   for a in self.assignments)


class _State:
    """Per-resource availability during list scheduling."""

    def __init__(self, resources: Sequence[ComputeResource]) -> None:
        if not resources:
            raise SchedulingError("cannot schedule on zero resources")
        self.resources = list(resources)
        # Each resource is modeled as `cores` lanes; tasks take the
        # earliest-free lane.
        self.lanes: Dict[str, List[float]] = {
            r.name: [0.0] * r.cores for r in self.resources}

    def completion(self, task: TaskSpec, resource: ComputeResource,
                   cost_model: CostModel) -> Tuple[float, float]:
        """(start, finish) if ``task`` were placed on ``resource`` now."""
        parts = cost_model.estimate(task, resource)
        start = min(self.lanes[resource.name])
        finish = (start + parts.stage_in_seconds + parts.compute_seconds
                  + parts.stage_out_seconds)
        return start, finish

    def commit(self, task: TaskSpec, resource: ComputeResource,
               cost_model: CostModel) -> Assignment:
        start, finish = self.completion(task, resource, cost_model)
        lanes = self.lanes[resource.name]
        lanes[lanes.index(min(lanes))] = finish
        return Assignment(task=task, resource=resource,
                          estimated_start=start, estimated_finish=finish)


def _schedule_random(tasks, resources, cost_model, state, rng):
    if rng is None:
        raise SchedulingError("the random policy needs a seeded rng")
    return [state.commit(task, rng.choice(state.resources), cost_model)
            for task in tasks]


def _schedule_round_robin(tasks, resources, cost_model, state, rng):
    return [state.commit(task, state.resources[i % len(state.resources)],
                         cost_model)
            for i, task in enumerate(tasks)]


def _schedule_greedy(tasks, resources, cost_model, state, rng):
    """In submission order, place each task where it finishes earliest."""
    assignments = []
    for task in tasks:
        best = min(state.resources,
                   key=lambda r: (state.completion(task, r, cost_model)[1],
                                  r.name))
        assignments.append(state.commit(task, best, cost_model))
    return assignments


def _schedule_min_min(tasks, resources, cost_model, state, rng):
    """Repeatedly place the task with the globally smallest completion.

    Classic min-min: favours short tasks first, packing them tightly; known
    strong on mixes dominated by short tasks.
    """
    pending = list(tasks)
    assignments = []
    while pending:
        best_task, best_resource, best_finish = None, None, float("inf")
        for task in pending:
            resource = min(state.resources,
                           key=lambda r: (state.completion(task, r,
                                                           cost_model)[1],
                                          r.name))
            _, finish = state.completion(task, resource, cost_model)
            if finish < best_finish:
                best_task, best_resource, best_finish = task, resource, finish
        assignments.append(state.commit(best_task, best_resource, cost_model))
        pending.remove(best_task)
    return assignments


def _schedule_max_min(tasks, resources, cost_model, state, rng):
    """Like min-min but places the *longest* task first — protects the
    makespan from one huge task landing late."""
    pending = list(tasks)
    assignments = []
    while pending:
        best_task, best_resource, best_finish = None, None, -1.0
        for task in pending:
            resource = min(state.resources,
                           key=lambda r: (state.completion(task, r,
                                                           cost_model)[1],
                                          r.name))
            _, finish = state.completion(task, resource, cost_model)
            if finish > best_finish:
                best_task, best_resource, best_finish = task, resource, finish
        assignments.append(state.commit(best_task, best_resource, cost_model))
        pending.remove(best_task)
    return assignments


def _schedule_sufferage(tasks, resources, cost_model, state, rng):
    """Place the task that would *suffer* most if denied its best spot.

    Classic sufferage (Maheswaran et al.): for each pending task compute
    the gap between its best and second-best completion times; schedule
    the task with the largest gap onto its best resource. Strong when
    resources are heterogeneous and tasks have strong affinities (data
    gravity).
    """
    pending = list(tasks)
    assignments = []
    while pending:
        best_task, best_resource, best_gap = None, None, -1.0
        for task in pending:
            finishes = sorted(
                (state.completion(task, resource, cost_model)[1],
                 resource.name, resource)
                for resource in state.resources)
            first = finishes[0]
            gap = (finishes[1][0] - first[0]) if len(finishes) > 1 else 0.0
            if gap > best_gap:
                best_task, best_resource, best_gap = task, first[2], gap
        assignments.append(state.commit(best_task, best_resource, cost_model))
        pending.remove(best_task)
    return assignments


POLICIES: Dict[str, Callable] = {
    "random": _schedule_random,
    "round_robin": _schedule_round_robin,
    "greedy": _schedule_greedy,
    "min_min": _schedule_min_min,
    "max_min": _schedule_max_min,
    "sufferage": _schedule_sufferage,
}


def schedule_tasks(tasks: Sequence[TaskSpec],
                   resources: Sequence[ComputeResource],
                   cost_model: CostModel,
                   policy: str = "min_min",
                   rng: Optional[random.Random] = None) -> SchedulePlan:
    """Produce a static schedule of ``tasks`` onto ``resources``."""
    try:
        implementation = POLICIES[policy]
    except KeyError:
        raise SchedulingError(
            f"unknown policy {policy!r} (choose from {sorted(POLICIES)})") from None
    state = _State(resources)
    assignments = implementation(list(tasks), list(resources), cost_model,
                                 state, rng)
    return SchedulePlan(policy=policy, assignments=assignments)

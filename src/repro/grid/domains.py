"""Administrative domains.

A datagrid federates "heterogeneous resources from autonomous administrative
domains" (§1). Each domain keeps autonomy: it owns physical resources,
decides what it shares, and plays a *role* in the grid — §2.1's archiver
("imploding star"), producer ("exploding star"), curator, or plain
participant. ILM policies key on these roles.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Set

from repro.errors import GridError

__all__ = ["DomainRole", "AdministrativeDomain", "DomainRegistry"]


class DomainRole(enum.Enum):
    """The part a domain plays in grid-wide information lifecycles."""

    PARTICIPANT = "participant"
    PRODUCER = "producer"    # creates data; the exploding star's center
    ARCHIVER = "archiver"    # pulls everything in; the imploding star
    CURATOR = "curator"      # digital-library style custodianship


class AdministrativeDomain:
    """One autonomous organization participating in the datagrid."""

    def __init__(self, name: str, role: DomainRole = DomainRole.PARTICIPANT) -> None:
        if not name:
            raise GridError("domain name cannot be empty")
        self.name = name
        self.role = role
        self.resource_names: Set[str] = set()
        self.user_names: Set[str] = set()

    def __repr__(self) -> str:
        return f"<Domain {self.name} ({self.role.value})>"


class DomainRegistry:
    """All domains in one datagrid."""

    def __init__(self) -> None:
        self._domains: Dict[str, AdministrativeDomain] = {}

    def register(self, name: str,
                 role: DomainRole = DomainRole.PARTICIPANT) -> AdministrativeDomain:
        """Add a domain with its grid role (names are unique)."""
        if name in self._domains:
            raise GridError(f"domain {name!r} already registered")
        domain = AdministrativeDomain(name, role)
        self._domains[name] = domain
        return domain

    def get(self, name: str) -> AdministrativeDomain:
        """The domain called ``name`` (raises if unknown)."""
        try:
            return self._domains[name]
        except KeyError:
            raise GridError(f"unknown domain {name!r}") from None

    def with_role(self, role: DomainRole) -> List[AdministrativeDomain]:
        """All domains playing ``role``, name-sorted."""
        return sorted((d for d in self._domains.values() if d.role is role),
                      key=lambda d: d.name)

    def names(self) -> List[str]:
        """Registered domain names, sorted."""
        return sorted(self._domains)

    def __contains__(self, name: str) -> bool:
        return name in self._domains

    def __len__(self) -> int:
        return len(self._domains)

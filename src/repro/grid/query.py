"""The datagrid query language.

DGL execution logic iterates "some set of tasks over collections of files.
The files are used as input data and processed according to a datagrid
query, which could be part of the execution logic itself" (§2.3). This
module defines that query language: conjunctive conditions over a data
object's name, path, size, checksum, and user-defined metadata, evaluated
against a collection subtree.

Queries have both an object form (:class:`Query`) and a compact text form
used inside DGL documents, e.g.::

    name like '*.dat' AND size > 1048576 AND meta:stage = 'raw'
"""

from __future__ import annotations

import enum
import fnmatch
import re
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.errors import MetadataError
from repro.grid.namespace import DataObject, LogicalNamespace

__all__ = ["Op", "Condition", "Query", "parse_conditions"]


class Op(enum.Enum):
    """Comparison operators."""

    EQ = "="
    NE = "!="
    GT = ">"
    GE = ">="
    LT = "<"
    LE = "<="
    LIKE = "like"          # glob-style pattern on the string form
    CONTAINS = "contains"  # substring on the string form
    EXISTS = "exists"      # the field has a value at all


#: Fields addressable without the ``meta:`` prefix.
_BUILTIN_FIELDS = {"name", "path", "size", "checksum", "guid"}


@dataclass(frozen=True)
class Condition:
    """One conjunct: ``field op value``.

    ``field`` is a builtin (name, path, size, checksum, guid) or
    ``meta:<attribute>`` for user-defined metadata.
    """

    field: str
    op: Op
    value: Union[str, int, float, None] = None

    def __post_init__(self) -> None:
        if not (self.field in _BUILTIN_FIELDS or self.field.startswith("meta:")):
            raise MetadataError(
                f"unknown query field {self.field!r} "
                f"(builtins: {sorted(_BUILTIN_FIELDS)}, or meta:<attr>)")
        if self.op is not Op.EXISTS and self.value is None:
            raise MetadataError(f"operator {self.op.value!r} needs a value")

    def _extract(self, obj: DataObject):
        if self.field == "name":
            return obj.name
        if self.field == "path":
            return obj.path
        if self.field == "size":
            return obj.size
        if self.field == "checksum":
            return obj.checksum
        if self.field == "guid":
            return obj.guid
        attribute = self.field[len("meta:"):]
        return obj.metadata.get(attribute)

    def matches(self, obj: DataObject) -> bool:
        """Evaluate this condition against one data object."""
        actual = self._extract(obj)
        if self.op is Op.EXISTS:
            return actual is not None
        if actual is None:
            return False
        if self.op is Op.LIKE:
            return fnmatch.fnmatchcase(str(actual), str(self.value))
        if self.op is Op.CONTAINS:
            return str(self.value) in str(actual)
        expected = self.value
        # Numeric comparison when both sides are numeric; string otherwise.
        if isinstance(actual, (int, float)) and isinstance(expected, (int, float)):
            left, right = float(actual), float(expected)
        else:
            left, right = str(actual), str(expected)
        if self.op is Op.EQ:
            return left == right
        if self.op is Op.NE:
            return left != right
        if self.op is Op.GT:
            return left > right
        if self.op is Op.GE:
            return left >= right
        if self.op is Op.LT:
            return left < right
        if self.op is Op.LE:
            return left <= right
        raise MetadataError(f"unhandled operator {self.op!r}")


#: Operators the size index can bound a candidate range for.
_SIZE_RANGE_OPS = {Op.EQ, Op.GT, Op.GE, Op.LT, Op.LE}


@dataclass
class Query:
    """A conjunctive query over a collection subtree.

    :meth:`run` plans the evaluation against the namespace's
    :class:`~repro.grid.catalog.GridCatalog`: each conjunct that an index
    can answer (metadata EQ/EXISTS, guid EQ, size ranges) is scored by its
    candidate count, evaluation starts from the most selective access
    path, and every candidate is re-verified against the full conjunction
    — so results are always identical to a brute-force scan
    (:meth:`run_scan`), just sublinear for selective queries.
    """

    collection: str = "/"
    conditions: List[Condition] = field(default_factory=list)
    recursive: bool = True
    limit: Optional[int] = None

    def matches(self, obj: DataObject) -> bool:
        """True if every condition holds."""
        return all(condition.matches(obj) for condition in self.conditions)

    def run(self, namespace: LogicalNamespace) -> List[DataObject]:
        """Evaluate against ``namespace``, in deterministic path order."""
        telemetry = getattr(namespace, "telemetry", None)
        scope = namespace.resolve_collection(self.collection)
        if not self.recursive:
            children = [c for c in scope.children()
                        if isinstance(c, DataObject)]
            results = [c for c in children if self.matches(c)]
            results.sort(key=lambda o: o.path)
            if telemetry is not None:
                self._account(telemetry, "children", len(children))
            return results[: self.limit] if self.limit is not None else results

        candidates = self._best_index_candidates(namespace)
        if candidates is not None:
            scope_path = scope.path
            in_scope = (candidates if scope_path == "/" else
                        [o for o in candidates
                         if o.path.startswith(scope_path + "/")])
            results = [obj for obj in in_scope if self.matches(obj)]
            results.sort(key=lambda o: o.path)
            if telemetry is not None:
                self._account(telemetry, "index", len(in_scope))
            return results[: self.limit] if self.limit is not None else results

        # Scan path: path-ordered traversal allows a true early exit once
        # ``limit`` matches are in hand.
        results = []
        examined = 0
        for obj in namespace.iter_objects_in_path_order(self.collection):
            examined += 1
            if self.matches(obj):
                results.append(obj)
                if self.limit is not None and len(results) >= self.limit:
                    break
        if telemetry is not None:
            self._account(telemetry, "scan", examined)
        return results

    @staticmethod
    def _account(telemetry, access_path: str, examined: int) -> None:
        """Record which access path answered a query and at what cost."""
        telemetry.catalog_queries.labels(access_path=access_path).inc()
        telemetry.catalog_candidates.inc(examined)

    def run_scan(self, namespace: LogicalNamespace) -> List[DataObject]:
        """Brute-force evaluation (the pre-catalog semantics).

        Kept as the reference implementation: equivalence tests and the
        catalog benchmark compare :meth:`run` against this.
        """
        if self.recursive:
            candidates = namespace.iter_objects(self.collection)
        else:
            parent = namespace.resolve_collection(self.collection)
            candidates = (c for c in parent.children()
                          if isinstance(c, DataObject))
        results = [obj for obj in candidates if self.matches(obj)]
        results.sort(key=lambda o: o.path)
        if self.limit is not None:
            results = results[: self.limit]
        return results

    # -- planning -----------------------------------------------------------

    def _best_index_candidates(
            self, namespace: LogicalNamespace) -> Optional[List[DataObject]]:
        """Candidates from the most selective indexed conjunct, or None.

        Scores every index-eligible conjunct by its (cheaply counted)
        candidate population and fetches only the winner; returns None when
        no conjunct is indexable, sending :meth:`run` down the scan path.
        """
        catalog = getattr(namespace, "catalog", None)
        if catalog is None:
            return None
        best_count: Optional[int] = None
        best_fetch = None
        for condition in self.conditions:
            count, fetch = self._access_path(namespace, catalog, condition)
            if fetch is None:
                continue
            if best_count is None or count < best_count:
                best_count, best_fetch = count, fetch
        return None if best_fetch is None else best_fetch()

    @staticmethod
    def _access_path(namespace: LogicalNamespace, catalog, condition):
        """(estimated candidate count, fetch thunk) for one conjunct."""
        field_name, op, value = condition.field, condition.op, condition.value
        if field_name.startswith("meta:"):
            attribute = field_name[len("meta:"):]
            if op is Op.EQ:
                return (catalog.count_meta_eq(attribute, value),
                        lambda: catalog.candidates_meta_eq(attribute, value))
            if op is Op.EXISTS or op in (Op.NE, Op.GT, Op.GE, Op.LT, Op.LE,
                                         Op.LIKE, Op.CONTAINS):
                # Every non-EQ operator still requires the attribute to be
                # present, so the EXISTS set bounds its candidates.
                return (catalog.count_meta_exists(attribute),
                        lambda: catalog.candidates_meta_exists(attribute))
        if field_name == "guid" and op is Op.EQ:
            def fetch_guid():
                obj = catalog.lookup_guid(str(value))
                return [obj] if obj is not None else []
            found = catalog.lookup_guid(str(value))
            return (1 if found is not None else 0, fetch_guid)
        if field_name == "path" and op is Op.EQ and isinstance(value, str):
            def fetch_path():
                node = namespace.try_resolve(str(value))
                return [node] if isinstance(node, DataObject) else []
            return (1, fetch_path)
        if (field_name == "size" and op in _SIZE_RANGE_OPS
                and isinstance(value, (int, float))
                and not isinstance(value, bool)):
            return (catalog.count_size(op.value, float(value)),
                    lambda: catalog.candidates_size(op.value, float(value)))
        return (None, None)


# --------------------------------------------------------------------------
# Text form
# --------------------------------------------------------------------------

_CLAUSE_RE = re.compile(
    r"""^\s*(?P<field>[A-Za-z_][\w:.-]*)\s*
        (?P<op>!=|>=|<=|=|>|<|\blike\b|\bcontains\b|\bexists\b)\s*
        (?P<value>.*?)\s*$""",
    re.VERBOSE | re.IGNORECASE,
)


def _parse_value(text: str) -> Union[str, int, float]:
    text = text.strip()
    if len(text) >= 2 and text[0] == text[-1] and text[0] in ("'", '"'):
        return text[1:-1]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _split_conjuncts(text: str) -> List[str]:
    """Split on ``AND`` keywords, ignoring any inside quoted values.

    A bare ``re.split(r"\\bAND\\b")`` would shear a clause like
    ``meta:note = 'R AND D'`` in half; this scanner tracks single- and
    double-quote state so only top-level connectives split.
    """
    clauses: List[str] = []
    quote: Optional[str] = None
    start = index = 0
    upper = text.upper()
    while index < len(text):
        char = text[index]
        if quote is not None:
            if char == quote:
                quote = None
        elif char in ("'", '"'):
            quote = char
        elif (upper.startswith("AND", index)
              and (index == 0 or not (text[index - 1].isalnum()
                                      or text[index - 1] == "_"))
              and (index + 3 >= len(text)
                   or not (text[index + 3].isalnum()
                           or text[index + 3] == "_"))):
            clauses.append(text[start:index])
            index += 3
            start = index
            continue
        index += 1
    clauses.append(text[start:])
    return clauses


def parse_conditions(text: str) -> List[Condition]:
    """Parse the compact text form: clauses joined with ``AND``.

    >>> parse_conditions("size > 100 AND meta:stage = 'raw'")
    ... # doctest: +ELLIPSIS
    [Condition(...), Condition(...)]
    """
    conditions: List[Condition] = []
    if not text or not text.strip():
        return conditions
    for clause in _split_conjuncts(text):
        clause = clause.strip()
        if not clause:
            raise MetadataError(f"empty clause in query {text!r}")
        match = _CLAUSE_RE.match(clause)
        if match is None:
            raise MetadataError(f"cannot parse query clause {clause!r}")
        op_text = match.group("op").lower()
        op = Op(op_text) if op_text in ("=", "!=", ">", ">=", "<", "<=") else Op[op_text.upper()]
        value_text = match.group("value")
        if op is Op.EXISTS:
            if value_text:
                raise MetadataError(f"'exists' takes no value: {clause!r}")
            value = None
        else:
            if not value_text:
                raise MetadataError(f"operator {op.value!r} needs a value: {clause!r}")
            value = _parse_value(value_text)
        conditions.append(Condition(match.group("field"), op, value))
    return conditions

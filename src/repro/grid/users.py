"""Grid users and groups.

Users belong to a home administrative domain but — the point of a datagrid —
can be granted access to collections and resources owned by *other* domains
(§1: "Users can view and use the resources of users from other organizations
given appropriate access permissions").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Set

from repro.errors import GridError

__all__ = ["User", "UserRegistry"]


@dataclass(frozen=True)
class User:
    """A grid user identity: ``name@domain`` plus group memberships."""

    name: str
    domain: str
    groups: FrozenSet[str] = frozenset()

    @property
    def qualified_name(self) -> str:
        """The globally unique ``name@domain`` form."""
        return f"{self.name}@{self.domain}"

    def __str__(self) -> str:
        return self.qualified_name


class UserRegistry:
    """All users known to one datagrid."""

    def __init__(self) -> None:
        self._users: Dict[str, User] = {}
        self._groups: Dict[str, Set[str]] = {}

    def register(self, name: str, domain: str,
                 groups: Set[str] = frozenset()) -> User:
        """Add a user; rejects duplicate qualified names."""
        user = User(name=name, domain=domain, groups=frozenset(groups))
        key = user.qualified_name
        if key in self._users:
            raise GridError(f"user {key!r} already registered")
        self._users[key] = user
        for group in user.groups:
            self._groups.setdefault(group, set()).add(key)
        return user

    def get(self, qualified_name: str) -> User:
        """Look up a user by ``name@domain``."""
        try:
            return self._users[qualified_name]
        except KeyError:
            raise GridError(f"unknown user {qualified_name!r}") from None

    def members(self, group: str) -> FrozenSet[str]:
        """Qualified names of a group's members."""
        return frozenset(self._groups.get(group, ()))

    def __contains__(self, qualified_name: str) -> bool:
        return qualified_name in self._users

    def __len__(self) -> int:
        return len(self._users)

"""Logical storage resources.

"Each SRB storage server that runs on top of a physical storage system maps
that particular physical storage system into the data grid logical resource
namespace" (§1). A :class:`LogicalResource` names one or more registered
physical systems; users address only the logical name, and the grid picks a
member for each write — that indirection is what lets administrators migrate
physical systems without touching applications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import LogicalResourceError, ResourceOffline
from repro.storage.resource import PhysicalStorageResource

__all__ = ["RegisteredResource", "LogicalResource", "ResourceRegistry"]


@dataclass(frozen=True)
class RegisteredResource:
    """A physical storage system mapped into the grid at one domain."""

    domain: str
    physical: PhysicalStorageResource

    @property
    def name(self) -> str:
        return self.physical.name


class LogicalResource:
    """A named pool of registered physical resources.

    Writes pick a member by first-fit-with-most-free-space, which keeps the
    pool balanced and is deterministic.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._members: List[RegisteredResource] = []

    @property
    def members(self) -> List[RegisteredResource]:
        return list(self._members)

    def add_member(self, member: RegisteredResource) -> None:
        """Add a registered physical system to the pool."""
        if any(m.name == member.name for m in self._members):
            raise LogicalResourceError(
                f"{member.name!r} is already a member of {self.name!r}")
        self._members.append(member)

    def remove_member(self, physical_name: str) -> None:
        """Remove a member by physical name (raises if absent)."""
        before = len(self._members)
        self._members = [m for m in self._members if m.name != physical_name]
        if len(self._members) == before:
            raise LogicalResourceError(
                f"{physical_name!r} is not a member of {self.name!r}")

    def select_for_write(self, nbytes: float) -> RegisteredResource:
        """Choose the online member with the most free space that fits.

        An all-members-offline pool raises the *retryable*
        :class:`~repro.errors.ResourceOffline` (an outage ends); capacity
        exhaustion stays a durable :class:`LogicalResourceError`.
        """
        candidates = [m for m in self._members
                      if m.physical.online and m.physical.free_bytes >= nbytes]
        if not candidates:
            if self._members and not any(m.physical.online
                                         for m in self._members):
                raise ResourceOffline(
                    f"every member of {self.name!r} is offline")
            raise LogicalResourceError(
                f"no member of {self.name!r} can hold {nbytes:.0f} B")
        return max(candidates, key=lambda m: (m.physical.free_bytes, m.name))

    def __len__(self) -> int:
        return len(self._members)


class ResourceRegistry:
    """All logical resources and physical registrations in one datagrid."""

    def __init__(self) -> None:
        self._logical: Dict[str, LogicalResource] = {}
        self._physical: Dict[str, RegisteredResource] = {}

    def register(self, logical_name: str, domain: str,
                 physical: PhysicalStorageResource) -> LogicalResource:
        """Map ``physical`` (at ``domain``) into logical resource ``logical_name``."""
        if physical.name in self._physical:
            raise LogicalResourceError(
                f"physical resource {physical.name!r} already registered")
        registered = RegisteredResource(domain=domain, physical=physical)
        self._physical[physical.name] = registered
        logical = self._logical.get(logical_name)
        if logical is None:
            logical = LogicalResource(logical_name)
            self._logical[logical_name] = logical
        logical.add_member(registered)
        return logical

    def logical(self, name: str) -> LogicalResource:
        """The logical resource called ``name`` (raises if unknown)."""
        try:
            return self._logical[name]
        except KeyError:
            raise LogicalResourceError(f"unknown logical resource {name!r}") from None

    def physical(self, name: str) -> RegisteredResource:
        """The registration for physical resource ``name``."""
        try:
            return self._physical[name]
        except KeyError:
            raise LogicalResourceError(f"unknown physical resource {name!r}") from None

    def logical_names(self) -> List[str]:
        """Logical resource names, sorted."""
        return sorted(self._logical)

    def physical_names(self) -> List[str]:
        """Physical resource names, sorted."""
        return sorted(self._physical)

    def __contains__(self, logical_name: str) -> bool:
        return logical_name in self._logical

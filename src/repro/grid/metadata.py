"""User-defined metadata (attribute–value–unit triples).

"Datagrids allow user-defined metadata to be associated with data. Triggers
could make use of these parameters." (§2.2). Metadata is the hook ILM
policies and triggers key on, and the datagrid query language in
:mod:`repro.grid.query` filters on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.errors import MetadataError

__all__ = ["MetadataValue", "AVU", "MetadataSet"]

#: Metadata values are strings or numbers (SRB AVUs are strings; numbers are
#: kept native so range queries compare numerically).
MetadataValue = Union[str, int, float]


@dataclass(frozen=True)
class AVU:
    """One attribute–value–unit triple."""

    attribute: str
    value: MetadataValue
    unit: Optional[str] = None


class MetadataSet:
    """The metadata attached to one namespace node (one value per attribute)."""

    def __init__(self) -> None:
        self._avus: Dict[str, AVU] = {}

    def set(self, attribute: str, value: MetadataValue,
            unit: Optional[str] = None) -> None:
        """Add or replace an attribute."""
        if not attribute:
            raise MetadataError("attribute name cannot be empty")
        if not isinstance(value, (str, int, float)) or isinstance(value, bool):
            raise MetadataError(
                f"metadata value must be str or number, got {type(value).__name__}")
        self._avus[attribute] = AVU(attribute, value, unit)

    def get(self, attribute: str, default: Optional[MetadataValue] = None
            ) -> Optional[MetadataValue]:
        """Value of ``attribute``, or ``default``."""
        avu = self._avus.get(attribute)
        return default if avu is None else avu.value

    def unit(self, attribute: str) -> Optional[str]:
        """Unit of ``attribute`` (None if unset or absent)."""
        avu = self._avus.get(attribute)
        return None if avu is None else avu.unit

    def remove(self, attribute: str) -> None:
        """Delete an attribute (idempotent)."""
        self._avus.pop(attribute, None)

    def items(self) -> Iterator[Tuple[str, MetadataValue]]:
        """Iterate (attribute, value) pairs."""
        return ((a.attribute, a.value) for a in self._avus.values())

    def as_dict(self) -> Dict[str, MetadataValue]:
        """Attribute → value snapshot."""
        return {a.attribute: a.value for a in self._avus.values()}

    def copy_from(self, other: "MetadataSet") -> None:
        """Merge all of ``other``'s AVUs into this set (overwriting)."""
        for avu in other._avus.values():
            self._avus[avu.attribute] = avu

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._avus

    def __len__(self) -> int:
        return len(self._avus)

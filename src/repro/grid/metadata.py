"""User-defined metadata (attribute–value–unit triples).

"Datagrids allow user-defined metadata to be associated with data. Triggers
could make use of these parameters." (§2.2). Metadata is the hook ILM
policies and triggers key on, and the datagrid query language in
:mod:`repro.grid.query` filters on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Optional, Tuple, Union

from repro.errors import MetadataError

__all__ = ["MetadataValue", "AVU", "MetadataSet"]

#: Metadata values are strings or numbers (SRB AVUs are strings; numbers are
#: kept native so range queries compare numerically).
MetadataValue = Union[str, int, float]


@dataclass(frozen=True)
class AVU:
    """One attribute–value–unit triple."""

    attribute: str
    value: MetadataValue
    unit: Optional[str] = None


class MetadataSet:
    """The metadata attached to one namespace node (one value per attribute).

    While the owning node is part of a namespace tree, the namespace's
    :class:`~repro.grid.catalog.GridCatalog` binds a change listener here
    (via :meth:`_bind`) so its inverted index tracks every mutation.
    """

    def __init__(self) -> None:
        self._avus: Dict[str, AVU] = {}
        self._owner: Any = None
        self._on_change: Optional[
            Callable[[Any, str, Optional[MetadataValue],
                      Optional[MetadataValue]], None]] = None

    def _bind(self, owner: Any, on_change) -> None:
        """Attach (or, with ``None``, detach) the catalog change listener."""
        self._owner = owner
        self._on_change = on_change

    def _notify(self, attribute: str, old: Optional[MetadataValue],
                new: Optional[MetadataValue]) -> None:
        if self._on_change is not None:
            self._on_change(self._owner, attribute, old, new)

    def set(self, attribute: str, value: MetadataValue,
            unit: Optional[str] = None) -> None:
        """Add or replace an attribute."""
        if not attribute:
            raise MetadataError("attribute name cannot be empty")
        if not isinstance(value, (str, int, float)) or isinstance(value, bool):
            raise MetadataError(
                f"metadata value must be str or number, got {type(value).__name__}")
        previous = self._avus.get(attribute)
        self._avus[attribute] = AVU(attribute, value, unit)
        self._notify(attribute, None if previous is None else previous.value,
                     value)

    def get(self, attribute: str, default: Optional[MetadataValue] = None
            ) -> Optional[MetadataValue]:
        """Value of ``attribute``, or ``default``."""
        avu = self._avus.get(attribute)
        return default if avu is None else avu.value

    def unit(self, attribute: str) -> Optional[str]:
        """Unit of ``attribute`` (None if unset or absent)."""
        avu = self._avus.get(attribute)
        return None if avu is None else avu.unit

    def remove(self, attribute: str) -> None:
        """Delete an attribute (idempotent)."""
        previous = self._avus.pop(attribute, None)
        if previous is not None:
            self._notify(attribute, previous.value, None)

    def items(self) -> Iterator[Tuple[str, MetadataValue]]:
        """Iterate (attribute, value) pairs."""
        return ((a.attribute, a.value) for a in self._avus.values())

    def as_dict(self) -> Dict[str, MetadataValue]:
        """Attribute → value snapshot."""
        return {a.attribute: a.value for a in self._avus.values()}

    def copy_from(self, other: "MetadataSet") -> None:
        """Merge all of ``other``'s AVUs into this set (overwriting)."""
        for avu in other._avus.values():
            previous = self._avus.get(avu.attribute)
            self._avus[avu.attribute] = avu
            self._notify(avu.attribute,
                         None if previous is None else previous.value,
                         avu.value)

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._avus

    def __len__(self) -> int:
        return len(self._avus)

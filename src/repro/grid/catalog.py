"""The metadata catalog: MCAT-style indexes over the logical namespace.

SRB keeps every query-relevant fact about the namespace in the MCAT
metadata catalog so that triggers, ILM policies, and DGL execution logic
can evaluate datagrid queries without touching the storage systems — and
without walking the whole namespace. This module is that catalog for the
reproduction: a set of secondary indexes over :class:`~repro.grid.namespace.
LogicalNamespace`, maintained *incrementally* by the namespace itself
(attach/detach hooks) and by each data object's
:class:`~repro.grid.metadata.MetadataSet` (change hooks).

Indexes maintained:

* ``guid`` → data object (exact lookup);
* inverted metadata index: attribute → value → objects, in two keyings —
  by ``str(value)`` for every value and by ``float(value)`` for numeric
  values — mirroring the query language's mixed string/numeric equality;
* per-attribute EXISTS sets (attribute → objects carrying it);
* a sorted size index for range conjuncts (``size > …``, ``size <= …``).

Index lookups return *candidate supersets*: the query planner in
:mod:`repro.grid.query` always re-verifies every condition against each
candidate, so the indexes only have to be complete, never exact. All
containers are insertion-ordered dicts keyed by object identity, which
keeps iteration deterministic for a deterministic operation sequence.
"""

from __future__ import annotations

import bisect
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.grid.metadata import MetadataValue

if TYPE_CHECKING:   # pragma: no cover - import cycle guard, typing only
    from repro.grid.namespace import DataObject

__all__ = ["GridCatalog"]

#: Sorts after every real guid in the (size, guid) key space.
_AFTER_ANY_GUID = "\uffff"


def _is_numeric(value: MetadataValue) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


class GridCatalog:
    """Incrementally-maintained secondary indexes for one namespace."""

    def __init__(self) -> None:
        self._by_guid: Dict[str, "DataObject"] = {}
        # attribute -> str(value) -> {id(obj): obj}  (every value)
        self._meta_str: Dict[str, Dict[str, Dict[int, "DataObject"]]] = {}
        # attribute -> float(value) -> {id(obj): obj}  (numeric values only)
        self._meta_num: Dict[str, Dict[float, Dict[int, "DataObject"]]] = {}
        # attribute -> {id(obj): obj}  (EXISTS)
        self._meta_exists: Dict[str, Dict[int, "DataObject"]] = {}
        # Sorted (size, guid) keys; guid resolves back through _by_guid.
        self._size_keys: List[Tuple[float, str]] = []
        # The size each object is currently indexed under (sizes mutate on
        # overwrite; the key must be removed under its *old* value).
        self._indexed_size: Dict[str, float] = {}
        #: Change listeners: ``listener(kind, obj, attribute)`` is called
        #: after every index mutation — ``kind`` is one of ``register``,
        #: ``deregister``, ``metadata`` (with the changed attribute), or
        #: ``resize``. This is the precise invalidation feed a memoizing
        #: cache tier (:mod:`repro.dfms.cache`) keys its evictions on:
        #: anything that can change a query's result set passes through
        #: exactly one of these four mutations.
        self.listeners: List[
            Callable[[str, "DataObject", Optional[str]], None]] = []

    def _changed(self, kind: str, obj: "DataObject",
                 attribute: Optional[str] = None) -> None:
        for listener in self.listeners:
            listener(kind, obj, attribute)

    # -- bookkeeping ---------------------------------------------------------

    def __len__(self) -> int:
        """Number of indexed data objects."""
        return len(self._by_guid)

    def register_object(self, obj: "DataObject") -> None:
        """Index ``obj`` (called by the namespace when it joins the tree)."""
        self._by_guid[obj.guid] = obj
        bisect.insort(self._size_keys, (obj.size, obj.guid))
        self._indexed_size[obj.guid] = obj.size
        for attribute, value in obj.metadata.items():
            self._index_meta(obj, attribute, value)
        obj.metadata._bind(obj, self._on_metadata_change)
        if self.listeners:
            self._changed("register", obj)

    def deregister_object(self, obj: "DataObject") -> None:
        """Drop ``obj`` from every index (it left the tree)."""
        obj.metadata._bind(None, None)
        for attribute, value in obj.metadata.items():
            self._unindex_meta(obj, attribute, value)
        size = self._indexed_size.pop(obj.guid, None)
        if size is not None:
            index = bisect.bisect_left(self._size_keys, (size, obj.guid))
            if (index < len(self._size_keys)
                    and self._size_keys[index] == (size, obj.guid)):
                del self._size_keys[index]
        self._by_guid.pop(obj.guid, None)
        if self.listeners:
            self._changed("deregister", obj)

    # -- change hooks --------------------------------------------------------

    def _on_metadata_change(self, obj: "DataObject", attribute: str,
                            old: Optional[MetadataValue],
                            new: Optional[MetadataValue]) -> None:
        if old is not None:
            self._unindex_meta(obj, attribute, old)
        if new is not None:
            self._index_meta(obj, attribute, new)
        if self.listeners:
            self._changed("metadata", obj, attribute)

    def object_resized(self, obj: "DataObject") -> None:
        """Re-key the size index after ``obj.size`` changed (overwrite)."""
        old = self._indexed_size.get(obj.guid)
        if old is None:
            return
        index = bisect.bisect_left(self._size_keys, (old, obj.guid))
        if (index < len(self._size_keys)
                and self._size_keys[index] == (old, obj.guid)):
            del self._size_keys[index]
        bisect.insort(self._size_keys, (obj.size, obj.guid))
        self._indexed_size[obj.guid] = obj.size
        if self.listeners:
            self._changed("resize", obj)

    def _index_meta(self, obj: "DataObject", attribute: str,
                    value: MetadataValue) -> None:
        self._meta_exists.setdefault(attribute, {})[id(obj)] = obj
        by_str = self._meta_str.setdefault(attribute, {})
        by_str.setdefault(str(value), {})[id(obj)] = obj
        if _is_numeric(value):
            by_num = self._meta_num.setdefault(attribute, {})
            by_num.setdefault(float(value), {})[id(obj)] = obj

    def _unindex_meta(self, obj: "DataObject", attribute: str,
                      value: MetadataValue) -> None:
        self._discard(self._meta_exists, attribute, obj)
        by_str = self._meta_str.get(attribute)
        if by_str is not None:
            self._discard(by_str, str(value), obj)
            if not by_str:
                del self._meta_str[attribute]
        if _is_numeric(value):
            by_num = self._meta_num.get(attribute)
            if by_num is not None:
                self._discard(by_num, float(value), obj)
                if not by_num:
                    del self._meta_num[attribute]

    @staticmethod
    def _discard(index: Dict, key, obj: "DataObject") -> None:
        bucket = index.get(key)
        if bucket is None:
            return
        bucket.pop(id(obj), None)
        if not bucket:
            del index[key]

    # -- lookups (candidate supersets) ---------------------------------------

    def lookup_guid(self, guid: str) -> Optional["DataObject"]:
        """The indexed object with ``guid``, if any."""
        return self._by_guid.get(guid)

    def guids(self) -> List[str]:
        """Every indexed guid, in registration order.

        This is the membership view a per-zone Local Replica Catalog
        (:mod:`repro.federation.rls`) digests and publishes; kept in
        registration order so digest construction is deterministic.
        """
        return list(self._by_guid)

    def count_meta_eq(self, attribute: str, value: MetadataValue) -> int:
        """Upper bound on objects whose ``attribute`` equals ``value``."""
        count = len(self._meta_str.get(attribute, {}).get(str(value), ()))
        if _is_numeric(value):
            count += len(self._meta_num.get(attribute, {}).get(float(value), ()))
        return count

    def candidates_meta_eq(self, attribute: str,
                           value: MetadataValue) -> List["DataObject"]:
        """Candidate objects whose ``attribute`` may equal ``value``.

        A superset under the query language's comparison rules (numeric
        compare when both sides are numeric, string compare otherwise).
        """
        merged: Dict[int, "DataObject"] = {}
        merged.update(self._meta_str.get(attribute, {}).get(str(value), {}))
        if _is_numeric(value):
            merged.update(
                self._meta_num.get(attribute, {}).get(float(value), {}))
        return list(merged.values())

    def count_meta_exists(self, attribute: str) -> int:
        """Number of objects carrying ``attribute``."""
        return len(self._meta_exists.get(attribute, ()))

    def candidates_meta_exists(self, attribute: str) -> List["DataObject"]:
        """Objects carrying ``attribute`` (exact, not just a superset)."""
        return list(self._meta_exists.get(attribute, {}).values())

    def _size_bounds(self, op_value: str,
                     value: float) -> Tuple[int, int]:
        """Index range [lo, hi) of size keys possibly satisfying the op."""
        if op_value in (">", ">="):
            lo = bisect.bisect_left(self._size_keys, (value, ""))
            return lo, len(self._size_keys)
        if op_value in ("<", "<="):
            # _AFTER_ANY_GUID sorts after every guid, so the bound lands past every
            # key whose size equals ``value``.
            hi = bisect.bisect_right(self._size_keys, (value, _AFTER_ANY_GUID))
            return 0, hi
        if op_value == "=":
            lo = bisect.bisect_left(self._size_keys, (value, ""))
            hi = bisect.bisect_right(self._size_keys, (value, _AFTER_ANY_GUID))
            return lo, hi
        return 0, len(self._size_keys)

    def count_size(self, op_value: str, value: float) -> int:
        """Upper bound on objects whose size satisfies ``size <op> value``."""
        lo, hi = self._size_bounds(op_value, value)
        return hi - lo

    def candidates_size(self, op_value: str, value: float) -> List["DataObject"]:
        """Candidate objects whose size may satisfy ``size <op> value``."""
        lo, hi = self._size_bounds(op_value, value)
        by_guid = self._by_guid
        return [by_guid[guid] for _, guid in self._size_keys[lo:hi]]

"""The datagrid management system (DGMS) substrate — an SRB-like datagrid.

Logical namespace over distributed physical storage, shared collections,
replicas, user-defined metadata and queries, domains, users/ACLs, logical
resources, namespace events, and zone federation.
"""

from repro.grid.acl import AccessControlList, Permission
from repro.grid.catalog import GridCatalog
from repro.grid.dgms import DataGridManagementSystem, OperationRecord
from repro.grid.domains import AdministrativeDomain, DomainRegistry, DomainRole
from repro.grid.events import EventBus, EventKind, EventPhase, NamespaceEvent
from repro.grid.federation import (
    Bridge,
    Federation,
    qualify,
    split_zone_path,
    validate_zone_name,
)
from repro.grid.gfs import GridFileSystem, GridStat
from repro.grid.metadata import AVU, MetadataSet, MetadataValue
from repro.grid.namespace import (
    Collection,
    DataObject,
    LogicalNamespace,
    Replica,
    ReplicaState,
    basename,
    join_path,
    normalize_path,
    parent_path,
)
from repro.grid.query import Condition, Op, Query, parse_conditions
from repro.grid.resources import (
    LogicalResource,
    RegisteredResource,
    ResourceRegistry,
)
from repro.grid.users import User, UserRegistry

__all__ = [
    "DataGridManagementSystem", "OperationRecord",
    "LogicalNamespace", "Collection", "DataObject", "Replica", "ReplicaState",
    "GridCatalog",
    "normalize_path", "parent_path", "basename", "join_path",
    "MetadataSet", "AVU", "MetadataValue",
    "Query", "Condition", "Op", "parse_conditions",
    "LogicalResource", "RegisteredResource", "ResourceRegistry",
    "AdministrativeDomain", "DomainRegistry", "DomainRole",
    "User", "UserRegistry", "AccessControlList", "Permission",
    "EventBus", "EventKind", "EventPhase", "NamespaceEvent",
    "Bridge", "Federation", "split_zone_path", "validate_zone_name",
    "qualify",
    "GridFileSystem", "GridStat",
]

"""Access control for the logical namespace.

The SRB model: every collection and data object carries an access control
list granting per-user (or per-group) permissions. Permissions are ordered —
OWN implies WRITE implies READ — matching how datagrid ACLs behave in
practice.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from repro.errors import PermissionDenied
from repro.grid.users import User

__all__ = ["Permission", "AccessControlList"]


class Permission(enum.IntEnum):
    """Ordered permission levels; higher implies lower."""

    NONE = 0
    READ = 1
    WRITE = 2
    OWN = 3


class AccessControlList:
    """Per-principal permission levels with group support.

    Principals are qualified user names (``user@domain``), group names
    prefixed ``group:``, or the wildcard ``*`` (every user). The effective
    level for a user is the maximum over their direct entry, their groups'
    entries, and the wildcard entry.
    """

    def __init__(self, owner: Optional[User] = None) -> None:
        self._entries: Dict[str, Permission] = {}
        if owner is not None:
            self._entries[owner.qualified_name] = Permission.OWN

    def grant(self, principal: str, permission: Permission) -> None:
        """Set ``principal``'s level (use ``group:<name>`` for groups)."""
        if permission is Permission.NONE:
            self._entries.pop(principal, None)
        else:
            self._entries[principal] = permission

    def revoke(self, principal: str) -> None:
        """Remove ``principal``'s entry entirely."""
        self._entries.pop(principal, None)

    def level_for(self, user: User) -> Permission:
        """Effective permission level for ``user``."""
        level = self._entries.get(user.qualified_name, Permission.NONE)
        wildcard = self._entries.get("*", Permission.NONE)
        if wildcard > level:
            level = wildcard
        for group in user.groups:
            group_level = self._entries.get(f"group:{group}", Permission.NONE)
            if group_level > level:
                level = group_level
        return level

    def allows(self, user: User, required: Permission) -> bool:
        """True if ``user`` holds at least ``required``."""
        return self.level_for(user) >= required

    def require(self, user: User, required: Permission, what: str) -> None:
        """Raise :class:`PermissionDenied` unless ``user`` holds ``required``."""
        if not self.allows(user, required):
            raise PermissionDenied(
                f"{user} needs {required.name} on {what} "
                f"(has {self.level_for(user).name})")

    def entries(self) -> Dict[str, Permission]:
        """A copy of all explicit entries."""
        return dict(self._entries)

"""The logical namespace: shared collections, data objects, replicas.

This is the core of data virtualization (§1): "a logical aggregation of
digital entities, e.g. files, which are physically distributed in multiple
physical storage resources that are owned by multiple administrative
domains". Names here are logical; a data object's bytes live in one or more
:class:`Replica` records pointing at physical resources, and renaming or
migrating never changes the logical identity.

Paths are Unix-style (``/home/projects/scec/file.dat``). Nodes carry an ACL
and user-defined metadata.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import NamespaceError, ReplicaError
from repro.grid.acl import AccessControlList, Permission
from repro.grid.catalog import GridCatalog
from repro.grid.metadata import MetadataSet
from repro.grid.users import User

__all__ = [
    "normalize_path", "parent_path", "basename", "join_path",
    "ReplicaState", "Replica", "DataObject", "Collection", "LogicalNamespace",
]


# --------------------------------------------------------------------------
# Path helpers
# --------------------------------------------------------------------------


def normalize_path(path: str) -> str:
    """Canonicalize a logical path (absolute, no trailing slash, no empties)."""
    if not path or not path.startswith("/"):
        raise NamespaceError(f"logical paths must be absolute, got {path!r}")
    parts = [part for part in path.split("/") if part]
    for part in parts:
        if part in (".", ".."):
            raise NamespaceError(f"relative components not allowed: {path!r}")
    return "/" + "/".join(parts)


def parent_path(path: str) -> str:
    """Parent of a normalized path ('/' is its own parent)."""
    path = normalize_path(path)
    if path == "/":
        return "/"
    head, _, _ = path.rpartition("/")
    return head or "/"


def basename(path: str) -> str:
    """Final component of a normalized path ('' for the root)."""
    path = normalize_path(path)
    return path.rpartition("/")[2]


def join_path(parent: str, name: str) -> str:
    """Join a collection path and a child name."""
    if "/" in name:
        raise NamespaceError(f"child name cannot contain '/': {name!r}")
    parent = normalize_path(parent)
    return parent + name if parent == "/" else f"{parent}/{name}"


# --------------------------------------------------------------------------
# Nodes
# --------------------------------------------------------------------------


class ReplicaState(enum.Enum):
    """Lifecycle state of one physical copy."""

    GOOD = "good"
    STALE = "stale"   # logically superseded, awaiting cleanup


class Replica:
    """One physical copy of a data object.

    ``allocation_id`` is the key under which bytes are accounted on the
    physical resource; it embeds the object's immutable GUID so logical
    renames never touch physical state.

    Pass ``replica_number`` (the DGMS uses
    :meth:`LogicalNamespace.next_replica_number`) so numbering is scoped to
    one namespace and identical run-to-run; the module-level fallback
    counter exists only for standalone construction.
    """

    _counter = itertools.count(1)

    def __init__(self, object_guid: str, logical_resource: str, domain: str,
                 physical_name: str, created_at: float,
                 replica_number: Optional[int] = None) -> None:
        self.replica_number = (replica_number if replica_number is not None
                               else next(Replica._counter))
        self.object_guid = object_guid
        self.logical_resource = logical_resource
        self.domain = domain
        self.physical_name = physical_name
        self.created_at = created_at
        self.state = ReplicaState.GOOD

    @property
    def allocation_id(self) -> str:
        return f"{self.object_guid}#{self.replica_number}"

    def __repr__(self) -> str:
        return (f"<Replica #{self.replica_number} of {self.object_guid} on "
                f"{self.physical_name}@{self.domain} ({self.state.value})>")


class _Node:
    """Common state for collections and data objects."""

    def __init__(self, name: str, owner: Optional[User], created_at: float) -> None:
        self.name = name
        self.owner = owner
        self.created_at = created_at
        self.modified_at = created_at
        self.acl = AccessControlList(owner)
        self.metadata = MetadataSet()
        self.parent: Optional["Collection"] = None
        #: The owning namespace's catalog while this node is in its tree.
        self._catalog: Optional[GridCatalog] = None
        self._path_cache: Optional[str] = None

    @property
    def path(self) -> str:
        """Full logical path, derived from the parent chain.

        Cached; the cache is invalidated transitively for the whole
        subtree whenever an ancestor is moved or renamed.
        """
        cached = self._path_cache
        if cached is None:
            cached = ("/" if self.parent is None
                      else join_path(self.parent.path, self.name))
            self._path_cache = cached
        return cached


class DataObject(_Node):
    """A logical file: a name plus size, checksum, metadata, and replicas.

    Pass ``guid`` (:meth:`LogicalNamespace.create_object` mints one from its
    own counter) so identities are scoped to one namespace and identical
    run-to-run; standalone construction falls back to a module counter with
    a distinct ``guid-local-`` prefix so the two spaces cannot collide.
    """

    _local_guid_counter = itertools.count(1)

    def __init__(self, name: str, size: float, owner: Optional[User],
                 created_at: float, guid: Optional[str] = None) -> None:
        super().__init__(name, owner, created_at)
        if size < 0:
            raise NamespaceError(f"object size cannot be negative: {size}")
        self.guid = (guid if guid is not None
                     else f"guid-local-{next(DataObject._local_guid_counter):06d}")
        self.size = float(size)
        self.checksum: Optional[str] = None
        self.replicas: List[Replica] = []
        self.version = 1

    @property
    def size(self) -> float:
        """Logical size in bytes."""
        return self._size

    @size.setter
    def size(self, value: float) -> None:
        self._size = float(value)
        if self._catalog is not None:
            self._catalog.object_resized(self)

    def good_replicas(self) -> List[Replica]:
        """Replicas in GOOD state."""
        return [r for r in self.replicas if r.state is ReplicaState.GOOD]

    def replica_on(self, physical_name: str) -> Optional[Replica]:
        """The replica hosted on ``physical_name``, if any."""
        for replica in self.replicas:
            if replica.physical_name == physical_name:
                return replica
        return None

    def add_replica(self, replica: Replica) -> None:
        """Attach a replica (one per physical resource)."""
        if self.replica_on(replica.physical_name) is not None:
            raise ReplicaError(
                f"{self.path} already has a replica on {replica.physical_name}")
        self.replicas.append(replica)

    def remove_replica(self, replica: Replica) -> None:
        """Detach a replica (raises if it is not ours)."""
        try:
            self.replicas.remove(replica)
        except ValueError:
            raise ReplicaError(f"{replica!r} is not a replica of {self.path}") from None

    def __repr__(self) -> str:
        return f"<DataObject {self.path} {self.size:.0f} B x{len(self.replicas)} replicas>"


class Collection(_Node):
    """A logical directory: shared, hierarchical, spanning domains."""

    def __init__(self, name: str, owner: Optional[User], created_at: float) -> None:
        super().__init__(name, owner, created_at)
        self._children: Dict[str, _Node] = {}
        # Materialized sorted views, rebuilt lazily after attach/detach.
        self._listing_cache: Optional[List[_Node]] = None
        self._path_order_cache: Optional[List[_Node]] = None

    def child(self, name: str) -> Optional[_Node]:
        """The direct child named ``name``, or None."""
        return self._children.get(name)

    def children(self) -> List[_Node]:
        """Direct children, collections first, each group name-sorted."""
        cache = self._listing_cache
        if cache is None:
            cache = sorted(self._children.values(),
                           key=lambda n: (not isinstance(n, Collection), n.name))
            self._listing_cache = cache
        return list(cache)

    def _children_in_path_order(self) -> List[_Node]:
        """Direct children ordered so a DFS yields global path order.

        Suffixing collection names with ``/`` makes the sort key equal the
        child's path continuation, so ``b.dat`` sorts before collection
        ``b``'s descendants exactly as the full path strings would.
        """
        cache = self._path_order_cache
        if cache is None:
            cache = sorted(self._children.values(),
                           key=lambda n: (n.name + "/"
                                          if isinstance(n, Collection)
                                          else n.name))
            self._path_order_cache = cache
        return cache

    def _invalidate_listings(self) -> None:
        self._listing_cache = None
        self._path_order_cache = None

    def attach(self, node: _Node) -> None:
        """Add ``node`` as a child (rejects name collisions)."""
        if node.name in self._children:
            raise NamespaceError(
                f"{join_path(self.path, node.name)} already exists")
        self._children[node.name] = node
        node.parent = self
        self._invalidate_listings()
        _adopt_subtree(node, self._catalog)

    def detach(self, node: _Node) -> None:
        """Remove a direct child, clearing its parent link."""
        if self._children.get(node.name) is not node:
            raise NamespaceError(f"{node.name!r} is not a child of {self.path}")
        del self._children[node.name]
        node.parent = None
        self._invalidate_listings()
        _release_subtree(node)

    def __len__(self) -> int:
        return len(self._children)

    def __repr__(self) -> str:
        return f"<Collection {self.path} ({len(self)} children)>"


def _adopt_subtree(node: _Node, catalog: Optional[GridCatalog]) -> None:
    """Point ``node``'s subtree at ``catalog``, (re)indexing every object.

    Also drops every cached path in the subtree: attach is the only way a
    node's absolute path can change (create, move, federated import), so
    invalidation here is transitively complete.
    """
    stack = [node]
    while stack:
        current = stack.pop()
        current._path_cache = None
        if isinstance(current, Collection):
            current._catalog = catalog
            stack.extend(current._children.values())
            continue
        previous = current._catalog
        current._catalog = catalog
        if previous is not catalog:
            if previous is not None:
                previous.deregister_object(current)
            if catalog is not None:
                catalog.register_object(current)


def _release_subtree(node: _Node) -> None:
    """Detach ``node``'s subtree from its catalog and drop cached paths."""
    stack = [node]
    while stack:
        current = stack.pop()
        current._path_cache = None
        catalog = current._catalog
        current._catalog = None
        if isinstance(current, Collection):
            stack.extend(current._children.values())
        elif catalog is not None:
            catalog.deregister_object(current)


# --------------------------------------------------------------------------
# The namespace
# --------------------------------------------------------------------------


class LogicalNamespace:
    """The datagrid's single logical tree of collections and data objects.

    Owns the :class:`~repro.grid.catalog.GridCatalog` (:attr:`catalog`)
    that mirrors the tree with secondary indexes; every attach/detach and
    metadata change keeps it current, and the query planner in
    :mod:`repro.grid.query` consults it for sublinear lookups. GUIDs and
    replica numbers are minted from namespace-scoped counters so repeated
    runs and reordered tests produce identical identifiers.
    """

    def __init__(self) -> None:
        self.catalog = GridCatalog()
        #: Attached telemetry session (set by ``attach_telemetry``); the
        #: query planner reports access-path metrics through it.
        self.telemetry = None
        #: GUID authority tag. Empty for a standalone grid (guids are
        #: namespace-scoped); :meth:`~repro.grid.federation.Federation.
        #: add_zone` sets it to the zone name so every federated zone
        #: mints federation-unique guids (``guid-<zone>-<n>``) — the
        #: replica location service indexes by guid across zones.
        self.guid_authority = ""
        self._guid_counter = itertools.count(1)
        self._replica_counter = itertools.count(1)
        self.root = Collection(name="", owner=None, created_at=0.0)
        self.root._catalog = self.catalog
        # Bootstrap convention: the root is world-writable so domains can
        # create their top-level collections; they then lock down their own.
        self.root.acl.grant("*", Permission.WRITE)

    # -- identities ---------------------------------------------------------

    def next_guid(self) -> str:
        """Mint the next data-object GUID (deterministic; qualified by
        :attr:`guid_authority` when this namespace is a federated zone)."""
        if self.guid_authority:
            return f"guid-{self.guid_authority}-{next(self._guid_counter):08d}"
        return f"guid-{next(self._guid_counter):08d}"

    def next_replica_number(self) -> int:
        """Mint the next replica number (namespace-scoped, deterministic)."""
        return next(self._replica_counter)

    # -- resolution ---------------------------------------------------------

    def resolve(self, path: str) -> _Node:
        """Return the node at ``path`` or raise :class:`NamespaceError`."""
        path = normalize_path(path)
        node: _Node = self.root
        if path == "/":
            return node
        for part in path[1:].split("/"):
            if not isinstance(node, Collection):
                raise NamespaceError(f"{node.path} is not a collection")
            child = node.child(part)
            if child is None:
                raise NamespaceError(f"no such path: {path!r}")
            node = child
        return node

    def try_resolve(self, path: str) -> Optional[_Node]:
        """The node at ``path``, or None — one walk for exists+resolve."""
        try:
            return self.resolve(path)
        except NamespaceError:
            return None

    def lookup_guid(self, guid: str) -> Optional["DataObject"]:
        """The data object with ``guid``, via the catalog (O(1))."""
        return self.catalog.lookup_guid(guid)

    def guids(self) -> List[str]:
        """Every attached object's guid, in registration order."""
        return self.catalog.guids()

    def exists(self, path: str) -> bool:
        """True if ``path`` resolves."""
        return self.try_resolve(path) is not None

    def resolve_collection(self, path: str) -> Collection:
        """Resolve, insisting on a collection."""
        node = self.resolve(path)
        if not isinstance(node, Collection):
            raise NamespaceError(f"{path!r} is a data object, not a collection")
        return node

    def resolve_object(self, path: str) -> DataObject:
        """Resolve, insisting on a data object."""
        node = self.resolve(path)
        if not isinstance(node, DataObject):
            raise NamespaceError(f"{path!r} is a collection, not a data object")
        return node

    # -- mutation -----------------------------------------------------------

    def create_collection(self, path: str, owner: Optional[User],
                          created_at: float, parents: bool = False) -> Collection:
        """Create a collection (optionally creating missing ancestors)."""
        path = normalize_path(path)
        if path == "/":
            raise NamespaceError("the root collection always exists")
        if self.exists(path):
            raise NamespaceError(f"{path!r} already exists")
        parent_str = parent_path(path)
        if not self.exists(parent_str):
            if not parents:
                raise NamespaceError(f"parent {parent_str!r} does not exist")
            self.create_collection(parent_str, owner, created_at, parents=True)
        parent = self.resolve_collection(parent_str)
        collection = Collection(basename(path), owner, created_at)
        parent.attach(collection)
        return collection

    def create_object(self, path: str, size: float, owner: Optional[User],
                      created_at: float,
                      guid: Optional[str] = None) -> DataObject:
        """Register a new data object at ``path`` (no replicas yet).

        ``guid`` adopts an existing identity instead of minting one —
        the cross-zone copy path uses this so a copied object stays *the
        same logical object* (one guid, replicas in several zones). A
        guid already present in this namespace is refused: within one
        zone, more copies of an object are replicas, not new entries.
        """
        path = normalize_path(path)
        parent = self.resolve_collection(parent_path(path))
        if guid is not None and self.lookup_guid(guid) is not None:
            raise NamespaceError(
                f"guid {guid!r} already exists in this namespace; "
                "replicate the existing object instead")
        obj = DataObject(basename(path), size, owner, created_at,
                         guid=guid if guid is not None else self.next_guid())
        parent.attach(obj)
        return obj

    def remove(self, path: str) -> _Node:
        """Detach and return the node at ``path`` (collections must be empty)."""
        node = self.resolve(path)
        if node is self.root:
            raise NamespaceError("cannot remove the root collection")
        if isinstance(node, Collection) and len(node) > 0:
            raise NamespaceError(f"collection {path!r} is not empty")
        node.parent.detach(node)
        return node

    def move(self, src: str, dst: str) -> _Node:
        """Rename/move a node. Purely logical — replicas are untouched."""
        node = self.resolve(src)
        if node is self.root:
            raise NamespaceError("cannot move the root collection")
        dst = normalize_path(dst)
        if self.exists(dst):
            raise NamespaceError(f"destination {dst!r} already exists")
        new_parent = self.resolve_collection(parent_path(dst))
        # Refuse to move a collection under itself.
        probe: Optional[_Node] = new_parent
        while probe is not None:
            if probe is node:
                raise NamespaceError(f"cannot move {src!r} under itself")
            probe = probe.parent
        node.parent.detach(node)
        node.name = basename(dst)
        new_parent.attach(node)
        return node

    # -- traversal ----------------------------------------------------------

    def walk(self, path: str = "/") -> Iterator[Tuple[Collection, List[Collection], List[DataObject]]]:
        """Depth-first traversal, os.walk-style."""
        start = self.resolve_collection(path)
        stack = [start]
        while stack:
            collection = stack.pop()
            subcollections = [c for c in collection.children()
                              if isinstance(c, Collection)]
            objects = [o for o in collection.children()
                       if isinstance(o, DataObject)]
            yield collection, subcollections, objects
            stack.extend(reversed(subcollections))

    def iter_objects(self, path: str = "/") -> Iterator[DataObject]:
        """All data objects under ``path`` (recursive)."""
        for _, _, objects in self.walk(path):
            yield from objects

    def iter_objects_in_path_order(self, path: str = "/") -> Iterator[DataObject]:
        """All data objects under ``path``, in ascending path order.

        Unlike :meth:`iter_objects` (which yields a collection's direct
        objects before descending), this interleaves objects and
        subcollections so the yield order equals sorting by full path —
        which lets a limited query stop as soon as it has enough matches.
        """
        start = self.resolve_collection(path)

        def visit(collection: Collection) -> Iterator[DataObject]:
            for child in collection._children_in_path_order():
                if isinstance(child, Collection):
                    yield from visit(child)
                else:
                    yield child

        return visit(start)

"""Federation of multiple datagrids (zones).

A single :class:`~repro.grid.dgms.DataGridManagementSystem` already spans
many administrative domains; *federation* goes one level up and joins
several independently-operated datagrids so users can address data in a
peer grid with ``zone:/path`` names and pull copies across grid boundaries.
This mirrors SRB zone federation, which the BBSRC/CCLRC deployment (§2.1)
relied on.

Zones share nothing below this class: each keeps its own namespace,
catalog, topology, and transfer engine. What joins them is

* the **zone name registry** (:meth:`Federation.add_zone`) — names obey
  :func:`validate_zone_name` so every ``zone:/path`` string round-trips
  through :func:`split_zone_path`;
* **bridges** (:meth:`Federation.connect_zones`) — fixed-capacity
  inter-zone hops with their own latency/bandwidth, degradable by
  zone-scoped chaos (:class:`~repro.faults.model.BridgeDegradation`);
* the **resilient cross-zone copy** — read at the source zone through
  :meth:`~repro.grid.dgms.DataGridManagementSystem.select_replica` (so an
  attached recovery service fails over between source replicas), one
  bridge hop, then a put at the target zone; retryable failures back off
  and rerun the whole leg when either zone has recovery attached;
* an attach point for the two-tier **replica location service**
  (:mod:`repro.federation.rls` sets :attr:`Federation.rls`) — duck-typed
  like ``dgms.recovery``/``dgms.cache`` so this module stays import-free
  of the federation package above it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import FederationError, ReplicaError, Retryable
from repro.grid.dgms import DataGridManagementSystem
from repro.grid.users import User
from repro.sim.kernel import Environment, Process

__all__ = ["Bridge", "Federation", "split_zone_path", "validate_zone_name",
           "qualify"]

#: Characters a zone name may not contain: the zone/path separator and
#: the path separator (either would make ``zone:/path`` ambiguous).
_FORBIDDEN_IN_ZONE = (":", "/")


def validate_zone_name(zone: str) -> str:
    """Check ``zone`` is usable in ``zone:/path`` names; returns it.

    Zone names must be non-empty and must not contain ``:`` or ``/`` —
    exactly the property that makes :func:`split_zone_path` a bijection
    on well-formed names.
    """
    if not zone:
        raise FederationError("zone name cannot be empty")
    for char in _FORBIDDEN_IN_ZONE:
        if char in zone:
            raise FederationError(
                f"zone name {zone!r} cannot contain {char!r}")
    return zone


def split_zone_path(name: str) -> Tuple[Optional[str], str]:
    """Split ``zone:/path`` into (zone, path); zone is None for plain paths.

    The zone part must be a valid zone name (non-empty, no embedded
    ``:`` or ``/``) and the path part must be absolute; anything else
    raises :class:`~repro.errors.FederationError`. Plain absolute paths
    pass through untouched, so ``qualify(*split_zone_path(name))`` is the
    identity on every well-formed zone-qualified name.
    """
    if ":" in name and not name.startswith("/"):
        zone, _, path = name.partition(":")
        validate_zone_name(zone)
        if not path.startswith("/"):
            raise FederationError(f"malformed zone path {name!r}")
        return zone, path
    return None, name


def qualify(zone: Optional[str], path: str) -> str:
    """Inverse of :func:`split_zone_path`: ``zone:/path`` (or the plain
    path when ``zone`` is None)."""
    if zone is None:
        return path
    validate_zone_name(zone)
    if not path.startswith("/"):
        raise FederationError(f"zone-qualified path must be absolute, "
                              f"got {path!r}")
    return f"{zone}:{path}"


class Bridge:
    """A fixed-capacity inter-zone hop.

    Zones do not share a :class:`~repro.network.topology.Topology`, so
    cross-zone bytes ride a bridge: a latency plus a bandwidth that
    zone-scoped chaos can degrade (factors compose multiplicatively,
    mirroring :class:`~repro.faults.model.LinkDegradation` semantics).
    The rate is sampled when a hop starts; an in-flight hop keeps the
    rate it started with.
    """

    __slots__ = ("zone_a", "zone_b", "bandwidth_bps", "latency_s",
                 "_degradations")

    def __init__(self, zone_a: str, zone_b: str, bandwidth_bps: float,
                 latency_s: float) -> None:
        if zone_a == zone_b:
            raise FederationError(
                f"a bridge needs two distinct zones, got {zone_a!r} twice")
        if bandwidth_bps <= 0 or latency_s < 0:
            raise FederationError(
                "bridge needs positive bandwidth and non-negative latency")
        self.zone_a = zone_a
        self.zone_b = zone_b
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency_s = float(latency_s)
        # Open degradation factors, composed multiplicatively.
        self._degradations: List[float] = []

    @property
    def ends(self) -> FrozenSet[str]:
        return frozenset((self.zone_a, self.zone_b))

    @property
    def name(self) -> str:
        return "~~".join(sorted((self.zone_a, self.zone_b)))

    @property
    def effective_bandwidth_bps(self) -> float:
        """Current rate: pristine bandwidth times every open degradation."""
        bandwidth = self.bandwidth_bps
        for factor in self._degradations:
            bandwidth *= factor
        return bandwidth

    def degrade(self, factor: float) -> None:
        """Open a degradation window scaling the rate by ``factor``."""
        if not 0.0 < factor < 1.0:
            raise FederationError(
                f"degradation factor must be in (0, 1), got {factor}")
        self._degradations.append(factor)

    def restore(self, factor: float) -> None:
        """Close one degradation window opened with ``factor``."""
        self._degradations.remove(factor)

    def transfer_time(self, nbytes: float) -> float:
        """Sim seconds one hop of ``nbytes`` takes at the current rate."""
        return self.latency_s + nbytes / self.effective_bandwidth_bps

    def __repr__(self) -> str:
        return (f"Bridge({self.name}, "
                f"{self.effective_bandwidth_bps / 1e6:.1f}MB/s, "
                f"{self.latency_s}s)")


class Federation:
    """A set of named zones (datagrids) that trust each other."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._zones: Dict[str, DataGridManagementSystem] = {}
        self._bridges: Dict[FrozenSet[str], Bridge] = {}
        #: Replica location service (duck-typed; see
        #: :func:`repro.federation.rls.attach_rls`). ``None`` means
        #: :meth:`locate` is unavailable — keeping this module
        #: import-free of the federation package.
        self.rls = None
        #: Cross-zone copy outcomes, for reports that run without
        #: telemetry (telemetry mirrors them when attached).
        self.copies_completed = 0
        self.copies_failed = 0

    # -- zone registry --------------------------------------------------------

    def add_zone(self, zone_name: str, dgms: DataGridManagementSystem) -> None:
        """Join ``dgms`` to the federation as ``zone_name``.

        The zone's namespace becomes a guid authority: objects minted
        from here on carry ``guid-<zone>-`` prefixes, so guid-level
        services (the RLS) see federation-unique identities. Join zones
        *before* populating them — guids minted earlier keep their
        namespace-scoped form and may collide with a sibling zone's.
        """
        validate_zone_name(zone_name)
        if zone_name in self._zones:
            raise FederationError(f"zone {zone_name!r} already federated")
        if dgms.zone_name is not None:
            raise FederationError(
                f"datagrid {dgms.name!r} is already federated as "
                f"{dgms.zone_name!r}")
        dgms.zone_name = zone_name
        dgms.namespace.guid_authority = zone_name
        self._zones[zone_name] = dgms

    def zone(self, zone_name: str) -> DataGridManagementSystem:
        """The datagrid federated as ``zone_name`` (raises if unknown)."""
        try:
            return self._zones[zone_name]
        except KeyError:
            raise FederationError(f"unknown zone {zone_name!r}") from None

    def zones(self) -> List[str]:
        """Federated zone names, sorted."""
        return sorted(self._zones)

    def resolve(self, default_zone: str, name: str):
        """Resolve ``zone:/path`` (or a plain path in ``default_zone``)."""
        zone_name, path = split_zone_path(name)
        dgms = self.zone(zone_name or default_zone)
        return dgms, dgms.namespace.resolve(path)

    # -- bridges --------------------------------------------------------------

    def connect_zones(self, zone_a: str, zone_b: str,
                      bandwidth_bps: float = 10 * 1024 * 1024,
                      latency_s: float = 0.2) -> Bridge:
        """Install the inter-zone bridge ``zone_a ~~ zone_b``."""
        self.zone(zone_a)
        self.zone(zone_b)
        bridge = Bridge(zone_a, zone_b, bandwidth_bps, latency_s)
        if bridge.ends in self._bridges:
            raise FederationError(f"bridge {bridge.name} already exists")
        self._bridges[bridge.ends] = bridge
        return bridge

    def bridge(self, zone_a: str, zone_b: str) -> Optional[Bridge]:
        """The registered bridge between two zones, if any."""
        return self._bridges.get(frozenset((zone_a, zone_b)))

    def bridges(self) -> List[Bridge]:
        """Every registered bridge, sorted by name."""
        return sorted(self._bridges.values(), key=lambda b: b.name)

    def bridge_cost(self, zone_a: str, zone_b: str, nbytes: float) -> float:
        """Sim seconds ``nbytes`` would take over the registered bridge
        right now (``inf`` when the zones are not bridged)."""
        if zone_a == zone_b:
            return 0.0
        bridge = self.bridge(zone_a, zone_b)
        if bridge is None:
            return float("inf")
        return bridge.transfer_time(nbytes)

    # -- replica location -----------------------------------------------------

    def locate(self, guid):
        """Federation-wide replica locations for ``guid``, through the
        attached replica location service (raises when none is)."""
        if self.rls is None:
            raise FederationError(
                "no replica location service attached; see "
                "repro.federation.rls.attach_rls")
        return self.rls.locate(guid)

    # -- cross-zone copy ------------------------------------------------------

    def cross_zone_copy(self, user: User, src_zone: str, src_path: str,
                        dst_zone: str, dst_path: str,
                        dst_logical_resource: str,
                        bridge_bandwidth_bps: float = 10 * 1024 * 1024,
                        bridge_latency_s: float = 0.2,
                        replica_policy: str = "nearest") -> Process:
        """Copy an object from one zone into another.

        The zones have independent namespaces and networks, so the copy is
        read-out + inter-grid hop + put-in. The hop rides the registered
        bridge between the zones when one exists; otherwise an ad-hoc
        bridge with the given parameters (the pre-federation default, kept
        so unbridged copies still work). When either zone has a recovery
        service attached, a retryable failure of any leg backs the whole
        copy off and reruns it (replicas already excluded by the source
        zone's own failover are retried fresh — an outage may have ended);
        without recovery the copy stays fail-fast.
        """
        bridge = self.bridge(src_zone, dst_zone)
        if bridge is None:
            bridge = Bridge(src_zone, dst_zone, bridge_bandwidth_bps,
                            bridge_latency_s)
        return self.env.process(self._cross_zone_copy(
            user, src_zone, src_path, dst_zone, dst_path,
            dst_logical_resource, bridge, replica_policy))

    def _cross_zone_copy(self, user, src_zone, src_path, dst_zone, dst_path,
                         dst_logical_resource, bridge, replica_policy):
        source = self.zone(src_zone)
        target = self.zone(dst_zone)
        obj = source.namespace.resolve_object(src_path)
        recovery = target.recovery if target.recovery is not None \
            else source.recovery
        attempt = 0
        while True:
            try:
                copied = yield from self._copy_once(
                    user, source, target, obj, src_zone, src_path,
                    dst_path, dst_logical_resource, bridge, replica_policy)
            except Exception as exc:
                if recovery is None or not isinstance(exc, Retryable):
                    self._note_copy("failed")
                    raise
                attempt += 1
                if attempt >= recovery.policy.max_attempts:
                    self._note_copy("failed")
                    raise
                recovery.note("federation-failover",
                              src=qualify(src_zone, src_path),
                              dst=qualify(dst_zone, dst_path),
                              error=type(exc).__name__)
                yield from recovery.backoff(attempt,
                                            operation="cross_zone_copy",
                                            path=src_path)
                continue
            self._note_copy("completed")
            return copied

    def _copy_once(self, user, source, target, obj, src_zone, src_path,
                   dst_path, dst_logical_resource, bridge, replica_policy):
        """Generator: one attempt at read → bridge hop → put."""
        good = obj.good_replicas()
        if not good:
            raise ReplicaError(
                f"{src_path} has no good replicas in zone {src_zone}")
        # Read at the source zone, to the selected replica's own domain
        # (no WAN hop inside the source grid; the bridge below charges
        # the inter-zone cost). The anchor replica — lowest replica
        # number — only seeds the destination-domain choice; the actual
        # source replica is the policy's pick for that destination, and
        # a recovery-attached get fails over between replicas on its own.
        anchor = min(good, key=lambda r: r.replica_number).domain
        replica = source.select_replica(obj, to_domain=anchor,
                                        policy=replica_policy)
        yield source.get(user, src_path, to_domain=replica.domain,
                         replica_policy=replica_policy)
        yield self.env.timeout(bridge.transfer_time(obj.size))
        self._note_bridge_bytes(obj.size)
        # The copy keeps the source guid: it is a *replica of the same
        # logical object* in another zone (the SRB federation model), so
        # guid-level services (the RLS) see one identity across zones.
        copied = yield target.put(
            user, dst_path, obj.size, dst_logical_resource,
            metadata=dict(obj.metadata.items()), guid=obj.guid)
        copied.metadata.set("federation:source", qualify(src_zone, src_path))
        return copied

    # -- accounting -----------------------------------------------------------

    def _note_copy(self, outcome: str) -> None:
        if outcome == "completed":
            self.copies_completed += 1
        else:
            self.copies_failed += 1
        telemetry = self.env.telemetry
        if telemetry is not None:
            telemetry.federation_copies.labels(outcome=outcome).inc()

    def _note_bridge_bytes(self, nbytes: float) -> None:
        telemetry = self.env.telemetry
        if telemetry is not None:
            telemetry.federation_bridge_bytes.inc(nbytes)

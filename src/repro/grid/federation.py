"""Federation of multiple datagrids (zones).

A single :class:`~repro.grid.dgms.DataGridManagementSystem` already spans
many administrative domains; *federation* goes one level up and joins
several independently-operated datagrids so users can address data in a
peer grid with ``zone:/path`` names and pull copies across grid boundaries.
This mirrors SRB zone federation, which the BBSRC/CCLRC deployment (§2.1)
relied on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import FederationError
from repro.grid.dgms import DataGridManagementSystem
from repro.grid.users import User
from repro.sim.kernel import Environment, Process

__all__ = ["Federation", "split_zone_path"]


def split_zone_path(name: str) -> Tuple[Optional[str], str]:
    """Split ``zone:/path`` into (zone, path); zone is None for plain paths."""
    if ":" in name and not name.startswith("/"):
        zone, _, path = name.partition(":")
        if not path.startswith("/"):
            raise FederationError(f"malformed zone path {name!r}")
        return zone, path
    return None, name


class Federation:
    """A set of named zones (datagrids) that trust each other."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._zones: Dict[str, DataGridManagementSystem] = {}

    def add_zone(self, zone_name: str, dgms: DataGridManagementSystem) -> None:
        """Join ``dgms`` to the federation as ``zone_name``."""
        if zone_name in self._zones:
            raise FederationError(f"zone {zone_name!r} already federated")
        self._zones[zone_name] = dgms

    def zone(self, zone_name: str) -> DataGridManagementSystem:
        """The datagrid federated as ``zone_name`` (raises if unknown)."""
        try:
            return self._zones[zone_name]
        except KeyError:
            raise FederationError(f"unknown zone {zone_name!r}") from None

    def zones(self) -> List[str]:
        """Federated zone names, sorted."""
        return sorted(self._zones)

    def resolve(self, default_zone: str, name: str):
        """Resolve ``zone:/path`` (or a plain path in ``default_zone``)."""
        zone_name, path = split_zone_path(name)
        dgms = self.zone(zone_name or default_zone)
        return dgms, dgms.namespace.resolve(path)

    def cross_zone_copy(self, user: User, src_zone: str, src_path: str,
                        dst_zone: str, dst_path: str,
                        dst_logical_resource: str,
                        bridge_bandwidth_bps: float = 10 * 1024 * 1024,
                        bridge_latency_s: float = 0.2) -> Process:
        """Copy an object from one zone into another.

        The zones have independent namespaces and networks, so the copy is
        read-out + inter-grid hop + put-in. The inter-grid hop is modeled as
        a fixed-capacity bridge (zones do not share a topology object).
        """
        return self.env.process(self._cross_zone_copy(
            user, src_zone, src_path, dst_zone, dst_path,
            dst_logical_resource, bridge_bandwidth_bps, bridge_latency_s))

    def _cross_zone_copy(self, user, src_zone, src_path, dst_zone, dst_path,
                         dst_logical_resource, bandwidth, latency):
        source = self.zone(src_zone)
        target = self.zone(dst_zone)
        obj = source.namespace.resolve_object(src_path)
        # Read at the source zone (to the replica's own domain: no WAN hop
        # inside the source grid; the bridge below charges the WAN cost).
        replica = source.select_replica(obj, to_domain=obj.good_replicas()[0].domain)
        yield source.get(user, src_path, to_domain=replica.domain)
        yield self.env.timeout(latency + obj.size / bandwidth)
        copied = yield target.put(
            user, dst_path, obj.size, dst_logical_resource,
            metadata=dict(obj.metadata.items()))
        copied.metadata.set("federation:source", f"{src_zone}:{src_path}")
        return copied

"""The Data Grid Management System (DGMS) facade.

This class plays the role of the SDSC Storage Resource Broker in the paper:
a single logical data-management system federating storage owned by many
administrative domains (§1). It exposes:

* admin registration (domains, users, physical → logical resources);
* timed data operations (put / get / replicate / migrate / delete /
  checksum), each returning a simulation :class:`~repro.sim.kernel.Process`
  the caller yields on;
* instant catalog operations (collections, metadata, ACLs, queries, moves);
* before/after namespace events on :attr:`events` (the trigger hook);
* an operation log callback list (the provenance hook).

Every mutating call takes the acting :class:`~repro.grid.users.User` first
and enforces ACLs, because domain autonomy — who may touch what — is the
defining property of a datagrid.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import GridError, NamespaceError, ReplicaError, Retryable
from repro.grid.acl import Permission
from repro.grid.domains import DomainRegistry, DomainRole
from repro.grid.events import EventBus, EventKind, EventPhase, NamespaceEvent
from repro.grid.metadata import MetadataValue
from repro.grid.namespace import (
    Collection,
    DataObject,
    LogicalNamespace,
    Replica,
    ReplicaState,
    parent_path,
)
from repro.grid.query import Query
from repro.grid.resources import RegisteredResource, ResourceRegistry
from repro.grid.users import User, UserRegistry
from repro.network.topology import Topology
from repro.network.transfer import TransferService
from repro.sim.kernel import Environment, Process
from repro.storage.resource import PhysicalStorageResource

__all__ = ["DataGridManagementSystem", "OperationRecord"]


@dataclass(frozen=True)
class OperationRecord:
    """One completed DGMS operation, as reported to provenance listeners."""

    operation: str
    user: Optional[str]
    path: str
    start_time: float
    end_time: float
    detail: Dict[str, object] = field(default_factory=dict)


class DataGridManagementSystem:
    """One datagrid: logical namespace + registries + timed operations."""

    def __init__(self, env: Environment, topology: Optional[Topology] = None,
                 name: str = "datagrid") -> None:
        self.env = env
        self.name = name
        self.topology = topology if topology is not None else Topology()
        self.transfers = TransferService(env, self.topology)
        self.namespace = LogicalNamespace()
        self.users = UserRegistry()
        self.domains = DomainRegistry()
        self.resources = ResourceRegistry()
        self.events = EventBus()
        #: Provenance listeners; each receives every OperationRecord.
        self.operation_listeners: List[Callable[[OperationRecord], None]] = []
        #: Recovery service (duck-typed; see
        #: :func:`repro.faults.recovery.attach_recovery`). ``None`` means
        #: every operation takes its original, fail-fast code path —
        #: keeping this module import-free of the faults package.
        self.recovery = None
        #: Memoizing cache tier (duck-typed; see
        #: :func:`repro.dfms.cache.attach_cache`). ``None`` means every
        #: query and replica selection runs fresh — keeping this module
        #: import-free of the dfms package.
        self.cache = None
        #: Zone name once this datagrid joins a
        #: :class:`~repro.grid.federation.Federation` (set by
        #: ``Federation.add_zone``). ``None`` means unfederated; a grid
        #: can belong to at most one federation.
        self.zone_name: Optional[str] = None
        # Per-device I/O channel pools (for resources with a channel limit).
        self._io_slots: Dict[str, "Resource"] = {}

    # ------------------------------------------------------------------
    # Administration
    # ------------------------------------------------------------------

    def register_domain(self, name: str,
                        role: DomainRole = DomainRole.PARTICIPANT):
        """Add an administrative domain (and a network node for it)."""
        domain = self.domains.register(name, role)
        self.topology.add_domain(name)
        return domain

    def register_user(self, name: str, domain: str,
                      groups=frozenset()) -> User:
        """Add a user homed at ``domain``."""
        if domain not in self.domains:
            raise GridError(f"unknown domain {domain!r}; register it first")
        user = self.users.register(name, domain, groups)
        self.domains.get(domain).user_names.add(user.qualified_name)
        return user

    def register_resource(self, logical_name: str, domain: str,
                          physical: PhysicalStorageResource):
        """Map a physical storage system at ``domain`` into the logical
        resource namespace under ``logical_name``."""
        if domain not in self.domains:
            raise GridError(f"unknown domain {domain!r}; register it first")
        logical = self.resources.register(logical_name, domain, physical)
        self.domains.get(domain).resource_names.add(physical.name)
        return logical

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _emit(self, kind: EventKind, phase: EventPhase, path: str,
              user: Optional[User], **detail) -> None:
        self.events.publish(NamespaceEvent(
            kind=kind, phase=phase, path=path, time=self.env.now,
            user=user.qualified_name if user else None, detail=detail))

    def _record(self, operation: str, user: Optional[User], path: str,
                start_time: float, **detail) -> None:
        record = OperationRecord(
            operation=operation,
            user=user.qualified_name if user else None,
            path=path, start_time=start_time, end_time=self.env.now,
            detail=detail)
        for listener in self.operation_listeners:
            listener(record)

    def _registered(self, replica: Replica) -> RegisteredResource:
        return self.resources.physical(replica.physical_name)

    def _wan(self, src: str, dst: str, nbytes: float):
        """Generator: one WAN leg, resumable when recovery is attached.

        Without a recovery service this is exactly the original
        ``yield transfer(...)`` (bit-identical timing); with one, an
        interrupted transfer resumes from its byte offset and a missing
        route backs off until routing recovers.
        """
        if self.recovery is None:
            yield self.transfers.transfer(src, dst, nbytes)
        else:
            yield from self.recovery.run_transfer(
                self.transfers, src, dst, nbytes)

    def _timed_io(self, physical: PhysicalStorageResource, duration: float):
        """Generator: one I/O of ``duration`` honoring the device's
        channel limit (``channels == 0`` means uncontended)."""
        if physical.channels <= 0:
            yield self.env.timeout(duration)
            return
        slots = self._io_slots.get(physical.name)
        if slots is None:
            from repro.sim.resources import Resource as SlotPool
            slots = SlotPool(self.env, capacity=physical.channels)
            self._io_slots[physical.name] = slots
        request = slots.request()
        yield request
        try:
            yield self.env.timeout(duration)
        finally:
            slots.release(request)

    # ------------------------------------------------------------------
    # Instant catalog operations
    # ------------------------------------------------------------------

    def create_collection(self, user: User, path: str,
                          parents: bool = False) -> Collection:
        """Create a (shared) collection; WRITE on the parent is required."""
        parent = parent_path(path)
        if self.namespace.exists(parent):
            self.namespace.resolve_collection(parent).acl.require(
                user, Permission.WRITE, parent)
        elif not parents:
            raise NamespaceError(f"parent {parent!r} does not exist")
        self._emit(EventKind.COLLECTION_CREATE, EventPhase.BEFORE, path, user)
        start = self.env.now
        collection = self.namespace.create_collection(
            path, user, self.env.now, parents=parents)
        self._emit(EventKind.COLLECTION_CREATE, EventPhase.AFTER, path, user)
        self._record("create_collection", user, path, start)
        return collection

    def set_metadata(self, user: User, path: str, attribute: str,
                     value: MetadataValue, unit: Optional[str] = None) -> None:
        """Attach user-defined metadata; WRITE on the node is required."""
        node = self.namespace.resolve(path)
        node.acl.require(user, Permission.WRITE, path)
        self._emit(EventKind.METADATA, EventPhase.BEFORE, path, user,
                   attribute=attribute, value=value)
        start = self.env.now
        node.metadata.set(attribute, value, unit)
        node.modified_at = self.env.now
        self._emit(EventKind.METADATA, EventPhase.AFTER, path, user,
                   attribute=attribute, value=value)
        self._record("set_metadata", user, path, start,
                     attribute=attribute, value=value)

    def grant(self, user: User, path: str, principal: str,
              permission: Permission) -> None:
        """Change a node's ACL; OWN is required."""
        node = self.namespace.resolve(path)
        node.acl.require(user, Permission.OWN, path)
        self._emit(EventKind.ACL_CHANGE, EventPhase.BEFORE, path, user,
                   principal=principal, permission=permission.name)
        start = self.env.now
        node.acl.grant(principal, permission)
        if self.cache is not None:
            self.cache.on_acl_change(path)
        self._emit(EventKind.ACL_CHANGE, EventPhase.AFTER, path, user,
                   principal=principal, permission=permission.name)
        self._record("grant", user, path, start,
                     principal=principal, permission=permission.name)

    def move(self, user: User, src: str, dst: str) -> None:
        """Logical rename/move; physical replicas are untouched (§1)."""
        node = self.namespace.resolve(src)
        node.acl.require(user, Permission.WRITE, src)
        self.namespace.resolve_collection(parent_path(dst)).acl.require(
            user, Permission.WRITE, parent_path(dst))
        self._emit(EventKind.MOVE, EventPhase.BEFORE, src, user, destination=dst)
        start = self.env.now
        self.namespace.move(src, dst)
        node.modified_at = self.env.now
        self._emit(EventKind.MOVE, EventPhase.AFTER, dst, user, source=src)
        self._record("move", user, src, start, destination=dst)

    def stat(self, user: User, path: str):
        """Resolve a node the user can READ."""
        node = self.namespace.resolve(path)
        node.acl.require(user, Permission.READ, path)
        return node

    def list_collection(self, user: User, path: str):
        """Children of a collection the user can READ."""
        collection = self.namespace.resolve_collection(path)
        collection.acl.require(user, Permission.READ, path)
        return collection.children()

    def query(self, user: User, query: Query) -> List[DataObject]:
        """Run a datagrid query; results are filtered to READable objects.

        The cache tier (when attached) memoizes the post-ACL result list
        per caller; :meth:`grant` notifies it, so permission changes made
        through the DGMS never serve stale visibility.
        """
        if self.cache is not None:
            return self.cache.run_query(user, query)
        results = query.run(self.namespace)
        return [obj for obj in results
                if obj.acl.allows(user, Permission.READ)]

    # ------------------------------------------------------------------
    # Timed data operations (each returns a sim Process to yield on)
    # ------------------------------------------------------------------

    def _spawn(self, generator) -> Process:
        """Run a data operation as a kernel process.

        The spawning process's span context (typically an engine step's
        span, pinned on ``Process._tspan``) is copied onto the new
        process so transfer spans started there nest correctly.
        """
        process = self.env.process(generator)
        active = self.env._active_process
        if active is not None:
            process._tspan = active._tspan
        return process

    def put(self, user: User, path: str, size: float, logical_resource: str,
            source_domain: Optional[str] = None,
            metadata: Optional[Dict[str, MetadataValue]] = None,
            guid: Optional[str] = None) -> Process:
        """Ingest a new data object at ``path`` onto ``logical_resource``.

        If ``source_domain`` is given the bytes travel over the network from
        there to the chosen storage domain first. ``guid`` adopts an
        existing identity (the cross-zone copy path) instead of minting
        a fresh one.
        """
        return self._spawn(self._put(
            user, path, size, logical_resource, source_domain, metadata,
            guid))

    def _put(self, user, path, size, logical_resource, source_domain,
             metadata, guid=None):
        parent = self.namespace.resolve_collection(parent_path(path))
        parent.acl.require(user, Permission.WRITE, parent.path)
        member = self.resources.logical(logical_resource).select_for_write(size)
        self._emit(EventKind.INSERT, EventPhase.BEFORE, path, user,
                   size=size, resource=logical_resource)
        start = self.env.now
        if source_domain is not None:
            yield from self._wan(source_domain, member.domain, size)
        obj = self.namespace.create_object(path, size, user, self.env.now,
                                           guid=guid)
        replica = Replica(obj.guid, logical_resource, member.domain,
                          member.name, self.env.now,
                          replica_number=self.namespace.next_replica_number())
        try:
            duration = member.physical.write(replica.allocation_id, size)
        except Exception:
            # A failed ingest must not leave an orphan (replica-less)
            # entry in the namespace.
            self.namespace.remove(path)
            raise
        yield from self._timed_io(member.physical, duration)
        obj.add_replica(replica)
        if metadata:
            for attribute, value in metadata.items():
                obj.metadata.set(attribute, value)
        self._emit(EventKind.INSERT, EventPhase.AFTER, path, user,
                   size=size, resource=logical_resource, domain=member.domain)
        self._record("put", user, path, start, size=size,
                     resource=logical_resource, physical=member.name,
                     domain=member.domain)
        return obj

    def get(self, user: User, path: str, to_domain: str,
            replica_policy: str = "nearest") -> Process:
        """Read a data object's bytes to ``to_domain``.

        ``replica_policy`` selects the source replica: ``nearest`` (least
        transfer time — the DGMS-side replica selection of §2.3) or
        ``fixed`` (always the first replica — the baseline for E7).
        """
        return self._spawn(self._get(user, path, to_domain, replica_policy))

    def select_replica(self, obj: DataObject, to_domain: str,
                       policy: str = "nearest",
                       exclude: Optional[set] = None) -> Replica:
        """Pick the source replica for a read to ``to_domain``.

        ``exclude`` is a set of replica numbers already tried and failed
        this operation (the failover path); they are skipped so the next
        attempt goes to an alternate replica. The cache tier (when
        attached) memoizes non-exclude lookups, stamped against the
        topology version and the object's replica set; the failover path
        always recomputes.
        """
        replicas = obj.good_replicas()
        if exclude:
            replicas = [r for r in replicas
                        if r.replica_number not in exclude]
        if not replicas:
            raise ReplicaError(
                f"{obj.path} has no good replicas"
                + (" left to try" if exclude else ""))
        cache = self.cache if not exclude else None
        if cache is not None:
            cached = cache.lookup_replica(obj, to_domain, policy, replicas)
            if cached is not None:
                return cached
        choice = self._choose_replica(obj, to_domain, policy, replicas)
        if cache is not None:
            cache.store_replica(obj, to_domain, policy, replicas, choice)
        return choice

    def _choose_replica(self, obj: DataObject, to_domain: str,
                        policy: str, replicas: List[Replica]) -> Replica:
        if policy == "fixed":
            return min(replicas, key=lambda r: r.replica_number)
        if policy == "nearest":
            return min(replicas, key=lambda r: (
                self.topology.transfer_time(r.domain, to_domain, obj.size),
                r.replica_number))
        raise GridError(f"unknown replica policy {policy!r}")

    def _get(self, user, path, to_domain, replica_policy):
        obj = self.namespace.resolve_object(path)
        obj.acl.require(user, Permission.READ, path)
        start = self.env.now
        if self.recovery is None:
            replica = self.select_replica(obj, to_domain, replica_policy)
            registered = self._registered(replica)
            duration = registered.physical.read(replica.allocation_id)
            yield from self._timed_io(registered.physical, duration)
            yield self.transfers.transfer(replica.domain, to_domain,
                                          obj.size)
        else:
            replica = yield from self._get_resilient(
                obj, to_domain, replica_policy)
        self._record("get", user, path, start, size=obj.size,
                     source_domain=replica.domain, to_domain=to_domain,
                     physical=replica.physical_name)
        return obj

    def _get_resilient(self, obj, to_domain, replica_policy):
        """Failover read: replicas are tried in policy order; a replica
        whose read or transfer fails with a retryable error is excluded
        and the next-best one is tried. When every replica has failed,
        the round resets after a policy backoff (an outage may have
        ended by then). Non-retryable errors propagate immediately, and
        an object with no good replicas at all still raises."""
        recovery = self.recovery
        excluded: set = set()
        rounds = 0
        while True:
            try:
                replica = self.select_replica(obj, to_domain,
                                              replica_policy,
                                              exclude=excluded)
            except ReplicaError:
                if not excluded:
                    raise   # genuinely nothing to read, not a fault
                rounds += 1
                if rounds >= recovery.policy.max_attempts:
                    raise
                yield from recovery.backoff(rounds, operation="get",
                                            path=obj.path)
                excluded.clear()
                continue
            try:
                registered = self._registered(replica)
                duration = registered.physical.read(replica.allocation_id)
                yield from self._timed_io(registered.physical, duration)
                yield from recovery.run_transfer(
                    self.transfers, replica.domain, to_domain, obj.size)
                return replica
            except Exception as exc:
                if not isinstance(exc, Retryable):
                    raise
                excluded.add(replica.replica_number)
                recovery.note("failover", path=obj.path,
                              replica=replica.physical_name,
                              error=type(exc).__name__)

    def replicate(self, user: User, path: str, to_logical_resource: str,
                  replica_policy: str = "nearest") -> Process:
        """Create an additional replica on ``to_logical_resource``."""
        return self._spawn(self._replicate(
            user, path, to_logical_resource, replica_policy))

    def _replicate(self, user, path, to_logical_resource, replica_policy):
        obj = self.namespace.resolve_object(path)
        obj.acl.require(user, Permission.WRITE, path)
        target = self.resources.logical(to_logical_resource).select_for_write(obj.size)
        if obj.replica_on(target.name) is not None:
            raise ReplicaError(
                f"{path} already has a replica on {target.name}")
        source = self.select_replica(obj, target.domain, replica_policy)
        self._emit(EventKind.REPLICATE, EventPhase.BEFORE, path, user,
                   to_resource=to_logical_resource)
        start = self.env.now
        source_registered = self._registered(source)
        yield from self._timed_io(
            source_registered.physical,
            source_registered.physical.read(source.allocation_id))
        yield from self._wan(source.domain, target.domain, obj.size)
        replica = Replica(obj.guid, to_logical_resource, target.domain,
                          target.name, self.env.now,
                          replica_number=self.namespace.next_replica_number())
        duration = target.physical.write(replica.allocation_id, obj.size)
        yield from self._timed_io(target.physical, duration)
        obj.add_replica(replica)
        self._emit(EventKind.REPLICATE, EventPhase.AFTER, path, user,
                   to_resource=to_logical_resource, domain=target.domain)
        self._record("replicate", user, path, start, size=obj.size,
                     from_domain=source.domain, to_domain=target.domain,
                     physical=target.name)
        return replica

    def migrate(self, user: User, path: str, from_physical: str,
                to_logical_resource: str) -> Process:
        """Move one replica to another resource (ILM's placement change)."""
        return self._spawn(self._migrate(
            user, path, from_physical, to_logical_resource))

    def _migrate(self, user, path, from_physical, to_logical_resource):
        obj = self.namespace.resolve_object(path)
        obj.acl.require(user, Permission.WRITE, path)
        source = obj.replica_on(from_physical)
        if source is None:
            raise ReplicaError(f"{path} has no replica on {from_physical!r}")
        target = self.resources.logical(to_logical_resource).select_for_write(obj.size)
        self._emit(EventKind.MIGRATE, EventPhase.BEFORE, path, user,
                   from_physical=from_physical, to_resource=to_logical_resource)
        start = self.env.now
        source_registered = self._registered(source)
        yield from self._timed_io(
            source_registered.physical,
            source_registered.physical.read(source.allocation_id))
        yield from self._wan(source.domain, target.domain, obj.size)
        replica = Replica(obj.guid, to_logical_resource, target.domain,
                          target.name, self.env.now,
                          replica_number=self.namespace.next_replica_number())
        yield from self._timed_io(
            target.physical,
            target.physical.write(replica.allocation_id, obj.size))
        obj.add_replica(replica)
        yield from self._timed_io(
            source_registered.physical,
            source_registered.physical.delete(source.allocation_id))
        obj.remove_replica(source)
        self._emit(EventKind.MIGRATE, EventPhase.AFTER, path, user,
                   from_physical=from_physical, to_physical=target.name)
        self._record("migrate", user, path, start, size=obj.size,
                     from_physical=from_physical, to_physical=target.name,
                     from_domain=source.domain, to_domain=target.domain)
        return replica

    def remove_replica(self, user: User, path: str, physical_name: str) -> Process:
        """Delete one replica; the last good replica cannot be removed."""
        return self._spawn(self._remove_replica(user, path, physical_name))

    def _remove_replica(self, user, path, physical_name):
        obj = self.namespace.resolve_object(path)
        obj.acl.require(user, Permission.OWN, path)
        replica = obj.replica_on(physical_name)
        if replica is None:
            raise ReplicaError(f"{path} has no replica on {physical_name!r}")
        good = obj.good_replicas()
        if replica in good and len(good) == 1:
            raise ReplicaError(
                f"refusing to remove the last good replica of {path}")
        start = self.env.now
        registered = self._registered(replica)
        yield from self._timed_io(
            registered.physical,
            registered.physical.delete(replica.allocation_id))
        obj.remove_replica(replica)
        self._record("remove_replica", user, path, start,
                     physical=physical_name)

    def delete(self, user: User, path: str) -> Process:
        """Remove a data object and every replica."""
        return self._spawn(self._delete(user, path))

    def _delete(self, user, path):
        obj = self.namespace.resolve_object(path)
        obj.acl.require(user, Permission.OWN, path)
        self._emit(EventKind.DELETE, EventPhase.BEFORE, path, user,
                   size=obj.size)
        start = self.env.now
        for replica in list(obj.replicas):
            registered = self._registered(replica)
            yield from self._timed_io(
                registered.physical,
                registered.physical.delete(replica.allocation_id))
            obj.remove_replica(replica)
        self.namespace.remove(path)
        self._emit(EventKind.DELETE, EventPhase.AFTER, path, user, size=obj.size)
        self._record("delete", user, path, start, size=obj.size)

    def checksum(self, user: User, path: str, algorithm: str = "md5") -> Process:
        """Compute and record the object's checksum (a timed full read).

        Content is simulated, so the digest is a deterministic function of
        the object's identity, version, and size — stable across replicas,
        changed by any overwrite, which is all the data-integrity pipelines
        (§4's UCSD Libraries run) rely on.
        """
        return self._spawn(self._checksum(user, path, algorithm))

    def _checksum(self, user, path, algorithm):
        if algorithm != "md5":
            raise GridError(f"unsupported checksum algorithm {algorithm!r}")
        obj = self.namespace.resolve_object(path)
        obj.acl.require(user, Permission.READ, path)
        replicas = obj.good_replicas()
        if not replicas:
            raise ReplicaError(f"{path} has no good replicas")
        replica = min(replicas, key=lambda r: r.replica_number)
        start = self.env.now
        registered = self._registered(replica)
        yield from self._timed_io(
            registered.physical,
            registered.physical.read(replica.allocation_id))
        digest = hashlib.md5(
            f"{obj.guid}:v{obj.version}:{obj.size:.0f}".encode()).hexdigest()
        obj.checksum = digest
        self._record("checksum", user, path, start, digest=digest,
                     algorithm=algorithm)
        return digest

    def overwrite(self, user: User, path: str, new_size: float) -> Process:
        """Replace an object's contents (version bump; other replicas go stale)."""
        return self._spawn(self._overwrite(user, path, new_size))

    def _overwrite(self, user, path, new_size):
        obj = self.namespace.resolve_object(path)
        obj.acl.require(user, Permission.WRITE, path)
        replicas = obj.good_replicas()
        if not replicas:
            raise ReplicaError(f"{path} has no good replicas")
        primary = min(replicas, key=lambda r: r.replica_number)
        self._emit(EventKind.UPDATE, EventPhase.BEFORE, path, user,
                   new_size=new_size)
        start = self.env.now
        registered = self._registered(primary)
        yield from self._timed_io(
            registered.physical,
            registered.physical.delete(primary.allocation_id))
        obj.size = float(new_size)
        obj.version += 1
        obj.checksum = None
        yield from self._timed_io(
            registered.physical,
            registered.physical.write(primary.allocation_id, new_size))
        for replica in replicas:
            if replica is not primary:
                replica.state = ReplicaState.STALE
        obj.modified_at = self.env.now
        self._emit(EventKind.UPDATE, EventPhase.AFTER, path, user,
                   new_size=new_size, version=obj.version)
        self._record("overwrite", user, path, start, new_size=new_size,
                     version=obj.version)
        return obj

"""A Grid File System (GFS) facade over the datagrid.

§3.1 anticipates "business use cases … once business users start using
datagrids and the Grid File System (GFS)", citing the GGF Grid File
System working group the first author chaired. This module is that
filesystem-shaped veneer: familiar mkdir/listdir/stat/rename/remove and
extended-attribute calls mapped onto the DGMS's logical namespace, so
code written against a file-system mental model runs on the grid without
knowing about replicas, domains, or logical resources.

Timed calls (:meth:`write_file`, :meth:`read_file`, :meth:`remove`) return
simulation processes to yield on, exactly like the DGMS itself; metadata
calls are instant.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import NamespaceError
from repro.grid.dgms import DataGridManagementSystem
from repro.grid.namespace import Collection, DataObject
from repro.grid.users import User

__all__ = ["GridStat", "GridFileSystem"]


@dataclass(frozen=True)
class GridStat:
    """stat()-like record for one namespace entry."""

    path: str
    is_dir: bool
    size: float
    created_at: float
    modified_at: float
    owner: Optional[str]
    replica_count: int
    checksum: Optional[str]


class GridFileSystem:
    """Filesystem-flavoured access to one datagrid, as one user.

    ``default_resource`` is where new files land; ``home_domain`` is where
    reads are delivered (both default to the user's own domain).
    """

    def __init__(self, dgms: DataGridManagementSystem, user: User,
                 default_resource: str,
                 home_domain: Optional[str] = None) -> None:
        self.dgms = dgms
        self.user = user
        self.default_resource = default_resource
        self.home_domain = home_domain or user.domain

    # -- directories ------------------------------------------------------

    def mkdir(self, path: str, parents: bool = False) -> None:
        """Create a directory (collection)."""
        self.dgms.create_collection(self.user, path, parents=parents)

    def listdir(self, path: str) -> List[str]:
        """Child names in a directory, directories first, name-sorted."""
        return [node.name
                for node in self.dgms.list_collection(self.user, path)]

    def rmdir(self, path: str) -> None:
        """Remove an empty directory."""
        node = self.dgms.namespace.resolve_collection(path)
        from repro.grid.acl import Permission
        node.acl.require(self.user, Permission.OWN, path)
        self.dgms.namespace.remove(path)

    # -- files ------------------------------------------------------------

    def write_file(self, path: str, size: float,
                   resource: Optional[str] = None):
        """Create a file of ``size`` bytes (timed; yields on the process)."""
        return self.dgms.put(self.user, path, size,
                             resource or self.default_resource)

    def read_file(self, path: str, to_domain: Optional[str] = None):
        """Read a file's bytes to ``to_domain`` (timed)."""
        return self.dgms.get(self.user, path,
                             to_domain or self.home_domain)

    def remove(self, path: str):
        """Delete a file and all its replicas (timed)."""
        return self.dgms.delete(self.user, path)

    def rename(self, src: str, dst: str) -> None:
        """Rename/move (logical; replicas untouched)."""
        self.dgms.move(self.user, src, dst)

    # -- inspection ------------------------------------------------------------

    def exists(self, path: str) -> bool:
        """True if ``path`` resolves to anything."""
        return self.dgms.namespace.exists(path)

    def isdir(self, path: str) -> bool:
        """True if ``path`` is a directory (collection)."""
        try:
            return isinstance(self.dgms.namespace.resolve(path), Collection)
        except NamespaceError:
            return False

    def isfile(self, path: str) -> bool:
        """True if ``path`` is a file (data object)."""
        try:
            return isinstance(self.dgms.namespace.resolve(path), DataObject)
        except NamespaceError:
            return False

    def stat(self, path: str) -> GridStat:
        """stat() one entry (requires READ)."""
        node = self.dgms.stat(self.user, path)
        if isinstance(node, DataObject):
            return GridStat(
                path=node.path, is_dir=False, size=node.size,
                created_at=node.created_at, modified_at=node.modified_at,
                owner=node.owner.qualified_name if node.owner else None,
                replica_count=len(node.good_replicas()),
                checksum=node.checksum)
        return GridStat(
            path=node.path, is_dir=True, size=0.0,
            created_at=node.created_at, modified_at=node.modified_at,
            owner=node.owner.qualified_name if node.owner else None,
            replica_count=0, checksum=None)

    def glob(self, directory: str, pattern: str,
             recursive: bool = False) -> List[str]:
        """File paths under ``directory`` whose *names* match ``pattern``."""
        if recursive:
            candidates = self.dgms.namespace.iter_objects(directory)
        else:
            candidates = (node for node in
                          self.dgms.list_collection(self.user, directory)
                          if isinstance(node, DataObject))
        from repro.grid.acl import Permission
        return sorted(
            node.path for node in candidates
            if fnmatch.fnmatchcase(node.name, pattern)
            and node.acl.allows(self.user, Permission.READ))

    # -- extended attributes ---------------------------------------------------

    def setxattr(self, path: str, attribute: str, value,
                 unit: Optional[str] = None) -> None:
        """Set an extended attribute (user-defined metadata)."""
        self.dgms.set_metadata(self.user, path, attribute, value, unit)

    def getxattr(self, path: str, attribute: str, default=None):
        """Read an extended attribute (requires READ)."""
        node = self.dgms.stat(self.user, path)
        return node.metadata.get(attribute, default)

    def listxattr(self, path: str) -> List[str]:
        """Names of all extended attributes on an entry."""
        node = self.dgms.stat(self.user, path)
        return sorted(attribute for attribute, _ in node.metadata.items())

"""Namespace events.

"A datagrid trigger is a mapping from any event in the logical data storage
namespace to a process initiated in the datagrid in response to such an
event. … An event could be any change in the datagrid namespace including
updates, inserts, and deletes. Datagrid triggers could be triggered before
or after events complete." (§2.2)

The DGMS publishes a :class:`NamespaceEvent` on this bus *before* and
*after* every mutating operation. Subscribers (the trigger manager, audit
tools) receive events synchronously, in subscription order — deliberately
so: the paper calls out that "different results might be produced based on
the order in which triggers defined by multiple users are processed for the
same event", and the ordering experiments need that behaviour to be real.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = ["EventKind", "EventPhase", "NamespaceEvent", "EventBus"]


class EventKind(enum.Enum):
    """What changed in the namespace."""

    INSERT = "insert"            # new data object ingested
    UPDATE = "update"            # object overwritten / version bumped
    DELETE = "delete"            # object removed
    REPLICATE = "replicate"      # new replica added
    MIGRATE = "migrate"          # replica moved between resources
    METADATA = "metadata"        # user-defined metadata changed
    MOVE = "move"                # logical rename/move
    COLLECTION_CREATE = "collection_create"
    ACL_CHANGE = "acl_change"


class EventPhase(enum.Enum):
    """Whether the event is delivered before or after the operation runs."""

    BEFORE = "before"
    AFTER = "after"


@dataclass(frozen=True)
class NamespaceEvent:
    """One observed change to the logical namespace."""

    kind: EventKind
    phase: EventPhase
    path: str
    time: float
    user: Optional[str] = None           # qualified acting-user name
    detail: Dict[str, object] = field(default_factory=dict)


#: Subscriber callback signature.
Subscriber = Callable[[NamespaceEvent], None]


class EventBus:
    """Synchronous publish/subscribe for namespace events."""

    def __init__(self) -> None:
        self._subscribers: List[Subscriber] = []
        self.published_count = 0

    def subscribe(self, subscriber: Subscriber) -> None:
        """Add a subscriber; it sees every subsequent event."""
        self._subscribers.append(subscriber)

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Remove a subscriber (no error if absent)."""
        try:
            self._subscribers.remove(subscriber)
        except ValueError:
            pass

    def publish(self, event: NamespaceEvent) -> None:
        """Deliver ``event`` to all subscribers, in subscription order.

        Delivery is synchronous and non-transactional: a subscriber that
        raises aborts delivery to later subscribers — exactly the kind of
        anomaly §2.2 flags as an open issue for non-transactional datagrids.
        """
        self.published_count += 1
        for subscriber in list(self._subscribers):
            subscriber(event)

"""Trigger definition documents.

"In databases, the Structured Query Language (SQL or PL/SQL) can describe
the triggers and the DBMS executes associated actions. A similar language
is required for DGMSs to describe triggers with respect to files, the
metadata that are associated with those files, data collections, data
storage resources, etc." (§2.2)

This module is that DDL: a trigger definition round-trips through an XML
document in the same dialect as DGL —

.. code-block:: xml

    <datagridTrigger name="mirror-masters" owner="curator@sdsc"
                     phase="after" pathPattern="/archive/*"
                     priority="5" maxFirings="100">
      <on kind="insert"/>
      <on kind="metadata"/>
      <condition>meta['class'] == 'master'</condition>
      <flow name="mirror"> ... </flow>        <!-- or <operation .../> -->
    </datagridTrigger>

so administrators can install triggers programmatically, store them, and
audit them — the DfMS side of the paper's "datagrid stored procedures"
analogy applied to ECA rules.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional

from repro.errors import DGLParseError
from repro.dgl.model import Flow, Operation
from repro.dgl.xml_io import (
    _flow_element,
    _operation_element,
    _parse_flow,
    _parse_operation,
    _require,
)
from repro.grid.events import EventKind, EventPhase
from repro.grid.users import UserRegistry
from repro.triggers.trigger import DatagridTrigger

__all__ = ["trigger_to_xml", "trigger_from_xml"]


def trigger_to_xml(trigger: DatagridTrigger) -> str:
    """Serialize one trigger definition."""
    root = ET.Element("datagridTrigger", name=trigger.name,
                      owner=trigger.owner.qualified_name,
                      phase=trigger.phase.value,
                      pathPattern=trigger.path_pattern,
                      priority=str(trigger.priority),
                      enabled="true" if trigger.enabled else "false")
    if trigger.max_firings is not None:
        root.set("maxFirings", str(trigger.max_firings))
    for kind in sorted(trigger.kinds, key=lambda k: k.value):
        ET.SubElement(root, "on", kind=kind.value)
    condition = ET.SubElement(root, "condition")
    condition.text = trigger.condition
    if isinstance(trigger.action, Flow):
        root.append(_flow_element(trigger.action))
    else:
        root.append(_operation_element(trigger.action))
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def trigger_from_xml(text: str, users: UserRegistry) -> DatagridTrigger:
    """Parse a trigger definition, resolving the owner against ``users``."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise DGLParseError(f"malformed trigger XML: {exc}") from None
    if root.tag != "datagridTrigger":
        raise DGLParseError(f"expected <datagridTrigger>, got <{root.tag}>")
    kinds = frozenset(EventKind(_require(on, "kind"))
                      for on in root.findall("on"))
    condition_el = root.find("condition")
    condition = (condition_el.text or "true") if condition_el is not None \
        else "true"
    flow_el = root.find("flow")
    operation_el = root.find("operation")
    if (flow_el is None) == (operation_el is None):
        raise DGLParseError(
            "trigger needs exactly one of <flow> or <operation>")
    action = (_parse_flow(flow_el) if flow_el is not None
              else _parse_operation(operation_el))
    max_firings_text: Optional[str] = root.get("maxFirings")
    return DatagridTrigger(
        name=_require(root, "name"),
        owner=users.get(_require(root, "owner")),
        kinds=kinds,
        action=action,
        phase=EventPhase(root.get("phase", "after")),
        path_pattern=root.get("pathPattern", "*"),
        condition=condition,
        priority=int(root.get("priority", "0")),
        enabled=root.get("enabled", "true") == "true",
        max_firings=(int(max_firings_text)
                     if max_firings_text is not None else None))

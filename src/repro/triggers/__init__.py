"""Datagrid triggers: ECA rules over the logical namespace (§2.2)."""

from repro.triggers.manager import (
    ORDERING_STRATEGIES,
    TriggerFiring,
    TriggerManager,
)
from repro.triggers.trigger import DatagridTrigger
from repro.triggers.xml_io import trigger_from_xml, trigger_to_xml

__all__ = ["DatagridTrigger", "TriggerManager", "TriggerFiring",
           "ORDERING_STRATEGIES", "trigger_to_xml", "trigger_from_xml"]

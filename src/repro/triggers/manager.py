"""The trigger manager: registration, ordering, firing.

"DGMSs will allow multiple users to define triggers. Different results
might be produced based on the order in which triggers defined by multiple
users are processed for the same event. Further complicating the situation
is the non-transactional nature of datagrid processes." (§2.2)

The manager subscribes to the DGMS event bus and, per event, evaluates the
matching triggers under a configurable *ordering strategy* — registration
order, priority, or owner name. Actions are submitted to a DfMS server as
asynchronous DGL requests by the trigger's owner; they run as ordinary
flows after the delivering operation proceeds, which is exactly the
non-transactional semantics the paper describes (and experiment E11
measures the resulting order-dependence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import ExpressionError, TriggerError
from repro.dfms.server import DfMSServer
from repro.dgl.expressions import evaluate_condition
from repro.dgl.model import DataGridRequest
from repro.grid.dgms import DataGridManagementSystem
from repro.grid.events import NamespaceEvent
from repro.triggers.trigger import DatagridTrigger

__all__ = ["TriggerFiring", "TriggerManager", "ORDERING_STRATEGIES"]

ORDERING_STRATEGIES = ("registration", "priority", "owner")


@dataclass(frozen=True)
class TriggerFiring:
    """One trigger activation (or condition rejection)."""

    trigger_name: str
    event_path: str
    event_kind: str
    time: float
    condition_met: bool
    request_id: Optional[str] = None   # the submitted action's request


class TriggerManager:
    """Routes namespace events to registered triggers."""

    def __init__(self, dgms: DataGridManagementSystem,
                 server: Optional[DfMSServer] = None,
                 ordering: str = "registration") -> None:
        if ordering not in ORDERING_STRATEGIES:
            raise TriggerError(
                f"unknown ordering {ordering!r} "
                f"(choose from {ORDERING_STRATEGIES})")
        self.dgms = dgms
        self.server = server
        self.ordering = ordering
        self._triggers: Dict[str, DatagridTrigger] = {}
        self._registration_order: List[str] = []
        self.firing_log: List[TriggerFiring] = []
        self.events_seen = 0
        #: Observers of trigger activity (same idiom as ``FlowEngine.
        #: listeners``); each is called as
        #: listener(kind, trigger_name, time, detail_dict).
        self.listeners: List[Callable] = []
        dgms.events.subscribe(self._on_event)

    # -- notifications -------------------------------------------------------

    def _notify(self, kind: str, trigger_name: str, **detail) -> None:
        for listener in self.listeners:
            listener(kind, trigger_name, self.dgms.env.now, detail)
        t = self.dgms.env.telemetry
        if t is not None:
            t.log.emit(f"trigger.{kind}", trigger=trigger_name, **detail)

    # -- registration ------------------------------------------------------

    def register(self, trigger: DatagridTrigger) -> None:
        """Register a trigger (names are unique grid-wide)."""
        if trigger.name in self._triggers:
            raise TriggerError(f"trigger {trigger.name!r} already registered")
        self._triggers[trigger.name] = trigger
        self._registration_order.append(trigger.name)

    def unregister(self, name: str) -> None:
        """Remove a trigger by name (raises if unknown)."""
        if name not in self._triggers:
            raise TriggerError(f"no trigger named {name!r}")
        del self._triggers[name]
        self._registration_order.remove(name)

    def triggers(self) -> List[DatagridTrigger]:
        """Registered triggers, in registration order."""
        return [self._triggers[name] for name in self._registration_order]

    def __len__(self) -> int:
        return len(self._triggers)

    # -- ordering ------------------------------------------------------------

    def _ordered_matches(self, event: NamespaceEvent) -> List[DatagridTrigger]:
        matches = [t for t in self.triggers() if t.matches_event(event)]
        if self.ordering == "priority":
            matches.sort(key=lambda t: (-t.priority, t.name))
        elif self.ordering == "owner":
            matches.sort(key=lambda t: (t.owner.qualified_name, t.name))
        # "registration": keep the registration order as collected.
        return matches

    # -- delivery ------------------------------------------------------------

    def _condition_scope(self, event: NamespaceEvent) -> dict:
        scope = {
            "path": event.path,
            "kind": event.kind.value,
            "phase": event.phase.value,
            "user": event.user or "",
            "time": event.time,
        }
        scope.update(event.detail)
        # One catalog-backed walk instead of a separate exists + resolve.
        node = self.dgms.namespace.try_resolve(event.path)
        scope["meta"] = {} if node is None else node.metadata.as_dict()
        return scope

    def _on_event(self, event: NamespaceEvent) -> None:
        self.events_seen += 1
        t = self.dgms.env.telemetry
        if t is not None:
            t.trigger_events.inc()
        matches = self._ordered_matches(event)
        if not matches:
            return
        if t is not None and len(matches) > 1:
            # More than one trigger on the same event: the §2.2
            # order-dependence hazard the ordering strategy arbitrates.
            t.trigger_conflicts.inc()
        scope = self._condition_scope(event)
        for trigger in matches:
            try:
                met = bool(evaluate_condition(trigger.condition, scope))
            except ExpressionError:
                met = False   # a broken condition never fires (documented)
            if t is not None:
                t.trigger_evals.inc()
            request_id = None
            if met:
                trigger.firings += 1
                if t is not None:
                    t.trigger_firings.labels(trigger=trigger.name).inc()
                if self.server is not None:
                    response = self.server.submit(DataGridRequest(
                        user=trigger.owner.qualified_name,
                        virtual_organization="triggers",
                        body=trigger.action_flow(event),
                        asynchronous=True))
                    request_id = response.request_id
            self.firing_log.append(TriggerFiring(
                trigger_name=trigger.name, event_path=event.path,
                event_kind=event.kind.value, time=event.time,
                condition_met=met, request_id=request_id))
            self._notify("fired" if met else "rejected", trigger.name,
                         event_path=event.path,
                         event_kind=event.kind.value,
                         request_id=request_id)

    # -- introspection ------------------------------------------------------

    def firings_for(self, trigger_name: str) -> List[TriggerFiring]:
        """Condition-met firings of one trigger, in event order."""
        return [firing for firing in self.firing_log
                if firing.trigger_name == trigger_name and
                firing.condition_met]

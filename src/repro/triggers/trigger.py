"""Datagrid trigger definitions.

"A datagrid trigger is a mapping from any event in the logical data storage
namespace to a process initiated in the datagrid in response to such an
event" (§2.2), with the three classic ECA components:

* **Event** — which namespace changes (and which phase, before/after) the
  trigger listens to, narrowed by a path glob;
* **Condition** — a DGL expression over the event's fields and the target
  object's metadata;
* **Action** — the process to initiate: a full DGL :class:`Flow` or a
  single :class:`Operation`, executed through a DfMS server as the
  trigger's owner. Event fields are exposed to the action as DGL variables
  (``event_path``, ``event_kind``, ``event_user``).
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Union

from repro.errors import TriggerError
from repro.dgl.model import Flow, Operation, Step, Variable
from repro.grid.events import EventKind, EventPhase, NamespaceEvent
from repro.grid.users import User

__all__ = ["DatagridTrigger"]


@dataclass
class DatagridTrigger:
    """One registered ECA rule over the namespace."""

    name: str
    owner: User
    kinds: FrozenSet[EventKind]
    action: Union[Flow, Operation]
    phase: EventPhase = EventPhase.AFTER
    path_pattern: str = "*"
    condition: str = "true"
    priority: int = 0
    enabled: bool = True
    #: Stop firing after this many activations (None = unlimited) — the
    #: cascade safety valve for triggers whose actions cause new events.
    max_firings: Optional[int] = None
    firings: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise TriggerError("trigger name cannot be empty")
        if not self.kinds:
            raise TriggerError(f"trigger {self.name!r} listens to no events")
        if not isinstance(self.action, (Flow, Operation)):
            raise TriggerError(
                f"trigger {self.name!r} action must be a Flow or Operation")

    # -- matching ------------------------------------------------------------

    def matches_event(self, event: NamespaceEvent) -> bool:
        """Structural match: kind, phase, and path pattern (not condition)."""
        if not self.enabled:
            return False
        if self.max_firings is not None and self.firings >= self.max_firings:
            return False
        if event.kind not in self.kinds:
            return False
        if event.phase is not self.phase:
            return False
        return fnmatch.fnmatchcase(event.path, self.path_pattern)

    # -- action packaging --------------------------------------------------------

    def action_flow(self, event: NamespaceEvent) -> Flow:
        """Wrap the action as a flow with the event bound as variables."""
        variables = [
            Variable("event_path", event.path),
            Variable("event_kind", event.kind.value),
            Variable("event_phase", event.phase.value),
            Variable("event_user", event.user or ""),
        ]
        if isinstance(self.action, Flow):
            children = [self.action]
        else:
            children = [Step(name="action", operation=self.action)]
        return Flow(name=f"trigger:{self.name}", variables=variables,
                    children=children)

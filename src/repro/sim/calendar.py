"""Virtual calendar arithmetic for execution windows.

The paper's ILM scenarios restrict long-run processes to "non-working hours
or weekends" (§2.1). This module maps virtual seconds onto a simple civil
calendar (the epoch, time 0.0, is Monday 00:00) and provides
:class:`ExecutionWindow` — a weekly-recurring set of allowed intervals — with
the two queries the DfMS needs: *is this instant allowed?* and *when does the
next allowed interval start / the current one end?*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.errors import SimError

__all__ = [
    "SECONDS_PER_HOUR", "SECONDS_PER_DAY", "SECONDS_PER_WEEK",
    "day_of_week", "hour_of_day", "ExecutionWindow",
]

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 24 * SECONDS_PER_HOUR
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY

#: Day indices (epoch = Monday 00:00).
MONDAY, TUESDAY, WEDNESDAY, THURSDAY, FRIDAY, SATURDAY, SUNDAY = range(7)


def day_of_week(time: float) -> int:
    """Day index (0 = Monday … 6 = Sunday) at virtual ``time`` seconds."""
    return int((time % SECONDS_PER_WEEK) // SECONDS_PER_DAY)


def hour_of_day(time: float) -> float:
    """Fractional hour of the day at virtual ``time`` seconds."""
    return (time % SECONDS_PER_DAY) / SECONDS_PER_HOUR


@dataclass(frozen=True)
class _Interval:
    """Closed-open interval [start, end) in seconds within the week."""
    start: float
    end: float


class ExecutionWindow:
    """A weekly-recurring set of time intervals when work is allowed.

    Intervals are given as ``(day, start_hour, end_hour)`` triples; an
    ``end_hour`` of 24 means midnight at the end of that day. Intervals on
    consecutive specifications may abut to form longer windows (for example
    a whole weekend).

    >>> nights = ExecutionWindow.nightly(start_hour=20, end_hour=6)
    >>> nights.contains(2 * 3600.0)   # Monday 02:00
    True
    """

    def __init__(self, intervals: Iterable[Tuple[int, float, float]]) -> None:
        spans: List[_Interval] = []
        for day, start_hour, end_hour in intervals:
            if not 0 <= day <= 6:
                raise SimError(f"day must be 0..6, got {day}")
            if not (0 <= start_hour < end_hour <= 24):
                raise SimError(
                    f"need 0 <= start < end <= 24, got {start_hour}..{end_hour}")
            spans.append(_Interval(
                day * SECONDS_PER_DAY + start_hour * SECONDS_PER_HOUR,
                day * SECONDS_PER_DAY + end_hour * SECONDS_PER_HOUR))
        if not spans:
            raise SimError("an execution window needs at least one interval")
        spans.sort(key=lambda s: s.start)
        # Merge abutting/overlapping spans.
        merged: List[_Interval] = [spans[0]]
        for span in spans[1:]:
            last = merged[-1]
            if span.start <= last.end:
                merged[-1] = _Interval(last.start, max(last.end, span.end))
            else:
                merged.append(span)
        # Merge wrap-around (Sunday night into Monday morning).
        if len(merged) > 1 and merged[0].start == 0.0 and merged[-1].end == SECONDS_PER_WEEK:
            merged[0] = _Interval(merged[-1].start - SECONDS_PER_WEEK, merged[0].end)
            merged.pop()
        self._spans: Sequence[_Interval] = tuple(merged)

    # -- constructors -------------------------------------------------------

    @classmethod
    def always(cls) -> "ExecutionWindow":
        """A window that is always open."""
        return cls([(d, 0, 24) for d in range(7)])

    @classmethod
    def weekends(cls) -> "ExecutionWindow":
        """Saturday 00:00 through Sunday 24:00."""
        return cls([(SATURDAY, 0, 24), (SUNDAY, 0, 24)])

    @classmethod
    def nightly(cls, start_hour: float = 20, end_hour: float = 6) -> "ExecutionWindow":
        """Every night from ``start_hour`` to ``end_hour`` the next morning."""
        intervals: List[Tuple[int, float, float]] = []
        for day in range(7):
            intervals.append((day, start_hour, 24))
            intervals.append((day, 0, end_hour))
        return cls(intervals)

    @classmethod
    def non_working_hours(cls) -> "ExecutionWindow":
        """Weeknights (18:00–08:00) plus the whole weekend — §2.1's policy."""
        intervals: List[Tuple[int, float, float]] = [
            (SATURDAY, 0, 24), (SUNDAY, 0, 24)]
        for day in (MONDAY, TUESDAY, WEDNESDAY, THURSDAY, FRIDAY):
            intervals.append((day, 18, 24))
            intervals.append((day, 0, 8))
        return cls(intervals)

    # -- queries ------------------------------------------------------------

    def contains(self, time: float) -> bool:
        """True if virtual ``time`` falls inside the window."""
        week_time = time % SECONDS_PER_WEEK
        for span in self._spans:
            if span.start <= week_time < span.end:
                return True
            # A wrap-around span has negative start; test its tail too.
            if span.start < 0 and week_time - SECONDS_PER_WEEK >= span.start:
                return True
        return False

    def next_open(self, time: float) -> float:
        """Earliest instant >= ``time`` inside the window (maybe ``time``)."""
        if self.contains(time):
            return time
        week_start = time - time % SECONDS_PER_WEEK
        week_time = time % SECONDS_PER_WEEK
        candidates = []
        for span in self._spans:
            start = span.start % SECONDS_PER_WEEK
            if start >= week_time:
                candidates.append(week_start + start)
            else:
                candidates.append(week_start + start + SECONDS_PER_WEEK)
        return min(candidates)

    def current_close(self, time: float) -> float:
        """End of the window interval containing ``time``.

        Raises :class:`SimError` if ``time`` is outside the window.
        """
        week_time = time % SECONDS_PER_WEEK
        week_start = time - week_time
        for span in self._spans:
            if span.start <= week_time < span.end:
                end = span.end
                # Chain into a wrap-around span that starts where this ends.
                if end == SECONDS_PER_WEEK and self._spans[0].start < 0:
                    end = SECONDS_PER_WEEK + self._spans[0].end
                return week_start + end
            if span.start < 0 and week_time - SECONDS_PER_WEEK >= span.start:
                # ``time`` sits in the wrap span's *tail* (late Sunday);
                # its close is early next week, not this week's copy.
                return week_start + SECONDS_PER_WEEK + span.end
        raise SimError(f"time {time} is not inside the window")

    def open_seconds_between(self, start: float, end: float) -> float:
        """Total seconds of open window in [start, end)."""
        if end < start:
            raise SimError("end before start")
        total = 0.0
        t = start
        while t < end:
            if self.contains(t):
                boundary = min(self.current_close(t), end)
            else:
                boundary = min(self.next_open(t), end)
            if boundary <= t:
                # Defensive: any non-advancing boundary is a window-
                # arithmetic bug; fail loudly instead of looping forever.
                raise SimError(
                    f"window boundary did not advance at t={t}")
            if self.contains(t):
                total += boundary - t
            t = boundary
        return total

"""Seeded, named random-number streams.

Every stochastic component (storage failure injection, workload generators,
scheduler tie-breaking) draws from its own named substream so that changing
how much randomness one component consumes never perturbs another — the key
property for reproducible experiments.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RandomStreams"]


class RandomStreams:
    """A family of independent :class:`random.Random` streams under one seed.

    >>> streams = RandomStreams(seed=42)
    >>> a = streams.stream("storage")
    >>> b = streams.stream("workload")
    >>> a is streams.stream("storage")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            # dgf: noqa[DGF002]: this IS the sanctioned construction site — every stream is seeded from the family seed + name digest
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def spawn(self, name: str) -> "RandomStreams":
        """Return a child family whose streams are independent of this one."""
        digest = hashlib.sha256(f"{self.seed}:spawn:{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))

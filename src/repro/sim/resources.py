"""Capacity-limited resources for the simulation kernel.

:class:`Resource` models a pool of identical slots (for example CPU slots on
a compute resource, or tape drives on an archival system). Processes request
a slot, hold it while doing timed work, and release it; excess requests queue
FIFO.

Usage from inside a process generator::

    req = resource.request()
    yield req
    try:
        yield env.timeout(duration)
    finally:
        resource.release(req)

or with the context-manager-style helper::

    with resource.request() as req:
        yield req
        yield env.timeout(duration)
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.errors import SimError
from repro.sim.kernel import Environment, Event

__all__ = ["Resource", "Request"]


class Request(Event):
    """A pending or granted claim on one slot of a :class:`Resource`."""

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a request that has not been granted yet."""
        self.resource._cancel(self)


class Resource:
    """A pool of ``capacity`` identical slots with a FIFO wait queue."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: List[Request] = []
        self._waiting: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        """Claim a slot. The returned event triggers when the slot is granted."""
        req = Request(self)
        if len(self._users) < self.capacity:
            self._users.append(req)
            req.succeed()
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot, waking the next waiter (if any).

        Releasing a request that was never granted (or already released) is a
        no-op, so ``with resource.request()`` blocks stay exception-safe.
        """
        try:
            self._users.remove(request)
        except ValueError:
            self._cancel(request)
            return
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.append(nxt)
            nxt.succeed()

    def _cancel(self, request: Request) -> None:
        try:
            self._waiting.remove(request)
        except ValueError:
            pass

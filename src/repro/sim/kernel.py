"""Discrete-event simulation kernel.

Everything "long-run" in this reproduction (ILM jobs spanning weekends,
multi-day archival schedules, years of provenance history) executes in
*virtual time* over this kernel, so experiments are deterministic and run in
milliseconds of wall time.

The design is a compact generator-based process simulator:

* :class:`Environment` owns the virtual clock and the event queues.
* :class:`Event` is a one-shot occurrence; callbacks run when it triggers.
* :class:`Process` wraps a generator. The generator *yields* events (for
  example :meth:`Environment.timeout`) and is resumed when they trigger.
  A process is itself an event that triggers when the generator returns.
* :class:`Condition` (via :meth:`Environment.all_of` / :meth:`any_of`)
  composes events.

Processes may be interrupted (:meth:`Process.interrupt`), which raises
:class:`repro.errors.Interrupt` inside the generator; this is how the DfMS
implements stop/pause of long-run flows.

Dispatch structure
------------------

The kernel is the floor under every benchmark in the repository, so the
hot path is organized around *batch-draining one timestamp at a time*
through three scheduling lanes (see ``docs/simulation-model.md``):

* ``_queue`` — a heap of *future* events ``(time, priority, eid, event)``;
* ``_current`` — a FIFO of events scheduled at exactly the current
  timestamp (``delay == 0`` cascades: process starts, ``succeed()``
  wake-ups, completions). These never pay heap cost: within a timestamp
  every heap entry predates every ``_current`` entry, so FIFO order *is*
  ``eid`` order;
* ``_urgent`` — a FIFO of priority-0 events (interrupts), drained before
  anything else at the current timestamp.

Observable event ordering is identical to a single heap ordered by
``(time, priority, eid)`` — ``benchmarks/test_e22_kernel.py`` checks this
against the frozen pre-batching kernel — but a same-time cascade costs
two deque operations instead of two ``O(log n)`` heap operations, and the
stale-entry sweep runs once per timestamp instead of twice per event.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.errors import Interrupt, SimError, SimStopped

__all__ = ["Environment", "Event", "Timeout", "Process", "Condition"]

#: Sentinel for "event has not yet been given a value".
_PENDING = object()


class Event:
    """A one-shot occurrence in virtual time.

    An event starts *pending*, is *triggered* exactly once with either a value
    (:meth:`succeed`) or an exception (:meth:`fail`), and then invokes its
    callbacks in registration order when the environment processes it.

    Events (and their kernel subclasses) are allocated millions of times in
    the scale benchmarks, so they declare ``__slots__``; ``defused`` is a
    slot too, assigned lazily on failure paths and read with ``getattr``.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    #: Only :class:`Timeout` can leave superseded entries in the heap
    #: (cancel/reschedule), so the dispatch loop checks ``_when`` only on
    #: classes that flip this class attribute — every other event skips
    #: the staleness test entirely.
    _maybe_stale = False

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled for processing."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only meaningful once triggered."""
        if self._ok is None:
            raise SimError("event value is not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is _PENDING:
            raise SimError("event value is not yet available")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        # Inlined Environment._schedule for the (delay=0, priority=1) case:
        # a succeed is always a current-timestamp, normal-priority schedule,
        # and this is the single hottest call site in the repository.
        env = self.env
        env._eid += 1
        env._current.append(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception propagates into any process waiting on this event.
        """
        if not isinstance(exception, BaseException):
            raise SimError(f"fail() needs an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise SimError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        #: set by waiters to acknowledge the failure was handled
        self.defused = False
        # Inlined _schedule, same (delay=0, priority=1) case as succeed().
        env = self.env
        env._eid += 1
        env._current.append(self)
        return self

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` units of virtual time in the future.

    A timeout can be :meth:`cancel`\\ led or :meth:`reschedule`\\ d while it
    is still pending. Both are lazy: the superseded heap entry stays in the
    queue but is recognized as stale (its scheduled time no longer matches
    :attr:`when`) and discarded without running callbacks or advancing the
    clock. This is what lets a service keep one persistent timer and move
    it around instead of spawning a throwaway process per change.

    Only cancel or reschedule timeouts that no process is waiting on: a
    process suspended on a cancelled timeout is never resumed.
    """

    __slots__ = ("delay", "_when")

    _maybe_stale = True

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        self._when = env._now + delay
        env._schedule(self, delay=delay)

    @property
    def when(self) -> Optional[float]:
        """Virtual time this timeout fires at, or ``None`` once cancelled."""
        return self._when

    @property
    def cancelled(self) -> bool:
        return self._when is None

    def cancel(self) -> None:
        """Prevent the timeout from firing; its heap entry dies lazily.

        Cancelling an already-cancelled timeout is a no-op (the timeout
        simply stays cancelled); cancelling a *processed* timeout is an
        error. A cancelled timeout is not dead for good — see
        :meth:`reschedule`, which may revive it.
        """
        if self.processed:
            raise SimError("cannot cancel an already-processed timeout")
        self._when = None

    def reschedule(self, delay: float) -> None:
        """Move a pending timeout to ``delay`` seconds from now.

        **Contract:** rescheduling a *cancelled* timeout is legal and
        revives it — the timeout becomes pending again and fires ``delay``
        seconds from the current time. Cancel-then-reschedule is exactly
        how a service parks and later re-arms one persistent timer (the
        network engine's finish timer does this), so revival is part of
        the contract rather than an accident. The sequence
        ``reschedule()`` then :meth:`cancel` leaves the timeout cancelled:
        the *last* call wins. Only a timeout whose callbacks have already
        run (``processed``) is truly final; both methods reject it.
        """
        if self.processed:
            raise SimError("cannot reschedule an already-processed timeout")
        if delay < 0:
            raise SimError(f"negative timeout delay: {delay!r}")
        self.delay = delay
        self._when = self.env._now + delay
        self.env._schedule(self, delay=delay)


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self)


class Process(Event):
    """A running coroutine over the simulation.

    Wraps a generator that yields :class:`Event` instances. The process is
    itself an event: it triggers with the generator's return value, or fails
    with the exception that escaped the generator.
    """

    __slots__ = ("_generator", "_target", "_spawned_at", "_tspan")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "throw"):
            raise SimError(f"process target must be a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._spawned_at = env._now
        #: Telemetry span context this process runs under. Spawners copy
        #: their own span (or their own _tspan) here so work started in
        #: the child — transfers, nested spawns — parents correctly. Dies
        #: with the process, so no cleanup and no id()-reuse hazard.
        self._tspan = None
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at the current time.

        Interrupting a dead process is an error; interrupting a process from
        itself is not allowed. The interrupt event is scheduled at priority
        0, so it runs before every same-time priority-1 event — the kernel
        keeps these on a dedicated urgent FIFO rather than the heap.
        """
        if not self.is_alive:
            raise SimError("cannot interrupt a finished process")
        if self is self.env.active_process:
            raise SimError("a process cannot interrupt itself")
        # Unsubscribe from the event we were waiting on, so the process is
        # not resumed a second time when that event eventually triggers.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event.defused = True
        event.callbacks.append(self._resume)
        self.env._schedule(event, priority=0)

    def _finalize(self, ok: bool, value: Any) -> None:
        """Record the generator's outcome and schedule the completion event.

        One shared exit path for every way a process can end (return,
        escape exception, non-event yield): sets the outcome, schedules
        this process-as-event, and stashes the lifetime sample when a
        telemetry session is attached — via the environment's hoisted
        ``_lifetimes`` list, so a detached run pays a single attribute
        load here and nothing per event anywhere else.
        """
        self._ok = ok
        self._value = value
        if not ok:
            self.defused = False
        env = self.env
        # Inlined _schedule (delay=0, priority=1): completions always fire
        # on the current timestamp at normal priority.
        env._eid += 1
        env._current.append(self)
        lifetimes = env._lifetimes
        if lifetimes is not None:
            now = env._now
            lifetimes.append((now, now - self._spawned_at))

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        env = self.env
        env._active_process = self
        generator = self._generator
        while True:
            try:
                if event is None or event._ok:
                    target = generator.send(
                        None if event is None else event._value)
                else:
                    # Mark the failure as handled; we re-raise it inside
                    # the generator, which may catch it.
                    event.defused = True
                    target = generator.throw(event._value)
            except StopIteration as stop:
                self._finalize(True, stop.value)
                break
            except BaseException as exc:
                self._finalize(False, exc)
                break

            if isinstance(target, Event):
                callbacks = target.callbacks
                if callbacks is not None:
                    # Target not yet processed: subscribe and suspend.
                    callbacks.append(self._resume)
                    self._target = target
                    break
                # Target already processed: continue immediately.
                event = target
                continue

            exc = SimError(f"process yielded a non-event: {target!r}")
            try:
                generator.throw(exc)
            except StopIteration as stop:
                self._finalize(True, stop.value)
            except BaseException as exc2:
                self._finalize(False, exc2)
            break

        env._active_process = None


class Condition(Event):
    """Composite event: triggers when ``evaluate`` says enough children did.

    Use :meth:`Environment.all_of` / :meth:`Environment.any_of` rather than
    constructing directly. The value is a dict mapping each *triggered* child
    event to its value, in trigger order.

    For the two shipped evaluators (:func:`_all_events` / :func:`_any_event`)
    the per-child bookkeeping is a plain countdown against a precomputed
    target — no evaluator call, no ``len()``, and no final dict copy (once
    triggered, ``_check`` never touches ``_results`` again, so handing out
    the accumulating dict itself is safe). A custom evaluator still gets the
    generic call-per-child path and a defensive copy.
    """

    __slots__ = ("_events", "_evaluate", "_needed", "_done", "_results")

    def __init__(self, env: "Environment", events: Iterable[Event],
                 evaluate: Callable[[int, int], bool]) -> None:
        super().__init__(env)
        events = list(events)
        self._events = events
        self._evaluate = evaluate
        self._done = 0
        self._results: dict = {}
        if evaluate is _all_events:
            self._needed: Optional[int] = len(events)
        elif evaluate is _any_event:
            self._needed = 1
        else:
            self._needed = None
        for event in events:
            if event.env is not env:
                raise SimError("condition mixes events from different environments")
        if not events:
            self.succeed({})
            return
        for event in events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self._value is not _PENDING:
            # The condition already resolved without this child (e.g. an
            # any_of raced it). Nobody will ever inspect the child's
            # outcome now, so a late failure must be marked handled here —
            # otherwise an unrelated later step() re-raises it as an
            # un-waited failure.
            if not event._ok:
                event.defused = True
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._results[event] = event._value
        done = self._done + 1
        self._done = done
        needed = self._needed
        if needed is not None:
            if done >= needed:
                self.succeed(self._results)
        elif self._evaluate(len(self._events), done):
            self.succeed(dict(self._results))


def _all_events(total: int, done: int) -> bool:
    return done == total


def _any_event(total: int, done: int) -> bool:
    return done >= 1


class Environment:
    """The simulation environment: virtual clock plus event queues.

    Parameters
    ----------
    initial_time:
        Starting value of the virtual clock, in seconds.
    """

    # Slots for the same reason events have them: ``_eid``, ``_current``
    # and ``_now`` are read/written once per scheduled event, and slot
    # access skips the instance-dict lookup on every one of those.
    __slots__ = ("_now", "_queue", "_current", "_urgent", "_eid",
                 "_active_process", "_telemetry", "_lifetimes",
                 "_sanitizer", "__weakref__")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        #: Future events: a heap of ``(time, priority, eid, event)``.
        self._queue: List[Tuple[float, int, int, Event]] = []
        #: Priority-1 events scheduled at exactly the current timestamp
        #: (``delay == 0`` cascades). FIFO order equals eid order because
        #: within one timestamp every heap entry predates every entry
        #: here — see ``_step_batch``.
        self._current: deque = deque()
        #: Priority-0 events (interrupts) at the current timestamp; always
        #: drained before ``_current`` and same-time heap entries.
        self._urgent: deque = deque()
        self._eid = 0
        self._active_process: Optional[Process] = None
        self._telemetry = None
        #: Hoisted fast-path alias: the attached session's raw process
        #: lifetime sample list, or None when detached. ``Process._finalize``
        #: reads only this, so a telemetry-off run never touches the
        #: session object on the hot path.
        self._lifetimes: Optional[list] = None
        #: Attached schedule sanitizer (duck-typed — the kernel imports
        #: nothing from repro.analysis). While set, run()/step() dispatch
        #: through ``_step_batch_sanitized``; the check happens once per
        #: run()/step() call, so detached runs pay nothing per event.
        self._sanitizer = None

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time, in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def telemetry(self):
        """Attached :class:`~repro.telemetry.core.Telemetry` session, or
        None (the default). The kernel and every subsystem holding this
        environment guard their instrumentation on this attribute."""
        return self._telemetry

    @telemetry.setter
    def telemetry(self, session) -> None:
        self._telemetry = session
        # Hoist the per-event "is telemetry attached" decision to attach
        # time: the kernel's only instrumentation point (process lifetime
        # samples in Process._finalize) goes through this alias.
        self._lifetimes = (None if session is None
                           else session.sim_process_lifetimes)

    # -- event construction -------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event triggering ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> Condition:
        """Event that triggers when *all* of ``events`` have succeeded."""
        return Condition(self, events, _all_events)

    def any_of(self, events: Iterable[Event]) -> Condition:
        """Event that triggers when *any* of ``events`` has succeeded."""
        return Condition(self, events, _any_event)

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        # Deliberately no telemetry here: this is the hottest line in the
        # repository. Telemetry.collect derives scheduled/fired counts
        # from _eid and the lane lengths instead.
        #
        # Three lanes. Future events go to the heap; a delay-0 event (or a
        # delay so small that now + delay == now in float arithmetic — it
        # must not jump ahead of earlier same-time heap entries) lands on
        # the current-timestamp FIFO; priority-0 interrupts land on the
        # urgent FIFO. The eid counter still advances for every lane so
        # heap ordering and telemetry's push count stay exact.
        eid = self._eid
        self._eid = eid + 1
        if delay:
            time = self._now + delay
            if time > self._now:
                heappush(self._queue, (time, priority, eid, event))
                return
        if priority:
            self._current.append(event)
        else:
            self._urgent.append(event)

    def _skip_stale(self) -> None:
        """Drop stale heap entries (cancelled/rescheduled timeouts) from the
        head of the queue without running callbacks or advancing the clock."""
        queue = self._queue
        while queue:
            head = queue[0]
            event = head[3]
            if event.callbacks is None or (
                    event._maybe_stale and event._when != head[0]):  # dgf: noqa[DGF004]: intentional exact identity — a rescheduled timeout's _when either is this entry's float bit-for-bit or the entry is stale
                # Already processed (a reschedule duplicate), or a timeout
                # whose valid fire time moved away from this entry.
                heappop(queue)
            else:
                return

    def _step_batch(self) -> bool:
        """Process every live event at the next timestamp; False if none.

        This is the kernel hot loop. One stale sweep and one clock write
        per timestamp, then a drain that interleaves the three lanes in
        exact ``(time, priority, eid)`` order: urgent first (priority 0),
        then same-time heap entries (older eids — they all predate this
        timestamp), then the current-timestamp FIFO, which also absorbs
        everything callbacks schedule at the running timestamp so a
        same-time cascade completes within its batch.
        """
        urgent = self._urgent
        current = self._current
        queue = self._queue
        if not urgent and not current:
            self._skip_stale()
            if not queue:
                return False
            self._now = queue[0][0]
        now = self._now
        pop_urgent = urgent.popleft
        pop_current = current.popleft
        # Phase 1: drain the urgent FIFO and the heap's same-time entries.
        # Heap entries at ``now`` all predate this batch (older eids than
        # anything in ``current``), and no *new* heap entry can land at
        # ``now`` while the batch runs — _schedule routes every same-time
        # schedule to a FIFO — so once the heap head moves past ``now``
        # phase 2 never has to peek at the heap again.
        while True:
            if urgent:
                event = pop_urgent()
            elif queue and queue[0][0] == now:  # dgf: noqa[DGF004]: intentional exact identity — batch membership is "this entry's scheduled float is bit-for-bit the batch time"
                event = heappop(queue)[3]
            else:
                break
            callbacks = event.callbacks
            if callbacks is None or (
                    event._maybe_stale and event._when != now):  # dgf: noqa[DGF004]: intentional exact identity — same staleness contract as _skip_stale
                continue
            event.callbacks = None
            for callback in callbacks:
                callback(event)
            if not event._ok and not getattr(event, "defused", True):
                # An un-waited-for failure: surface it instead of losing it.
                raise event._value
        # Phase 2: drain the current-timestamp FIFO, which also absorbs
        # everything callbacks keep scheduling at ``now``; a callback may
        # still raise an interrupt, so the urgent lane stays first.
        while True:
            if urgent:
                event = pop_urgent()
            elif current:
                event = pop_current()
            else:
                return True
            callbacks = event.callbacks
            if callbacks is None or (
                    event._maybe_stale and event._when != now):  # dgf: noqa[DGF004]: intentional exact identity — same staleness contract as _skip_stale
                continue
            event.callbacks = None
            for callback in callbacks:
                callback(event)
            if not event._ok and not getattr(event, "defused", True):
                raise event._value

    def _step_batch_sanitized(self) -> bool:
        """The ``_step_batch`` drain, routed through an attached sanitizer.

        Same three-lane semantics as the hot loop, restructured so the
        sanitizer sees the whole same-timestamp *ready pool*: the urgent
        FIFO, the heap's same-time entries (already in eid order), and
        the current FIFO are pre-drained into two local pools, and each
        dispatch is chosen by :meth:`sanitizer.pick` — index 0 (the
        non-permuting default) reproduces the normal dispatch order
        bit-for-bit, because pool order is exactly heap-eid order, then
        FIFO order, then arrival order, with the urgent pool always
        preferred. Events scheduled mid-batch are absorbed after each
        dispatch with a scheduled-by edge recorded, which is the
        happens-before relation race detection and legal permutation
        both respect. On an escaping exception the undrained remainder
        is pushed back onto the lanes so no event is lost.
        """
        san = self._sanitizer
        urgent = self._urgent
        current = self._current
        queue = self._queue
        if not urgent and not current:
            self._skip_stale()
            if not queue:
                return False
            self._now = queue[0][0]
        now = self._now
        ready_urgent = list(urgent)
        urgent.clear()
        ready_normal = []
        while queue and queue[0][0] == now:  # dgf: noqa[DGF004]: intentional exact identity — same batch-membership contract as _step_batch
            ready_normal.append(heappop(queue)[3])
        ready_normal.extend(current)
        current.clear()
        san.begin_batch(now, ready_urgent, ready_normal)
        try:
            while ready_urgent or ready_normal:
                pool = ready_urgent if ready_urgent else ready_normal
                event = pool.pop(san.pick(pool))
                callbacks = event.callbacks
                if callbacks is None or (
                        event._maybe_stale and event._when != now):  # dgf: noqa[DGF004]: intentional exact identity — same staleness contract as _skip_stale
                    continue
                event.callbacks = None
                san.on_dispatch(event, callbacks)
                for callback in callbacks:
                    callback(event)
                if urgent:
                    san.on_spawned(urgent, 0)
                    ready_urgent.extend(urgent)
                    urgent.clear()
                if current:
                    san.on_spawned(current, 1)
                    ready_normal.extend(current)
                    current.clear()
                san.after_dispatch()
                if not event._ok and not getattr(event, "defused", True):
                    raise event._value
        finally:
            if ready_urgent:
                urgent.extendleft(reversed(ready_urgent))
            if ready_normal:
                current.extendleft(reversed(ready_normal))
            san.end_batch()
        return True

    @property
    def sanitizer(self):
        """Attached :class:`repro.analysis.sanitizer.ScheduleSanitizer`,
        or None (the default). Attach/detach through the sanitizer's own
        methods, which keep both sides consistent."""
        return self._sanitizer

    def peek(self) -> float:
        """Time of the next live scheduled event, or ``inf`` if none."""
        if self._urgent or self._current:
            return self._now
        self._skip_stale()
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next timestamp's batch of live events.

        Since the batched rewrite this dispatches *every* event sharing
        the next timestamp (including ones its callbacks schedule at that
        same timestamp), not a single event: "one step" is one clock
        value. Raises :class:`SimStopped` when nothing live remains.
        """
        step = (self._step_batch if self._sanitizer is None
                else self._step_batch_sanitized)
        if not step():
            raise SimStopped("no more events")

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains, or until virtual time ``until``.

        When ``until`` is given, the clock is advanced exactly to it even if
        the queue drains earlier.
        """
        step = (self._step_batch if self._sanitizer is None
                else self._step_batch_sanitized)
        if until is not None:
            if until < self._now:
                raise SimError(f"until={until} is in the past (now={self._now})")
            while self.peek() <= until:
                step()
            self._now = float(until)
            return
        while step():
            pass

    def run_process(self, generator: Generator) -> Any:
        """Convenience: start ``generator`` as a process, run to completion,
        and return its result (raising if the process failed).

        If the event queue drains while the process is still alive, the
        process is deadlocked — suspended on an event nothing will ever
        trigger — and a :class:`SimError` naming the stuck generator is
        raised instead of an opaque "no more events".
        """
        proc = self.process(generator)
        step = (self._step_batch if self._sanitizer is None
                else self._step_batch_sanitized)
        while proc.is_alive:
            if not step():
                name = getattr(proc._generator, "__name__", None) or repr(proc)
                telemetry = self._telemetry
                if telemetry is not None:
                    # Duck-typed: the kernel imports no telemetry. An
                    # attached flight recorder auto-dumps its ring so the
                    # causal tail of the hang survives the raise.
                    recorder = getattr(telemetry, "recorder", None)
                    if recorder is not None:
                        recorder.on_deadlock(name, repr(proc._target))
                raise SimError(
                    f"simulation deadlocked: event queue drained at "
                    f"t={self._now} while process {name!r} (spawned at "
                    f"t={proc._spawned_at}) is still waiting on "
                    f"{proc._target!r}")
        if not proc._ok:
            # We are the waiter: mark the failure handled so the pending
            # completion event does not re-raise on a later step()/run().
            proc.defused = True
            raise proc._value
        return proc._value

"""Discrete-event simulation substrate (virtual time, processes, windows).

The paper's datagridflows are *long-run* — days of archival schedules, ILM
restricted to weekends, provenance queried years later. This package supplies
the deterministic virtual-time kernel those behaviours execute on.
"""

from repro.sim.calendar import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_WEEK,
    ExecutionWindow,
    day_of_week,
    hour_of_day,
)
from repro.sim.kernel import Condition, Environment, Event, Process, Timeout
from repro.sim.resources import Request, Resource
from repro.sim.rng import RandomStreams

__all__ = [
    "Environment", "Event", "Timeout", "Process", "Condition",
    "Resource", "Request", "RandomStreams", "ExecutionWindow",
    "SECONDS_PER_HOUR", "SECONDS_PER_DAY", "SECONDS_PER_WEEK",
    "day_of_week", "hour_of_day",
]

"""Inter-domain network topology.

Administrative domains in a datagrid are connected by wide-area links of
very different capacities — the CMS exploding-star scenario (§2.1) pushes
data from CERN down a tier hierarchy precisely because tier links differ.
This module models the topology as an undirected graph of
latency/bandwidth links and answers routing and timing questions.

Routing uses lowest-latency shortest paths (Dijkstra). Point-to-point
transfer time uses the path's bottleneck bandwidth plus summed latencies,
which is the standard pipelined-stream approximation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import NetworkError, NoRouteError

__all__ = ["Link", "Topology"]


@dataclass(frozen=True)
class Link:
    """An undirected network link between two domains."""

    a: str
    b: str
    latency_s: float
    bandwidth_bps: float

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise NetworkError(f"link endpoints must differ, got {self.a!r} twice")
        if self.latency_s < 0:
            raise NetworkError("latency cannot be negative")
        if self.bandwidth_bps <= 0:
            raise NetworkError("bandwidth must be positive")

    @property
    def ends(self) -> frozenset:
        return frozenset((self.a, self.b))

    def other(self, domain: str) -> str:
        """The endpoint that is not ``domain``."""
        if domain == self.a:
            return self.b
        if domain == self.b:
            return self.a
        raise NetworkError(f"{domain!r} is not an endpoint of {self}")


class Topology:
    """An undirected graph of domains and links."""

    def __init__(self) -> None:
        self._domains: set = set()
        self._adjacency: Dict[str, List[Link]] = {}
        self._version = 0
        #: (src, dst) -> (version when computed, path). Entries from an
        #: older version are stale and recomputed on the next lookup.
        self._route_cache: Dict[Tuple[str, str], Tuple[int, List[Link]]] = {}

    @property
    def version(self) -> int:
        """Mutation counter, bumped whenever a link is added or replaced.

        Consumers caching routing decisions (including this class's own
        route cache) compare against it to detect topology changes.
        """
        return self._version

    @property
    def domains(self) -> frozenset:
        """All registered domain names."""
        return frozenset(self._domains)

    @property
    def links(self) -> List[Link]:
        """All links (each once)."""
        seen = set()
        out = []
        for adj in self._adjacency.values():
            for link in adj:
                if link.ends not in seen:
                    seen.add(link.ends)
                    out.append(link)
        return out

    def add_domain(self, name: str) -> None:
        """Register a domain (idempotent)."""
        self._domains.add(name)
        self._adjacency.setdefault(name, [])

    def connect(self, a: str, b: str, latency_s: float,
                bandwidth_bps: float) -> Link:
        """Add (or replace) the link between ``a`` and ``b``."""
        self.add_domain(a)
        self.add_domain(b)
        link = Link(a, b, latency_s, bandwidth_bps)
        for end in (a, b):
            self._adjacency[end] = [
                l for l in self._adjacency[end] if l.ends != link.ends]
            self._adjacency[end].append(link)
        self._version += 1
        return link

    def disconnect(self, a: str, b: str) -> Optional[Link]:
        """Remove the direct link between ``a`` and ``b``, if any.

        Returns the removed link (so an outage can restore it later with
        its original parameters). Routing immediately stops using it:
        subsequent :meth:`route` calls go around — or raise
        :class:`~repro.errors.NoRouteError` if no alternative exists —
        because the version bump invalidates every cached route.
        """
        ends = frozenset((a, b))
        removed: Optional[Link] = None
        for end in (a, b):
            adjacency = self._adjacency.get(end)
            if not adjacency:
                continue
            for link in adjacency:
                if link.ends == ends:
                    removed = link
            self._adjacency[end] = [l for l in adjacency if l.ends != ends]
        if removed is not None:
            self._version += 1
        return removed

    def link_between(self, a: str, b: str) -> Optional[Link]:
        """The direct link between ``a`` and ``b``, if one exists."""
        for link in self._adjacency.get(a, ()):
            if link.ends == frozenset((a, b)):
                return link
        return None

    # -- routing ----------------------------------------------------------

    def route(self, src: str, dst: str) -> List[Link]:
        """Lowest-latency path from ``src`` to ``dst`` as a list of links.

        A same-domain route is the empty list (local access). Routes are
        cached per (src, dst) and invalidated by the topology version, so
        repeated transfers between the same pair skip Dijkstra entirely.
        """
        if src not in self._domains:
            raise NetworkError(f"unknown domain {src!r}")
        if dst not in self._domains:
            raise NetworkError(f"unknown domain {dst!r}")
        if src == dst:
            return []
        cached = self._route_cache.get((src, dst))
        if cached is not None and cached[0] == self._version:
            # Copy: callers hold on to (and could mutate) the path list.
            return list(cached[1])
        path = self._dijkstra(src, dst)
        self._route_cache[(src, dst)] = (self._version, path)
        return list(path)

    def _dijkstra(self, src: str, dst: str) -> List[Link]:
        dist: Dict[str, float] = {src: 0.0}
        prev: Dict[str, Tuple[str, Link]] = {}
        heap: List[Tuple[float, str]] = [(0.0, src)]
        visited = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            if node == dst:
                break
            for link in self._adjacency[node]:
                neighbour = link.other(node)
                nd = d + link.latency_s
                if nd < dist.get(neighbour, float("inf")):
                    dist[neighbour] = nd
                    prev[neighbour] = (node, link)
                    heapq.heappush(heap, (nd, neighbour))
        if dst not in prev:
            raise NoRouteError(f"no route from {src!r} to {dst!r}")
        path: List[Link] = []
        node = dst
        while node != src:
            node, link = prev[node]
            path.append(link)
        path.reverse()
        return path

    def path_latency(self, src: str, dst: str) -> float:
        """Summed latency along the route."""
        return sum(link.latency_s for link in self.route(src, dst))

    def bottleneck_bandwidth(self, src: str, dst: str) -> float:
        """Minimum bandwidth along the route (``inf`` for local access)."""
        path = self.route(src, dst)
        if not path:
            return float("inf")
        return min(link.bandwidth_bps for link in path)

    def transfer_time(self, src: str, dst: str, nbytes: float) -> float:
        """Uncontended time to move ``nbytes`` from ``src`` to ``dst``."""
        if nbytes < 0:
            raise NetworkError(f"negative transfer size: {nbytes}")
        path = self.route(src, dst)
        if not path:
            return 0.0
        bottleneck = min(link.bandwidth_bps for link in path)
        return sum(link.latency_s for link in path) + nbytes / bottleneck

    # -- convenience builders ----------------------------------------------

    @classmethod
    def star(cls, center: str, leaves: List[str], latency_s: float,
             bandwidth_bps: float) -> "Topology":
        """A hub-and-spoke topology (imploding/exploding star scenarios)."""
        topo = cls()
        topo.add_domain(center)
        for leaf in leaves:
            topo.connect(center, leaf, latency_s, bandwidth_bps)
        return topo

    @classmethod
    def full_mesh(cls, domains: List[str], latency_s: float,
                  bandwidth_bps: float) -> "Topology":
        """Every pair of domains directly connected."""
        topo = cls()
        for name in domains:
            topo.add_domain(name)
        for i, a in enumerate(domains):
            for b in domains[i + 1:]:
                topo.connect(a, b, latency_s, bandwidth_bps)
        return topo

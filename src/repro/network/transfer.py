"""Contention-aware data transfers over the simulated network.

The scheduler's cost model cares about "the bandwidth utilized" (§2.3), and
the exploding-star experiment needs tier links to saturate when many
replicas push at once. This module runs transfers as a fluid-flow model on
the simulation kernel:

* each active transfer gets, on every link it crosses, an equal share of
  that link's bandwidth;
* the transfer's instantaneous rate is the minimum share along its path;
* rates are recomputed whenever a transfer starts or finishes.

Equal-share-then-bottleneck slightly underuses links compared to true
max-min fairness, but it is deterministic, monotone (more contention never
speeds anyone up), and reproduces the contention shapes the experiments
need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import NetworkError
from repro.network.topology import Link, Topology
from repro.sim.kernel import Environment, Event

__all__ = ["TransferService", "TransferStats"]

#: Bytes below which a transfer is considered finished (float tolerance).
_EPSILON_BYTES = 1e-6


@dataclass
class TransferStats:
    """Outcome of one completed transfer."""

    src: str
    dst: str
    nbytes: float
    start_time: float
    end_time: float
    #: Links crossed; 0 means a same-domain (local) access.
    hops: int = 0

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def effective_bandwidth_bps(self) -> float:
        if self.duration <= 0:
            return float("inf")
        return self.nbytes / self.duration


@dataclass
class _ActiveTransfer:
    stats: TransferStats
    links: List[Link]
    remaining: float
    rate: float = 0.0
    done: Event = None  # type: ignore[assignment]
    #: Open telemetry span (None when no session is attached).
    span: object = None


class TransferService:
    """Runs point-to-point transfers with per-link fair sharing."""

    def __init__(self, env: Environment, topology: Topology) -> None:
        self.env = env
        self.topology = topology
        self._active: List[_ActiveTransfer] = []
        self._wake_generation = 0
        self.total_bytes_moved = 0.0
        self.completed: List[TransferStats] = []
        # Utilization gauge children by link ends (avoids re-resolving
        # label children on every rate recomputation).
        self._link_gauges: Dict[frozenset, object] = {}
        self._collector_registered = False

    # -- public API ---------------------------------------------------------

    def transfer(self, src: str, dst: str, nbytes: float) -> Event:
        """Start a transfer; the returned event succeeds with its stats."""
        if nbytes < 0:
            raise NetworkError(f"negative transfer size: {nbytes}")
        done = self.env.event()
        links = self.topology.route(src, dst)
        stats = TransferStats(src=src, dst=dst, nbytes=nbytes,
                              start_time=self.env.now, end_time=self.env.now,
                              hops=len(links))
        t = self.env.telemetry
        if t is None:
            span = None
        else:
            # The calling process's span context (typically an engine
            # step's span, via Process._tspan) parents the span, nesting
            # flow -> step -> transfer.
            active = self.env._active_process
            span = t.tracer.begin(
                "transfer", None if active is None else active._tspan,
                {"src": src, "dst": dst, "nbytes": nbytes,
                 "hops": len(links)})
        if not links or nbytes == 0:
            # Local (same-domain) or empty transfer: instantaneous.
            self._finish(stats, done, span)
            return done
        latency = sum(link.latency_s for link in links)
        self.env.process(
            self._admit_after_latency(latency, stats, links, done, span))
        return done

    @property
    def active_count(self) -> int:
        """Number of transfers currently streaming."""
        return len(self._active)

    def link_utilization(self, link: Link) -> float:
        """Fraction of ``link``'s bandwidth in use right now."""
        used = sum(t.rate for t in self._active if link in t.links)
        return used / link.bandwidth_bps

    # -- internals ----------------------------------------------------------

    def _admit_after_latency(self, latency, stats, links, done, span=None):
        yield self.env.timeout(latency)
        transfer = _ActiveTransfer(stats=stats, links=links,
                                   remaining=stats.nbytes, done=done,
                                   span=span)
        # end_time doubles as "last settled" during streaming; start the
        # clock at admission, not at the original call instant.
        stats.end_time = self.env.now
        self._settle_progress()
        self._active.append(transfer)
        self._recompute_rates()
        self._schedule_wake()

    def _finish(self, stats: TransferStats, done: Event,
                span=None) -> None:
        stats.end_time = self.env.now
        if stats.hops:
            # Only traffic that actually crossed a link is WAN movement;
            # same-domain accesses are free (data virtualization's point).
            self.total_bytes_moved += stats.nbytes
        self.completed.append(stats)
        t = self.env.telemetry
        if t is not None:
            if span is not None:
                t.tracer.finish(span)
            # Counters, duration samples, and the log record are all
            # derived from the stats object at export time
            # (Telemetry collect); the hot path only stashes it.
            t.net_pending.append(stats)
        done.succeed(stats)

    def _settle_progress(self) -> None:
        """Advance every active transfer to the current instant."""
        now = self.env.now
        for transfer in self._active:
            elapsed = now - transfer.stats.end_time
            transfer.remaining -= transfer.rate * elapsed
            transfer.stats.end_time = now
        finished = [t for t in self._active
                    if t.remaining <= self._finish_tolerance(t, now)]
        for transfer in finished:
            self._active.remove(transfer)
            self._finish(transfer.stats, transfer.done, transfer.span)

    @staticmethod
    def _finish_tolerance(transfer: _ActiveTransfer, now: float) -> float:
        """Residual bytes below which a transfer counts as finished.

        Floating-point addition of a tiny finish delay onto a large virtual
        clock can lose low bits, leaving a residue the next wake can never
        drain (the delay rounds to zero and time stops advancing). The
        tolerance therefore scales with both the transfer size and the
        clock's representable step at the current instant.
        """
        clock_step = max(1e-9, 4 * math.ulp(now))
        return max(_EPSILON_BYTES,
                   1e-9 * transfer.stats.nbytes,
                   transfer.rate * clock_step)

    def _recompute_rates(self) -> None:
        # Count active transfers per link, then give each transfer the
        # bottleneck of its equal shares.
        loads: Dict[frozenset, int] = {}
        for transfer in self._active:
            for link in transfer.links:
                loads[link.ends] = loads.get(link.ends, 0) + 1
        for transfer in self._active:
            transfer.rate = min(
                link.bandwidth_bps / loads[link.ends] for link in transfer.links)
        t = self.env.telemetry
        if t is not None and not self._collector_registered:
            # Gauges only ever expose their latest value, so recording on
            # every recomputation would be pure overhead: register a
            # collect-time reader instead (runs once per export).
            self._collector_registered = True
            t.collectors.append(lambda: self._record_link_utilization(t))

    def _record_link_utilization(self, telemetry) -> None:
        """Gauge the in-use fraction of every link busy right now.

        Runs at export time (a telemetry collector, not the transfer hot
        path). Links that went idle are reset to 0 so the export reflects
        the current instant, not the last busy one.
        """
        used: Dict[frozenset, float] = {}
        capacity: Dict[frozenset, float] = {}
        for transfer in self._active:
            for link in transfer.links:
                used[link.ends] = used.get(link.ends, 0.0) + transfer.rate
                capacity[link.ends] = link.bandwidth_bps
        gauges = self._link_gauges
        for ends, rate in used.items():
            series = gauges.get(ends)
            if series is None:
                series = telemetry.net_link_utilization.labels(
                    link="--".join(sorted(ends)))
                gauges[ends] = series
            series.set(rate / capacity[ends])
        for ends, series in gauges.items():
            if ends not in used and series.value != 0.0:
                series.set(0.0)

    def _schedule_wake(self) -> None:
        """Arrange to wake at the next transfer completion."""
        self._wake_generation += 1
        if not self._active:
            return
        next_finish = min(t.remaining / t.rate for t in self._active)
        self.env.process(self._wake(next_finish, self._wake_generation))

    def _wake(self, delay: float, generation: int):
        yield self.env.timeout(delay)
        if generation != self._wake_generation:
            return  # superseded by a later start/finish
        self._settle_progress()
        self._recompute_rates()
        self._schedule_wake()

"""Contention-aware data transfers over the simulated network.

The scheduler's cost model cares about "the bandwidth utilized" (§2.3), and
the exploding-star experiment needs tier links to saturate when many
replicas push at once. This module runs transfers as a fluid-flow model on
the simulation kernel:

* each active transfer gets, on every link it crosses, an equal share of
  that link's bandwidth;
* the transfer's instantaneous rate is the minimum share along its path;
* rates are recomputed whenever a transfer starts or finishes.

Equal-share-then-bottleneck slightly underuses links compared to true
max-min fairness, but it is deterministic, monotone (more contention never
speeds anyone up), and reproduces the contention shapes the experiments
need.

The engine is *incremental*: a per-link index of active transfers means a
start or finish only re-rates the transfers that share a link with it —
under equal sharing a transfer's rate depends solely on the occupancy of
its own links, so the contention component of an event collapses to the
direct link-sharers, and disjoint traffic is untouched. A transfer is
settled (its progress advanced to "now") only when its rate actually
changes; between rate changes it drains linearly and needs no bookkeeping.
Projected finish times live in a lazily-invalidated min-heap that drives a
single persistent, reschedulable kernel timer — no throwaway wake
processes. The superseded global model survives as
:meth:`TransferService._recompute_rates_full` (``incremental=False``) and
is exercised by the equivalence tests and ``benchmarks/test_e20_network.py``;
because both modes settle under the identical "only on rate change" rule,
their per-transfer completion times are bit-identical.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import NetworkError, TransferInterrupted
from repro.network.topology import Link, Topology
from repro.sim.kernel import Environment, Event, Timeout

__all__ = ["TransferService", "TransferStats"]

#: Bytes below which a transfer is considered finished (float tolerance).
_EPSILON_BYTES = 1e-6


@dataclass
class TransferStats:
    """Outcome of one completed transfer."""

    src: str
    dst: str
    nbytes: float
    start_time: float
    end_time: float
    #: Links crossed; 0 means a same-domain (local) access.
    hops: int = 0
    #: The links crossed, as sorted "a--b" end-pair names in route order —
    #: the per-link identity SLO latency probes and the flight recorder
    #: aggregate on. Empty for local accesses.
    route: Tuple[str, ...] = ()

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def effective_bandwidth_bps(self) -> float:
        if self.duration <= 0:
            return float("inf")
        return self.nbytes / self.duration


class _ActiveTransfer:
    """Book-keeping for one streaming transfer (identity-hashed)."""

    __slots__ = ("stats", "links", "remaining", "rate", "done", "span",
                 "version")

    def __init__(self, stats: TransferStats, links: List[Link],
                 done: Event, span: object = None) -> None:
        self.stats = stats
        self.links = links
        self.remaining = stats.nbytes
        self.rate = 0.0
        self.done = done
        #: Open telemetry span (None when no session is attached).
        self.span = span
        #: Bumped whenever the projected finish changes (or the transfer
        #: leaves the active set); heap entries carrying an older version
        #: are stale and dropped lazily.
        self.version = 0


class TransferService:
    """Runs point-to-point transfers with per-link fair sharing.

    ``incremental=False`` selects the reference engine: every event
    re-rates *all* active transfers via :meth:`_recompute_rates_full`
    (O(active × links) per event) instead of just the affected set. Both
    modes produce bit-identical completion times; the flag exists for
    equivalence testing and benchmarking.
    """

    def __init__(self, env: Environment, topology: Topology,
                 incremental: bool = True) -> None:
        self.env = env
        self.topology = topology
        self.incremental = incremental
        # Dict-as-ordered-set: O(1) membership/removal, deterministic
        # iteration (kernel determinism forbids id-ordered sets).
        self._active: Dict[_ActiveTransfer, None] = {}
        #: Per-link index: link ends -> {transfer: the Link it crosses
        #: there}. len() of an entry is that link's occupancy; entries are
        #: removed when the last transfer leaves, so iterating the index
        #: visits only busy links.
        self._by_link: Dict[frozenset, Dict[_ActiveTransfer, Link]] = {}
        #: Min-heap of (projected finish, seq, transfer version, transfer);
        #: stale entries (version mismatch) are dropped when they surface.
        self._finish_heap: list = []
        self._heap_seq = 0
        #: The single persistent wake timer, rescheduled in place as the
        #: earliest projected finish moves.
        self._timer: Optional[Timeout] = None
        self.total_bytes_moved = 0.0
        self.completed: List[TransferStats] = []
        #: Link ends currently in a fault-injected outage. Maintained by a
        #: :class:`~repro.faults.model.FaultDriver`; empty (and checked
        #: with one falsy test) when no fault schedule is attached.
        self.down_links: set = set()
        self.interrupted_count = 0
        # Utilization gauge children by link ends (avoids re-resolving
        # label children on every rate recomputation).
        self._link_gauges: Dict[frozenset, object] = {}
        self._collector_registered = False

    # -- public API ---------------------------------------------------------

    def transfer(self, src: str, dst: str, nbytes: float) -> Event:
        """Start a transfer; the returned event succeeds with its stats."""
        if nbytes < 0:
            raise NetworkError(f"negative transfer size: {nbytes}")
        done = self.env.event()
        links = self.topology.route(src, dst)
        stats = TransferStats(src=src, dst=dst, nbytes=nbytes,
                              start_time=self.env.now, end_time=self.env.now,
                              hops=len(links),
                              route=tuple("--".join(sorted(link.ends))
                                          for link in links))
        t = self.env.telemetry
        if t is None:
            span = None
        else:
            if not self._collector_registered:
                # Gauges only ever expose their latest value, so recording
                # on every recomputation would be pure overhead: register a
                # collect-time reader instead (runs once per export).
                self._collector_registered = True
                t.collectors.append(lambda: self._record_link_utilization(t))
            # The calling process's span context (typically an engine
            # step's span, via Process._tspan) parents the span, nesting
            # flow -> step -> transfer.
            active = self.env._active_process
            span = t.tracer.begin(
                "transfer", None if active is None else active._tspan,
                {"src": src, "dst": dst, "nbytes": nbytes,
                 "hops": len(links)})
        if not links or nbytes == 0:
            # Local (same-domain) or empty transfer: instantaneous.
            self._finish(stats, done, span)
            return done
        latency = sum(link.latency_s for link in links)
        self.env.process(
            self._admit_after_latency(latency, stats, links, done, span))
        return done

    @property
    def active_count(self) -> int:
        """Number of transfers currently streaming."""
        return len(self._active)

    def link_utilization(self, link: Link) -> float:
        """Fraction of ``link``'s bandwidth in use right now.

        O(transfers on the link) via the per-link index, not O(all active
        transfers).
        """
        state = self._by_link.get(link.ends)
        if not state:
            return 0.0
        used = sum(t.rate for t, crossed in state.items() if crossed == link)
        return used / link.bandwidth_bps

    # -- internals ----------------------------------------------------------

    def _admit_after_latency(self, latency, stats, links, done, span=None):
        yield self.env.timeout(latency)
        if self.down_links:
            # A link on the path went down while this transfer was still
            # in its latency phase: it never streamed a byte.
            for link in links:
                if link.ends in self.down_links:
                    self._interrupt(
                        _ActiveTransfer(stats, links, done, span), link)
                    return
        transfer = _ActiveTransfer(stats, links, done, span)
        # end_time doubles as "last settled" during streaming; start the
        # clock at admission, not at the original call instant.
        stats.end_time = self.env.now
        self._active[transfer] = None
        touched = {}
        for link in links:
            self._by_link.setdefault(link.ends, {})[transfer] = link
            touched[link.ends] = None
        if self.incremental:
            self._recompute_rates_affected(touched)
        else:
            self._recompute_rates_full()
        self._arm_timer()

    def _finish(self, stats: TransferStats, done: Event,
                span=None) -> None:
        stats.end_time = self.env.now
        if stats.hops:
            # Only traffic that actually crossed a link is WAN movement;
            # same-domain accesses are free (data virtualization's point).
            self.total_bytes_moved += stats.nbytes
        self.completed.append(stats)
        t = self.env.telemetry
        if t is not None:
            if span is not None:
                t.tracer.finish(span)
            # Counters, duration samples, and the log record are all
            # derived from the stats object at export time
            # (Telemetry collect); the hot path only stashes it.
            t.net_pending.append(stats)
            recorder = t.recorder
            if recorder is not None:
                # The flight recorder cannot defer: a crash dump must
                # already hold the completion.
                recorder.record_transfer(stats)
        done.succeed(stats)

    def _interrupt(self, transfer: _ActiveTransfer, link: Link) -> None:
        """Fail a (settled, already-removed) transfer's done event with a
        resumable :class:`TransferInterrupted` carrying its byte offset."""
        stats = transfer.stats
        transferred = max(0.0, stats.nbytes - transfer.remaining)
        self.interrupted_count += 1
        if transferred and stats.hops:
            # The bytes that made it across count as WAN movement; the
            # resumed remainder accounts for the rest on completion.
            self.total_bytes_moved += transferred
        t = self.env.telemetry
        if t is not None:
            if transfer.span is not None:
                t.tracer.finish(transfer.span, status="interrupted")
            t.log.emit("net.interrupted", src=stats.src, dst=stats.dst,
                       link="--".join(sorted(link.ends)),
                       nbytes=stats.nbytes, transferred=transferred)
        transfer.done.fail(TransferInterrupted(
            f"link {link.a}--{link.b} dropped with "
            f"{stats.nbytes - transferred:.0f} B left of "
            f"{stats.src}->{stats.dst}",
            src=stats.src, dst=stats.dst, nbytes=stats.nbytes,
            transferred=transferred))

    def fail_link(self, a: str, b: str) -> int:
        """Interrupt every in-flight transfer crossing the ``a``–``b`` link.

        Each victim's done event fails with :class:`TransferInterrupted`
        carrying the bytes already moved, so callers can resume from that
        offset. Survivors sharing other links with a victim are re-rated
        (they just gained bandwidth). Returns the number of interruptions.
        """
        ends = frozenset((a, b))
        state = self._by_link.get(ends)
        if not state:
            return 0
        now = self.env.now
        victims = list(state)
        touched: Dict[frozenset, None] = {}
        for transfer in victims:
            elapsed = now - transfer.stats.end_time
            if elapsed:
                transfer.remaining -= transfer.rate * elapsed
                transfer.stats.end_time = now
            self._remove(transfer)
            for link in transfer.links:
                if link.ends != ends:
                    touched[link.ends] = None
        failed_link = next(l for t in victims for l in t.links
                           if l.ends == ends)
        for transfer in victims:
            self._interrupt(transfer, failed_link)
        if self.incremental:
            self._recompute_rates_affected(touched)
        else:
            self._recompute_rates_full()
        self._arm_timer()
        return len(victims)

    def replace_link(self, new_link: Link) -> int:
        """Swap the link object in-flight transfers cross at ``new_link``'s
        ends (a bandwidth degradation or restoration) and re-rate them.

        The topology owns routing; this keeps the *streaming* state
        consistent when a link's parameters change mid-transfer. Returns
        the number of transfers re-pointed.
        """
        ends = new_link.ends
        state = self._by_link.get(ends)
        if not state:
            return 0
        for transfer in state:
            transfer.links = [new_link if link.ends == ends else link
                              for link in transfer.links]
            state[transfer] = new_link
        if self.incremental:
            self._recompute_rates_affected((ends,))
        else:
            self._recompute_rates_full()
        self._arm_timer()
        return len(state)

    @staticmethod
    def _finish_tolerance(transfer: _ActiveTransfer, now: float) -> float:
        """Residual bytes below which a transfer counts as finished.

        Floating-point addition of a tiny finish delay onto a large virtual
        clock can lose low bits, leaving a residue the next wake can never
        drain (the delay rounds to zero and time stops advancing). The
        tolerance therefore scales with both the transfer size and the
        clock's representable step at the current instant.
        """
        clock_step = max(1e-9, 4 * math.ulp(now))
        return max(_EPSILON_BYTES,
                   1e-9 * transfer.stats.nbytes,
                   transfer.rate * clock_step)

    # -- rate maintenance ---------------------------------------------------

    def _rates_full(self) -> Dict[_ActiveTransfer, float]:
        """Every active transfer's fair-share rate, computed from scratch.

        The ground truth the incremental engine must agree with at all
        times; used directly by the equivalence tests.
        """
        by_link = self._by_link
        return {
            transfer: min(link.bandwidth_bps / len(by_link[link.ends])
                          for link in transfer.links)
            for transfer in self._active
        }

    def _apply_rates(self, candidates: Iterable[_ActiveTransfer]) -> None:
        """Re-rate ``candidates``; settle a transfer only when its rate
        actually changes (progress is linear between rate changes, so
        nothing else needs bookkeeping)."""
        now = self.env.now
        by_link = self._by_link
        for transfer in candidates:
            rate = min(link.bandwidth_bps / len(by_link[link.ends])
                       for link in transfer.links)
            # dgf: noqa[DGF004]: intentional exact identity — the settle-only-on-rate-change rule needs bit-equality so incremental and reference engines settle at identical instants
            if rate == transfer.rate:
                continue
            elapsed = now - transfer.stats.end_time
            if elapsed:
                transfer.remaining -= transfer.rate * elapsed
            transfer.stats.end_time = now
            transfer.rate = rate
            self._push_projection(transfer)

    def _recompute_rates_affected(self, touched: Iterable[frozenset]) -> None:
        """Re-rate only the transfers crossing a touched link.

        Under equal sharing a transfer's rate is min(bandwidth/occupancy)
        over its own links, so occupancy changes on ``touched`` links
        cannot propagate further: the direct link-sharers *are* the whole
        contention component of the event.
        """
        candidates: Dict[_ActiveTransfer, None] = {}
        for ends in touched:
            state = self._by_link.get(ends)
            if state:
                for transfer in state:
                    candidates[transfer] = None
        self._apply_rates(candidates)

    def _recompute_rates_full(self) -> None:
        """Reference model: re-rate every active transfer (global sweep)."""
        self._apply_rates(self._active)

    # -- wake timer ---------------------------------------------------------

    def _push_projection(self, transfer: _ActiveTransfer) -> None:
        transfer.version += 1
        finish = transfer.stats.end_time + transfer.remaining / transfer.rate
        self._heap_seq += 1
        heapq.heappush(self._finish_heap,
                       (finish, self._heap_seq, transfer.version, transfer))

    def _live_head(self):
        """The earliest valid heap entry, dropping stale ones on the way."""
        heap = self._finish_heap
        while heap:
            entry = heap[0]
            if entry[3].version != entry[2]:
                heapq.heappop(heap)
            else:
                return entry
        return None

    def _arm_timer(self) -> None:
        """Point the persistent timer at the earliest projected finish."""
        head = self._live_head()
        timer = self._timer
        pending = (timer is not None and not timer.processed
                   and not timer.cancelled)
        if head is None:
            if pending:
                timer.cancel()
            self._timer = None
            return
        delay = head[0] - self.env.now
        if delay < 0.0:
            delay = 0.0
        if pending:
            # dgf: noqa[DGF004]: intentional exact identity — reschedule is skipped only when the recomputed fire time is the same float bit-for-bit; near-misses must reschedule
            if timer.when == self.env.now + delay:
                return
            timer.reschedule(delay)
            return
        timer = self.env.timeout(delay)
        timer.callbacks.append(self._on_wake)
        self._timer = timer

    def _on_wake(self, event: Event) -> None:
        if event is not self._timer:
            return  # a replaced timer that fired before it could die
        self._timer = None
        now = self.env.now
        # The timer's fire time is recomputed through now-relative deltas,
        # so it can land a few ulps shy of the heap's projection; the slack
        # mirrors the clock step in _finish_tolerance.
        horizon = now + max(1e-9, 4 * math.ulp(now))
        finished = []
        while True:
            head = self._live_head()
            if head is None or head[0] > horizon:
                break
            heapq.heappop(self._finish_heap)
            transfer = head[3]
            elapsed = now - transfer.stats.end_time
            if elapsed:
                transfer.remaining -= transfer.rate * elapsed
                transfer.stats.end_time = now
            if transfer.remaining <= self._finish_tolerance(transfer, now):
                finished.append(transfer)
            else:
                # Projection overshot by more than the tolerance (clock
                # rounding): keep streaming, re-project.
                self._push_projection(transfer)
        if finished:
            touched = {}
            for transfer in finished:
                self._remove(transfer)
                for link in transfer.links:
                    touched[link.ends] = None
                self._finish(transfer.stats, transfer.done, transfer.span)
            if self.incremental:
                self._recompute_rates_affected(touched)
            else:
                self._recompute_rates_full()
        self._arm_timer()

    def _remove(self, transfer: _ActiveTransfer) -> None:
        del self._active[transfer]
        transfer.version += 1  # invalidate any heap projections
        for link in transfer.links:
            state = self._by_link[link.ends]
            del state[transfer]
            if not state:
                del self._by_link[link.ends]

    # -- telemetry ----------------------------------------------------------

    def _record_link_utilization(self, telemetry) -> None:
        """Gauge the in-use fraction of every link busy right now.

        Runs at export time (a telemetry collector, not the transfer hot
        path), reading the per-link index so only busy links are visited.
        Links that went idle are reset to 0 so the export reflects the
        current instant, not the last busy one.
        """
        gauges = self._link_gauges
        busy = self._by_link
        for ends, state in busy.items():
            used = 0.0
            capacity = 1.0
            for transfer, link in state.items():
                used += transfer.rate
                capacity = link.bandwidth_bps
            series = gauges.get(ends)
            if series is None:
                series = telemetry.net_link_utilization.labels(
                    link="--".join(sorted(ends)))
                gauges[ends] = series
            series.set(used / capacity)
        for ends, series in gauges.items():
            if ends not in busy and series.value != 0.0:
                series.set(0.0)

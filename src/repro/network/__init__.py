"""Simulated wide-area network between administrative domains.

Substitutes for the real grid WAN per DESIGN.md §2: routing, bandwidth,
latency, and contention-aware transfers in virtual time.
"""

from repro.network.topology import Link, Topology
from repro.network.transfer import TransferService, TransferStats

__all__ = ["Link", "Topology", "TransferService", "TransferStats"]

"""The paper's named deployment scenarios, as synthetic builders.

Each builder assembles a complete simulated deployment — topology, domains,
storage, users, a DfMS server, provenance — shaped like one of the
production datagrids the paper cites:

* :func:`bbsrc_scenario` — the BBSRC-CCLRC *imploding star*: UK hospitals
  producing data that an archiver site (RAL) pulls in (§2.1).
* :func:`cms_scenario` — the CERN CMS *exploding star*: a producer pushing
  data down a tier hierarchy (§2.1).
* :func:`scec_scenario` — the SCEC ingestion run, one of the two reported
  DGL prototype executions (§4).
* :func:`ucsd_library_scenario` — the UCSD Libraries MD5 data-integrity
  run, the other reported prototype (§4).

The traces themselves are proprietary/defunct; these generators reproduce
the *structural* properties the paper relies on (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.dfms.server import DfMSServer
from repro.grid.acl import Permission
from repro.grid.dgms import DataGridManagementSystem
from repro.grid.domains import DomainRole
from repro.grid.users import User
from repro.network.topology import Topology
from repro.provenance import ProvenanceStore, attach_to_dgms, attach_to_server
from repro.sim.kernel import Environment
from repro.sim.rng import RandomStreams
from repro.storage import GB, MB, PhysicalStorageResource, StorageClass
from repro.workloads.generators import populate_collection, uniform_sizes

__all__ = ["Scenario", "bbsrc_scenario", "cms_scenario", "scec_scenario",
           "ucsd_library_scenario"]


@dataclass
class Scenario:
    """A ready-to-run simulated deployment."""

    name: str
    env: Environment
    dgms: DataGridManagementSystem
    server: DfMSServer
    provenance: ProvenanceStore
    users: Dict[str, User] = field(default_factory=dict)
    collections: List[str] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)

    def run(self, generator):
        """Run a sim process to completion and return its value."""
        return self.env.run_process(generator)


def _base(name: str, topology: Topology) -> Scenario:
    env = Environment()
    dgms = DataGridManagementSystem(env, topology, name=name)
    server = DfMSServer(env, dgms, name=f"{name}-matrix")
    provenance = ProvenanceStore()
    attach_to_dgms(provenance, dgms)
    attach_to_server(provenance, server)
    return Scenario(name=name, env=env, dgms=dgms, server=server,
                    provenance=provenance)


def _disk(name, capacity=500 * GB):
    return PhysicalStorageResource(name, StorageClass.DISK, capacity)


def _tape(name, capacity=100_000 * GB):
    return PhysicalStorageResource(name, StorageClass.ARCHIVE, capacity)


# --------------------------------------------------------------------------
# BBSRC imploding star
# --------------------------------------------------------------------------


def bbsrc_scenario(n_hospitals: int = 4, files_per_hospital: int = 10,
                   seed: int = 0,
                   wan_bandwidth: float = 20 * MB) -> Scenario:
    """UK hospitals around the RAL archiver (imploding star)."""
    hospitals = [f"hospital-{index}" for index in range(n_hospitals)]
    topology = Topology.star("ral", hospitals, latency_s=0.02,
                             bandwidth_bps=wan_bandwidth)
    scenario = _base("bbsrc", topology)
    dgms = scenario.dgms
    dgms.register_domain("ral", DomainRole.ARCHIVER)
    dgms.register_resource("ral-tape", "ral", _tape("ral-tape-1"))
    archivist = dgms.register_user("archivist", "ral")
    scenario.users["archivist"] = archivist
    streams = RandomStreams(seed)
    dgms.create_collection(archivist, "/bbsrc", parents=True)
    # /bbsrc is the shared collection: every hospital creates its own
    # sub-collection under it.
    dgms.namespace.resolve("/bbsrc").acl.grant("*", Permission.WRITE)

    def _populate():
        for hospital in hospitals:
            dgms.register_domain(hospital, DomainRole.PRODUCER)
            dgms.register_resource(f"{hospital}-disk", hospital,
                                   _disk(f"{hospital}-disk-1"))
            clinician = dgms.register_user("clinician", hospital)
            scenario.users[hospital] = clinician
            collection = f"/bbsrc/{hospital}"
            scenario.collections.append(collection)
            dgms.create_collection(clinician, collection)
            paths = yield from populate_collection(
                dgms, clinician, collection, files_per_hospital,
                f"{hospital}-disk",
                size=uniform_sizes(streams.stream(hospital),
                                   low=5 * MB, high=50 * MB),
                metadata=lambda i: {"study": f"study-{i % 3}"})
            # The archiver must be able to read, replicate, and trim.
            for path in paths:
                dgms.grant(clinician, path, archivist.qualified_name,
                           Permission.OWN)

    scenario.run(_populate())
    scenario.extras["hospitals"] = hospitals
    return scenario


# --------------------------------------------------------------------------
# CMS exploding star
# --------------------------------------------------------------------------


def cms_scenario(n_tier1: int = 2, n_tier2_per_t1: int = 2,
                 n_events: int = 8, event_size: float = 50 * MB,
                 seed: int = 0,
                 uplink_bandwidth: float = 10 * MB,
                 regional_bandwidth: float = 100 * MB) -> Scenario:
    """CERN pushing event data down a tier hierarchy (exploding star).

    The link shape matters: the CERN → tier-1 uplinks are long and thin
    (the mid-2000s transatlantic reality), while tier-1 → tier-2 links are
    short regional fat pipes. That asymmetry is why the paper's *staged*
    replication wins — tier-2 copies should cross the regional links, not
    the contended uplinks.
    """
    topology = Topology()
    tier1 = [f"t1-{index}" for index in range(n_tier1)]
    tier2: List[str] = []
    for t1 in tier1:
        topology.connect("cern", t1, latency_s=0.05,
                         bandwidth_bps=uplink_bandwidth)
        for index in range(n_tier2_per_t1):
            t2 = f"{t1}-t2-{index}"
            tier2.append(t2)
            topology.connect(t1, t2, latency_s=0.02,
                             bandwidth_bps=regional_bandwidth)
    scenario = _base("cms", topology)
    dgms = scenario.dgms
    dgms.register_domain("cern", DomainRole.PRODUCER)
    dgms.register_resource("cern-disk", "cern", _disk("cern-disk-1",
                                                      capacity=5000 * GB))
    physicist = dgms.register_user("physicist", "cern")
    scenario.users["physicist"] = physicist
    for domain in tier1 + tier2:
        dgms.register_domain(domain)
        dgms.register_resource(f"{domain}-disk", domain,
                               _disk(f"{domain}-disk-1", capacity=5000 * GB))
    dgms.create_collection(physicist, "/cms/run1", parents=True)
    scenario.collections.append("/cms/run1")

    def _populate():
        yield from populate_collection(
            dgms, physicist, "/cms/run1", n_events, "cern-disk",
            size=lambda: event_size, name_prefix="events",
            metadata=lambda i: {"run": 1, "stream": f"s{i % 2}"})

    scenario.run(_populate())
    scenario.extras.update({
        "tier1": tier1,
        "tier2": tier2,
        "tier1_resources": [f"{d}-disk" for d in tier1],
        "tier2_resources": [f"{d}-disk" for d in tier2],
    })
    return scenario


# --------------------------------------------------------------------------
# SCEC ingestion
# --------------------------------------------------------------------------


def scec_scenario(n_files: int = 20, seed: int = 0) -> Scenario:
    """SCEC simulation outputs ingested into the SRB datagrid (§4)."""
    topology = Topology()
    topology.connect("scec", "sdsc", latency_s=0.01, bandwidth_bps=50 * MB)
    scenario = _base("scec", topology)
    dgms = scenario.dgms
    dgms.register_domain("scec", DomainRole.PRODUCER)
    dgms.register_domain("sdsc", DomainRole.CURATOR)
    dgms.register_resource("sdsc-gpfs", "sdsc",
                           PhysicalStorageResource(
                               "sdsc-gpfs-1", StorageClass.PARALLEL_FS,
                               2000 * GB))
    dgms.register_resource("sdsc-tape", "sdsc", _tape("sdsc-tape-1"))
    scientist = dgms.register_user("scientist", "scec")
    scenario.users["scientist"] = scientist
    dgms.create_collection(scientist, "/scec/runs", parents=True)
    scenario.collections.append("/scec/runs")
    rng = RandomStreams(seed).stream("scec")
    manifest = [{"name": f"wave-{index:04d}.dat",
                 "size": rng.uniform(10 * MB, 200 * MB)}
                for index in range(n_files)]
    scenario.extras["manifest"] = manifest
    return scenario


# --------------------------------------------------------------------------
# UCSD Libraries data integrity
# --------------------------------------------------------------------------


def ucsd_library_scenario(n_files: int = 20, seed: int = 0) -> Scenario:
    """UCSD Libraries MD5 data-integrity datagridflow (§4)."""
    topology = Topology()
    topology.connect("ucsd-lib", "sdsc", latency_s=0.005,
                     bandwidth_bps=100 * MB)
    scenario = _base("ucsd-library", topology)
    dgms = scenario.dgms
    dgms.register_domain("ucsd-lib", DomainRole.CURATOR)
    dgms.register_domain("sdsc")
    dgms.register_resource("library-disk", "ucsd-lib",
                           _disk("library-disk-1"))
    dgms.register_resource("library-tape", "sdsc", _tape("library-tape-1"))
    librarian = dgms.register_user("librarian", "ucsd-lib")
    scenario.users["librarian"] = librarian
    dgms.create_collection(librarian, "/library/ingest", parents=True)
    scenario.collections.append("/library/ingest")
    streams = RandomStreams(seed)

    def _populate():
        yield from populate_collection(
            dgms, librarian, "/library/ingest", n_files, "library-disk",
            size=uniform_sizes(streams.stream("library"),
                               low=MB, high=20 * MB),
            name_prefix="scan",
            metadata=lambda i: {"format": "tiff" if i % 2 else "pdf"})

    scenario.run(_populate())
    return scenario

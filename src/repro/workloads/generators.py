"""Synthetic workload generators.

Deterministic (seeded) builders for the populations and flow shapes the
benchmarks sweep over: collections of files with size distributions and
metadata, bag-of-steps and chain flows, and random task DAGs.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.dfms.scheduler.cost import TaskSpec
from repro.dfms.scheduler.dag import TaskGraph
from repro.dgl.builder import flow_builder
from repro.dgl.model import Flow
from repro.grid.dgms import DataGridManagementSystem
from repro.grid.users import User
from repro.storage import MB

__all__ = [
    "populate_collection", "uniform_sizes", "lognormal_sizes",
    "sleep_bag_flow", "sleep_chain_flow", "random_task_graph",
]


def uniform_sizes(rng: random.Random, low: float = MB,
                  high: float = 100 * MB) -> Callable[[], float]:
    """Sampler: uniform object sizes in [low, high]."""
    return lambda: rng.uniform(low, high)


def lognormal_sizes(rng: random.Random, median: float = 10 * MB,
                    sigma: float = 1.0) -> Callable[[], float]:
    """Sampler: heavy-tailed object sizes (the realistic archive shape)."""
    import math
    mu = math.log(median)
    return lambda: rng.lognormvariate(mu, sigma)


def populate_collection(dgms: DataGridManagementSystem, user: User,
                        collection: str, count: int, resource: str,
                        size: Optional[Callable[[], float]] = None,
                        metadata: Optional[Callable[[int], Dict]] = None,
                        name_prefix: str = "obj"):
    """Generator (sim process body): ingest ``count`` objects.

    Returns the list of created paths. ``size`` is a sampler (default
    1 MB constant); ``metadata`` maps the object index to its AVUs.
    """
    if not dgms.namespace.exists(collection):
        dgms.create_collection(user, collection, parents=True)
    paths: List[str] = []
    for index in range(count):
        path = f"{collection}/{name_prefix}-{index:05d}.dat"
        nbytes = size() if size is not None else float(MB)
        avus = metadata(index) if metadata is not None else None
        yield dgms.put(user, path, nbytes, resource, metadata=avus)
        paths.append(path)
    return paths


def sleep_bag_flow(name: str, count: int, duration: float,
                   parallel: bool = False,
                   max_concurrent: int = 0) -> Flow:
    """A flow of ``count`` independent fixed-duration steps."""
    builder = flow_builder(name)
    if parallel:
        builder.parallel(max_concurrent=max_concurrent)
    for index in range(count):
        builder.step(f"task-{index:05d}", "dgl.sleep", duration=duration)
    return builder.build()


def sleep_chain_flow(name: str, depth: int, duration: float) -> Flow:
    """A maximally nested chain: one step per nesting level (ablation A1)."""
    inner = flow_builder(f"{name}-level-{depth - 1}").step(
        "work", "dgl.sleep", duration=duration)
    for level in range(depth - 2, -1, -1):
        outer = flow_builder(f"{name}-level-{level}")
        outer.subflow(inner)
        inner = outer
    return inner.build()


def random_task_graph(rng: random.Random, count: int,
                      duration_low: float = 10.0,
                      duration_high: float = 100.0,
                      edge_probability: float = 0.25,
                      edge_bytes: float = 10 * MB) -> TaskGraph:
    """A random layered DAG of ``count`` tasks (for HEFT benchmarks).

    Edges only point from earlier to later tasks, so the graph is acyclic
    by construction.
    """
    graph = TaskGraph()
    names = [f"task-{index:04d}" for index in range(count)]
    for name in names:
        graph.add_task(TaskSpec(
            name=name,
            duration=rng.uniform(duration_low, duration_high)))
    for i, producer in enumerate(names):
        for consumer in names[i + 1:]:
            if rng.random() < edge_probability:
                graph.add_edge(producer, consumer, nbytes=edge_bytes)
    return graph

"""Workload generators and the paper's named deployment scenarios."""

from repro.workloads.chaos import (
    ChaosReport,
    default_chaos_seeds,
    run_chaos,
    run_chaos_sweep,
    run_federation_chaos,
    run_federation_sweep,
    run_signature,
)
from repro.workloads.generators import (
    lognormal_sizes,
    populate_collection,
    random_task_graph,
    sleep_bag_flow,
    sleep_chain_flow,
    uniform_sizes,
)
from repro.workloads.scenarios import (
    Scenario,
    bbsrc_scenario,
    cms_scenario,
    scec_scenario,
    ucsd_library_scenario,
)
from repro.workloads.traffic import (
    TrafficGenerator,
    TrafficProfile,
    TrafficStats,
    pareto_gaps,
    run_saturation_curve,
    run_saturation_point,
)

__all__ = [
    "populate_collection", "uniform_sizes", "lognormal_sizes",
    "sleep_bag_flow", "sleep_chain_flow", "random_task_graph",
    "Scenario", "bbsrc_scenario", "cms_scenario", "scec_scenario",
    "ucsd_library_scenario",
    "ChaosReport", "run_chaos", "run_chaos_sweep", "run_signature",
    "run_federation_chaos", "run_federation_sweep",
    "default_chaos_seeds",
    "TrafficGenerator", "TrafficProfile", "TrafficStats", "pareto_gaps",
    "run_saturation_point", "run_saturation_curve",
]

"""An open-loop heavy-tailed DGL traffic generator.

The paper positions the DfMS in front of "millions of users" (§1); what
reaches a front end from a population that size is an *open-loop*
arrival stream — new sessions arrive on their own clock whether or not
earlier requests finished, which is exactly the regime where an
admission-free server melts and a gateway must shed. This module
synthesizes that stream against a :class:`~repro.dfms.gateway.
DfMSGateway` (or a bare server — anything with ``submit``):

* **seeded Pareto inter-arrivals** — session arrivals are a renewal
  process with Pareto-distributed gaps (shape ``pareto_alpha``, scaled
  to ``mean_interarrival_s``), giving the bursts and lulls heavy-tailed
  user populations produce. All randomness is drawn from named
  :class:`~repro.sim.rng.RandomStreams` substreams (DGF002);
* **sessions** — each arrival runs a short session process: submit a
  flow, then poll its status a geometric number of times with think
  gaps, occasionally (``sync_fraction``) holding the connection open
  synchronously instead;
* **mixed request types** — async flow submissions, sync submissions,
  and status queries (the dominant type, as in any polling protocol),
  spread across a weighted VO mix.

The generator never blocks on the target's backlog — rejected work is
counted and dropped, like real clients timing out — so offered load is
controlled purely by ``mean_interarrival_s``. :class:`TrafficStats`
accumulates the offered/outcome tallies the saturation benchmark plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dgl.builder import flow_builder
from repro.dgl.model import (
    DataGridRequest,
    FlowStatusQuery,
    RequestAcknowledgement,
)
from repro.sim.rng import RandomStreams

__all__ = ["TrafficProfile", "TrafficStats", "TrafficGenerator",
           "pareto_gaps", "run_saturation_point", "run_saturation_curve"]


def pareto_gaps(rng, alpha: float, mean_s: float):
    """Generator of Pareto(alpha) gaps scaled to a target mean.

    For shape ``alpha > 1`` the Pareto mean is ``xm * alpha/(alpha-1)``,
    so the scale ``xm = mean_s * (alpha-1)/alpha`` hits ``mean_s``
    exactly while keeping the heavy tail.
    """
    if alpha <= 1.0:
        raise ValueError("pareto_alpha must exceed 1 for a finite mean")
    scale = mean_s * (alpha - 1.0) / alpha
    while True:
        yield rng.paretovariate(alpha) * scale


@dataclass
class TrafficProfile:
    """Shape of one offered-load level."""

    #: Mean sim-seconds between session arrivals (the load knob).
    mean_interarrival_s: float = 1.0
    #: Pareto shape for the inter-arrival gaps; lower = heavier tail.
    pareto_alpha: float = 1.5
    #: Probability a session holds its submission open synchronously.
    sync_fraction: float = 0.1
    #: Mean status polls per async session (geometric).
    mean_polls: float = 3.0
    #: Mean think time between a session's consecutive requests.
    think_s: float = 0.5
    #: VO name -> arrival weight (sessions draw their VO from this mix).
    vo_mix: Dict[str, float] = field(
        default_factory=lambda: {"vo-a": 3.0, "vo-b": 1.0})
    #: Steps per generated flow and per-step sleep duration.
    flow_steps: int = 2
    step_duration_s: float = 4.0
    #: When set, every flow opens with an ``srb.query`` over this
    #: collection — the hot repeated lookup the cache tier memoizes.
    query_collection: Optional[str] = None


@dataclass
class TrafficStats:
    """Offered/outcome tallies for one generator run."""

    sessions: int = 0
    offered: Dict[str, int] = field(
        default_factory=lambda: {"flow": 0, "status": 0})
    accepted: Dict[str, int] = field(
        default_factory=lambda: {"flow": 0, "status": 0})
    rejected: Dict[str, int] = field(
        default_factory=lambda: {"flow": 0, "status": 0})
    invalid: int = 0
    #: Completed sync submissions: (finish_time, submit→finish seconds).
    sync_latencies: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def offered_total(self) -> int:
        return sum(self.offered.values())


class TrafficGenerator:
    """Open-loop session traffic against one submit target.

    ``target`` needs the gateway/server protocol surface: ``submit`` and
    ``submit_sync``. Construct, then :meth:`start`; drive the clock with
    ``env.run(until=...)`` and read :attr:`stats`.
    """

    def __init__(self, env, target, user_name: str,
                 profile: Optional[TrafficProfile] = None,
                 streams: Optional[RandomStreams] = None,
                 horizon_s: float = 100.0) -> None:
        self.env = env
        self.target = target
        self.user_name = user_name
        self.profile = profile or TrafficProfile()
        streams = streams if streams is not None else RandomStreams(0)
        self._arrival_rng = streams.stream("traffic.arrivals")
        self._session_rng = streams.stream("traffic.sessions")
        self.horizon_s = float(horizon_s)
        self.stats = TrafficStats()
        self._vos = sorted(self.profile.vo_mix)
        self._vo_weights = [self.profile.vo_mix[vo] for vo in self._vos]

    def start(self) -> None:
        """Spawn the arrival process (sessions spawn themselves)."""
        self.env.process(self._arrivals())

    # -- internals -------------------------------------------------------------

    def _flow(self, session_id: int):
        profile = self.profile
        builder = flow_builder(f"traffic-{session_id}")
        if profile.query_collection is not None:
            builder.step("lookup", "srb.query",
                         collection=profile.query_collection)
        for index in range(profile.flow_steps):
            builder.step(f"s{index}", "dgl.sleep",
                         duration=profile.step_duration_s)
        return builder.build()

    def _request(self, body, vo: str,
                 asynchronous: bool = True) -> DataGridRequest:
        return DataGridRequest(user=self.user_name,
                               virtual_organization=vo, body=body,
                               asynchronous=asynchronous)

    def _arrivals(self):
        gaps = pareto_gaps(self._arrival_rng, self.profile.pareto_alpha,
                           self.profile.mean_interarrival_s)
        for gap in gaps:
            if self.env.now + gap >= self.horizon_s:
                return
            yield self.env.timeout(gap)
            self.stats.sessions += 1
            self.env.process(self._session(self.stats.sessions))

    def _classify(self, kind: str, response) -> None:
        stats = self.stats
        stats.offered[kind] += 1
        if response.is_rejection:
            stats.rejected[kind] += 1
        elif (isinstance(response.body, RequestAcknowledgement)
                and not response.body.valid):
            stats.invalid += 1
        else:
            stats.accepted[kind] += 1

    def _session(self, session_id: int):
        """One user session: a submission plus follow-up status polls."""
        rng = self._session_rng
        profile = self.profile
        vo = rng.choices(self._vos, weights=self._vo_weights)[0]
        flow = self._flow(session_id)
        if rng.random() < profile.sync_fraction:
            started = self.env.now
            response = yield from self.target.submit_sync(
                self._request(flow, vo, asynchronous=False))
            self._classify("flow", response)
            if not response.is_rejection:
                self.stats.sync_latencies.append(
                    (self.env.now, self.env.now - started))
            return
        response = self.target.submit(self._request(flow, vo))
        self._classify("flow", response)
        if response.is_rejection or not response.body.valid:
            return
        request_id = response.request_id
        # Geometric poll count with mean profile.mean_polls.
        stop = 1.0 / (1.0 + profile.mean_polls)
        while rng.random() >= stop:
            yield self.env.timeout(
                rng.expovariate(1.0 / profile.think_s))
            poll = self.target.submit(self._request(
                FlowStatusQuery(request_id=request_id, max_depth=0), vo))
            self._classify("status", poll)


def run_saturation_point(arrival_rate: float, seed: int = 0,
                         horizon_s: float = 60.0, workers: int = 4,
                         queue_limit: int = 32,
                         cache: bool = True,
                         drain_s: float = 120.0,
                         profile: Optional[TrafficProfile] = None
                         ) -> Dict[str, object]:
    """One offered-load point of the gateway saturation curve.

    Builds a fresh CMS scenario, fronts its server with a
    :class:`~repro.dfms.gateway.DfMSGateway` (cache tier attached unless
    ``cache=False``), offers ``arrival_rate`` sessions/s of heavy-tailed
    traffic for ``horizon_s``, then lets admitted work drain. Returns
    the plain-dict measurements the benchmark and CLI plot.
    """
    from repro.dfms.cache import attach_cache
    from repro.dfms.gateway import DfMSGateway, VOPolicy
    from repro.telemetry.instrument import attach_telemetry
    from repro.telemetry.slo import quantile
    from repro.workloads.scenarios import cms_scenario

    scenario = cms_scenario(n_tier1=2, n_tier2_per_t1=1, n_events=0,
                            seed=seed)
    attach_telemetry(scenario.env, server=scenario.server,
                     dgms=scenario.dgms)
    tier = attach_cache(scenario.dgms) if cache else None
    gateway = DfMSGateway(
        scenario.env, scenario.server, workers=workers,
        queue_limit=queue_limit,
        # Generous buckets: this sweep measures queue saturation, so
        # sheds should come from the bound, not per-VO throttling.
        default_policy=VOPolicy(rate=max(4.0 * arrival_rate, 10.0),
                                burst=max(8.0 * arrival_rate, 20.0)))
    shape = profile or TrafficProfile()
    shape.mean_interarrival_s = 1.0 / arrival_rate
    if shape.query_collection is None and scenario.collections:
        shape.query_collection = scenario.collections[0]
    user = scenario.users[sorted(scenario.users)[0]]
    generator = TrafficGenerator(scenario.env, gateway,
                                 user.qualified_name, shape,
                                 streams=RandomStreams(seed),
                                 horizon_s=horizon_s)
    generator.start()
    scenario.env.run(until=horizon_s + drain_s)
    stats = generator.stats
    sojourns = gateway.sojourns
    return {
        "arrival_rate": arrival_rate,
        "offered": stats.offered_total,
        "offered_rate": stats.offered_total / horizon_s,
        "sessions": stats.sessions,
        "admitted": gateway.admitted,
        "completed": gateway.completed,
        "succeeded": gateway.succeeded,
        "goodput_rate": gateway.succeeded / horizon_s,
        "shed": dict(gateway.sheds),
        "shed_total": sum(gateway.sheds.values()),
        "p99_sojourn_s": quantile(sojourns, 0.99) if sojourns else 0.0,
        "p50_sojourn_s": quantile(sojourns, 0.50) if sojourns else 0.0,
        "peak_queue_depth": gateway.peak_depth,
        "final_queue_depth": gateway.queue_depth,
        "cache_hit_rate": tier.hit_rate if tier is not None else None,
    }


def run_saturation_curve(arrival_rates, seed: int = 0,
                         horizon_s: float = 60.0, workers: int = 4,
                         queue_limit: int = 32, cache: bool = True,
                         jobs: Optional[int] = None
                         ) -> List[Dict[str, object]]:
    """:func:`run_saturation_point` per rate, farmed across cores."""
    from repro.farm import run_farm

    return run_farm(run_saturation_point, list(arrival_rates), jobs=jobs,
                    kwargs={"seed": seed, "horizon_s": horizon_s,
                            "workers": workers, "queue_limit": queue_limit,
                            "cache": cache})

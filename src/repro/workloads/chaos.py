"""Chaos harness: randomized fault schedules against standard scenarios.

The faults subsystem earns its keep only if recovery actually preserves
the datagrid's guarantees under arbitrary (seeded) failure timing. This
module runs the standard CMS exploding-star workload — concurrent staged
replication flows, an ILM fan-out pass, and an audit read pass — under a
:meth:`~repro.faults.model.FaultSchedule.random` schedule with the whole
recovery stack attached (DGMS failover + transfer resume + flow
supervision), then checks the survival invariants:

* **no lost replicas** — every object keeps at least one good replica and
  every good replica's allocation really exists on its physical resource;
* **terminal executions** — every submitted execution reached a terminal
  state (and, with recovery enabled, COMPLETED);
* **complete provenance** — each execution's chain has its start, its
  terminal record, and a completion record per journalled step;
* **accounted faults** — every fault window begin/end pair and every
  recovery action is visible in telemetry.

Everything is seeded, so a violating schedule is a reproducible test
case: rerun :func:`run_chaos` with the reported seed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dgl.builder import flow_builder
from repro.dgl.model import DataGridRequest, ExecutionState
from repro.faults.model import FaultDriver, FaultSchedule, attach_faults
from repro.faults.recovery import (
    FlowSupervisor,
    RecoveryService,
    RetryPolicy,
    attach_recovery,
)
from repro.ilm.engine import ILMManager
from repro.ilm.policy import ILMPolicy, PlacementRule
from repro.sim.rng import RandomStreams
from repro.storage import MB
from repro.telemetry.instrument import (
    attach_observability,
    instrument_scenario,
)
from repro.workloads.scenarios import Scenario, cms_scenario

__all__ = ["ChaosReport", "ObserveReport", "run_chaos", "run_chaos_sweep",
           "run_federation_chaos", "run_federation_sweep",
           "run_signature", "canonical_signature",
           "prove_chaos_order_independence",
           "CHAOS_POLICY", "default_chaos_seeds"]

#: Generous budget: a chaos outage can hold a resource down for a fifth
#: of the horizon, so retries must be able to outwait the longest window
#: (capped delays sum well past it) without spinning hot.
CHAOS_POLICY = RetryPolicy(max_attempts=12, base_delay=1.0, multiplier=2.0,
                           max_delay=30.0, jitter=0.1)


def default_chaos_seeds(count: int = 20) -> List[int]:
    """The seed list the invariant suite sweeps (env-overridable size).

    ``CHAOS_SEEDS`` shrinks or grows the sweep — CI smoke jobs run a
    handful, the acceptance run does at least twenty.
    """
    return list(range(int(os.environ.get("CHAOS_SEEDS", count))))


@dataclass
class ObserveReport:
    """What the observability stack saw during one chaos run.

    Plain lists/dicts/strings throughout so a report still pickles
    cleanly across :func:`repro.farm.run_farm` workers.
    """

    #: Every SLO alert raised, as plain dicts (labels flattened).
    alerts: List[Dict] = field(default_factory=list)
    #: Injected fault windows seen by telemetry, and the subset no
    #: fault-window alert covered (the recall gate asserts it is empty).
    fault_windows: int = 0
    uncovered_windows: List[Tuple] = field(default_factory=list)
    #: Flight-recorder state at the end of the run.
    recorder_records: int = 0
    recorder_dropped: int = 0
    dump_reason: Optional[str] = None
    dump_lines: List[str] = field(default_factory=list)
    #: Full JSONL telemetry export (only when ``observe_export=True``).
    jsonl: List[str] = field(default_factory=list)


@dataclass
class ChaosReport:
    """Outcome of one chaos run: metrics plus invariant violations."""

    seed: int
    faults: bool
    recovery: bool
    makespan: float
    faults_begun: int = 0
    faults_ended: int = 0
    interrupted_transfers: int = 0
    restarts: int = 0
    recovery_actions: Dict[str, int] = field(default_factory=dict)
    executions: Dict[str, str] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    #: Bit-identity fingerprint of the run (see :func:`run_signature`).
    signature: Tuple = ()
    #: Observability results (only when ``run_chaos(observe=True)``).
    observe: Optional[ObserveReport] = None
    #: Schedule-sanitizer summary (only when ``run_chaos(sanitize=...)``):
    #: plain :meth:`~repro.analysis.sanitizer.ScheduleSanitizer.to_dict`.
    sanitizer: Optional[Dict] = None
    #: Order-insensitive fingerprint (see :func:`canonical_signature`);
    #: filled only for sanitized runs — permutation proofs diff this.
    canonical: Tuple = ()

    @property
    def ok(self) -> bool:
        """True when every invariant held."""
        return not self.violations


def run_signature(scenario: Scenario) -> Tuple:
    """A fingerprint that is bit-identical iff two runs behaved the same.

    Covers the clock, every completed transfer's exact float timings, the
    terminal state and finish time of every execution, and the provenance
    record count — enough that any behavioural drift in the no-fault path
    shows up as a signature mismatch.
    """
    transfers = scenario.dgms.transfers
    return (
        scenario.env.now,
        tuple((s.src, s.dst, s.nbytes, s.start_time, s.end_time)
              for s in transfers.completed),
        transfers.total_bytes_moved,
        tuple(sorted((e.request_id, e.state.value, e.finished_at)
                     for e in scenario.server.executions())),
        len(scenario.provenance.records()),
    )


def canonical_signature(scenario: Scenario) -> Tuple:
    """Terminal-outcome fingerprint: what order-independence *means*.

    Permutation proofs diff this, not :func:`run_signature` (which
    stays the exact replay pin). Covered: the makespan, the full
    replica placement of every object (path → sorted physical homes),
    and every execution's terminal state. Deliberately *not* covered:
    exact per-transfer float timings, byte totals, and provenance
    record counts — recovery retries draw backoff jitter from
    substreams *shared* across consumers (``recovery/backoff``,
    ``recovery/supervisor``), so two same-timestamp retries swap their
    jitter values under reordering and attempt counts drift. That
    draw-order sensitivity is pinned, shipped behaviour (the replay
    contract fixes the order); DGF007 exists to keep new code from
    adding more of it. What this signature proves is the paper-level
    guarantee: under *every* legal same-timestamp schedule, the grid
    converges to the same terminal state in the same sim time with all
    survival invariants intact.
    """
    dgms = scenario.dgms
    placement = tuple(sorted(
        (obj.path,
         tuple(sorted(replica.physical_name
                      for replica in obj.good_replicas())))
        for obj in dgms.namespace.iter_objects("/")))
    return (
        scenario.env.now,
        placement,
        tuple(sorted((e.request_id, e.state.value)
                     for e in scenario.server.executions())),
    )


def _coerce_sanitizer(sanitize):
    """Normalize ``run_chaos(sanitize=...)`` to a ScheduleSanitizer.

    Accepts ``None`` (off), ``True`` (default config), a
    :class:`~repro.analysis.sanitizer.SanitizeConfig`, or an existing
    :class:`~repro.analysis.sanitizer.ScheduleSanitizer` (the proof
    driver passes one in so it can read the run's results back).
    Imported lazily so the workload stays importable without the
    analysis package.
    """
    if sanitize is None or sanitize is False:
        return None
    from repro.analysis.sanitizer import SanitizeConfig, ScheduleSanitizer

    if isinstance(sanitize, ScheduleSanitizer):
        return sanitize
    if isinstance(sanitize, SanitizeConfig):
        return ScheduleSanitizer(sanitize)
    return ScheduleSanitizer(SanitizeConfig())


def _track_chaos_state(sanitizer, scenario: Scenario) -> None:
    """Register the shared single-grid state the sanitizer watches."""
    dgms = scenario.dgms
    sanitizer.track_object("dgms.transfers", dgms.transfers)
    sanitizer.track_object("dgms.namespace", dgms.namespace)
    sanitizer.track_object("dgms.resources", dgms.resources)
    sanitizer.track_object("server", scenario.server)
    sanitizer.track_object("provenance", scenario.provenance)


# --------------------------------------------------------------------------
# The workload
# --------------------------------------------------------------------------


def _replicate_flow(name: str, paths: List[str], resource: str):
    builder = flow_builder(name)
    for index, path in enumerate(paths):
        builder.step(f"rep-{index}", "srb.replicate",
                     path=path, resource=resource)
    return builder.build()


def _audit_flow(name: str, paths: List[str], to_domain: str):
    builder = flow_builder(name)
    for index, path in enumerate(paths):
        builder.step(f"get-{index}", "srb.get",
                     path=path, to_domain=to_domain)
    return builder.build()


def _run_workload(scenario: Scenario,
                  supervisor: Optional[FlowSupervisor]) -> None:
    env = scenario.env
    server = scenario.server
    user = scenario.users["physicist"]
    paths = [obj.path for obj in
             scenario.dgms.namespace.iter_objects_in_path_order("/cms/run1")]
    tier1_resources = scenario.extras["tier1_resources"]
    tier2_domain = scenario.extras["tier2"][0]
    tier2_resource = scenario.extras["tier2_resources"][0]

    def submit(flow):
        """Start one flow; returns a process resolving to its execution."""
        request = DataGridRequest(user=user.qualified_name,
                                  virtual_organization="chaos", body=flow,
                                  asynchronous=True)
        if supervisor is not None:
            def _supervised():
                execution = yield from supervisor.run(request)
                return execution
            return env.process(_supervised())
        response = server.submit(request)

        def _unsupervised():
            execution = yield server.wait(response.request_id)
            return execution
        return env.process(_unsupervised())

    def _driver():
        # Stage 1: staged replication, one concurrent flow per tier-1.
        stage1 = [submit(_replicate_flow(f"stage1-{resource}", paths,
                                         resource))
                  for resource in tier1_resources]
        for process in stage1:
            yield process
        # Stage 2: an ILM fan-out pass mirrors everything to a tier-2
        # resource — the months-long lifecycle process, here supervised.
        manager = ILMManager(server)
        manager.add_policy(ILMPolicy(
            name="t2-mirror", collection="/cms/run1", domain=tier2_domain,
            rules=[PlacementRule("fan-out", "replica_count < 4",
                                 "replicate_to", tier2_resource)]))
        yield from manager.run_pass_sync("t2-mirror", user,
                                         supervisor=supervisor)
        # Stage 3: audit reads to a tier-2 domain (exercises the
        # alternate-replica failover path in DGMS.get).
        yield submit(_audit_flow("audit", paths, tier2_domain))

    env.run_process(_driver())


# --------------------------------------------------------------------------
# Invariants
# --------------------------------------------------------------------------


def _check_invariants(scenario: Scenario, driver: Optional[FaultDriver],
                      service: Optional[RecoveryService],
                      supervisor: Optional[FlowSupervisor]) -> List[str]:
    violations: List[str] = []
    dgms = scenario.dgms
    server = scenario.server
    provenance = scenario.provenance
    telemetry = scenario.env.telemetry

    # No lost replicas: the catalog and the physical allocations agree.
    for obj in dgms.namespace.iter_objects("/"):
        good = obj.good_replicas()
        if not good:
            violations.append(f"{obj.path}: no good replicas left")
        for replica in good:
            physical = dgms.resources.physical(replica.physical_name).physical
            if not physical.holds(replica.allocation_id):
                violations.append(
                    f"{obj.path}: replica {replica.allocation_id} missing "
                    f"from {replica.physical_name}")

    # Every execution reached a terminal state; with recovery attached
    # the chaos workload must come out COMPLETED, not merely terminal.
    for execution in server.executions():
        if not execution.state.is_terminal:
            violations.append(
                f"{execution.request_id}: stuck in "
                f"{execution.state.value}")
        elif (service is not None
              and execution.state is not ExecutionState.COMPLETED):
            violations.append(
                f"{execution.request_id}: {execution.state.value} despite "
                f"recovery ({execution.error})")

    # Provenance chain complete: start, terminal record, and one
    # completion record per journalled step instance.
    for execution in server.executions():
        kinds = {record.operation
                 for record in provenance.for_subject(execution.request_id)}
        if "execution_started" not in kinds:
            violations.append(
                f"{execution.request_id}: provenance missing "
                "execution_started")
        if execution.state.is_terminal:
            terminal = f"execution_{execution.state.value}"
            if terminal not in kinds:
                violations.append(
                    f"{execution.request_id}: provenance missing {terminal}")
        for key in execution.journal:
            step_kinds = {record.operation for record in provenance.
                          for_subject(f"{execution.request_id}/{key}")}
            if not step_kinds & {"step_completed", "step_replayed"}:
                violations.append(
                    f"{execution.request_id}/{key}: journalled step has no "
                    "completion provenance")

    # Every fault window opened, closed, and left a telemetry pair; every
    # recovery action was mirrored into the telemetry log.
    if driver is not None:
        if driver.begun != len(driver.schedule):
            violations.append(
                f"{driver.begun}/{len(driver.schedule)} fault windows began")
        if driver.ended != driver.begun:
            violations.append(
                f"{driver.ended}/{driver.begun} fault windows ended")
        if telemetry is not None:
            begins = len(telemetry.log.of_kind("fault.begin"))
            ends = len(telemetry.log.of_kind("fault.end"))
            if begins != driver.begun or ends != driver.ended:
                violations.append(
                    f"telemetry saw {begins} begins/{ends} ends for "
                    f"{driver.begun}/{driver.ended} fault transitions")
    if service is not None and telemetry is not None:
        logged = sum(len(telemetry.log.of_kind(f"recovery.{kind}"))
                     for kind in service.counts)
        if logged != service.total_actions:
            violations.append(
                f"telemetry logged {logged} of {service.total_actions} "
                "recovery actions")
    return violations


# --------------------------------------------------------------------------
# Entry point
# --------------------------------------------------------------------------


def run_chaos(seed: int, faults: bool = True, recovery: bool = True,
              n_fault_events: int = 6, horizon: float = 40.0,
              n_events: int = 4, event_size: float = 16 * MB,
              schedule: Optional[FaultSchedule] = None,
              observe: bool = False,
              observe_dump_path: Optional[str] = None,
              observe_export: bool = False,
              cache: bool = False,
              sanitize=None) -> ChaosReport:
    """One chaos run: CMS workload under a seeded fault schedule.

    ``faults=False`` runs the identical workload with no schedule
    attached (the bit-identity baseline); ``recovery=False`` leaves the
    grid fail-fast so the damage a schedule does is measurable. Pass an
    explicit ``schedule`` to replay a known one instead of drawing a
    random schedule from the seed.

    ``observe=True`` attaches the full observability stack (flight
    recorder + SLO engine) on top of telemetry, evaluates the probes
    after the run, and fills :attr:`ChaosReport.observe`. The recorder
    auto-dumps on an invariant violation (to ``observe_dump_path`` when
    set, and on demand at end of run when a path is given);
    ``observe_export=True`` additionally keeps the run's full JSONL
    telemetry export on the report for trace reconstruction. The stack
    is read-only: an observed run's :func:`run_signature` is
    bit-identical to an unobserved one (gated by
    ``benchmarks/test_e23_observability.py``).

    ``cache=True`` attaches the memoizing DGMS cache tier
    (:func:`repro.dfms.cache.attach_cache`); its TTLs tick in sim time
    and its invalidation is precise, so a cached run's signature must
    also be bit-identical — ``benchmarks/test_e24_gateway.py`` sweeps
    this against the pinned baseline.

    ``sanitize`` attaches the schedule sanitizer
    (:mod:`repro.analysis.sanitizer`): ``True`` or a ``SanitizeConfig``
    for race detection (and, with ``permute=True``, schedule
    permutation), or a ``ScheduleSanitizer`` instance the caller wants
    to read results back from. With permutation off the dispatch order
    is untouched, so a sanitized run's :func:`run_signature` stays
    bit-identical to an unsanitized one; the report gains
    :attr:`ChaosReport.sanitizer` and :attr:`ChaosReport.canonical`.
    """
    scenario = cms_scenario(n_tier1=2, n_tier2_per_t1=1, n_events=n_events,
                            event_size=event_size, seed=seed)
    instrument_scenario(scenario)
    if cache:
        from repro.dfms.cache import attach_cache
        attach_cache(scenario.dgms)
    obs = None
    if observe:
        obs = attach_observability(scenario.env, server=scenario.server,
                                   dgms=scenario.dgms,
                                   dump_path=observe_dump_path)
    sanitizer = _coerce_sanitizer(sanitize)
    if sanitizer is not None:
        sanitizer.attach(scenario.env)
        _track_chaos_state(sanitizer, scenario)
    streams = RandomStreams(seed)
    if sanitizer is not None:
        # Before any consumer pulls a substream, so the recovery
        # backoff/supervisor draws (the shared-stream hazard DGF007
        # exists for) are draw-tracked.
        sanitizer.track_streams(streams)
    driver = None
    if faults:
        if schedule is None:
            schedule = FaultSchedule.random(streams, scenario.dgms, horizon,
                                            n_events=n_fault_events)
        driver = attach_faults(scenario.dgms, schedule, streams)
    service = None
    supervisor = None
    if recovery:
        service = attach_recovery(scenario.dgms, streams,
                                  policy=CHAOS_POLICY)
        supervisor = FlowSupervisor(scenario.server, streams,
                                    policy=CHAOS_POLICY, recovery=service)
    _run_workload(scenario, supervisor)
    makespan = scenario.env.now
    # Drain any fault windows still open past the workload's end so the
    # invariant check sees the restored (and fully accounted) grid.
    scenario.env.run()
    report = ChaosReport(
        seed=seed, faults=faults, recovery=recovery, makespan=makespan,
        faults_begun=driver.begun if driver else 0,
        faults_ended=driver.ended if driver else 0,
        interrupted_transfers=scenario.dgms.transfers.interrupted_count,
        restarts=supervisor.restarts if supervisor else 0,
        recovery_actions=dict(service.counts) if service else {},
        executions={execution.request_id: execution.state.value
                    for execution in scenario.server.executions()},
        signature=run_signature(scenario),
    )
    report.violations = _check_invariants(scenario, driver, service,
                                          supervisor)
    if sanitizer is not None:
        sanitizer.detach()
        report.sanitizer = sanitizer.to_dict()
        # A permuted schedule that breaks a survival invariant must
        # refute the proof even if the terminal placement matches.
        report.canonical = (canonical_signature(scenario)
                            + (tuple(report.violations),))
    if obs is not None:
        report.observe = _observe_report(obs, report, observe_export)
    return report


def prove_chaos_order_independence(seed: int, *, order: str = "reverse",
                                   permute_seed: int = 0,
                                   max_runs: int = 40, **kwargs):
    """Prove (or refute with a minimized witness) that the chaos run for
    ``seed`` is independent of legal same-timestamp dispatch order.

    Drives :func:`repro.analysis.sanitizer.prove_order_independence`
    over fresh :func:`run_chaos` instances, diffing
    :func:`canonical_signature`; ``kwargs`` forward to every run (e.g.
    ``horizon=``, ``n_fault_events=``). Returns a
    :class:`~repro.analysis.sanitizer.PermutationProof`.
    """
    from repro.analysis.sanitizer import (
        ScheduleSanitizer,
        prove_order_independence,
    )

    def _run(config):
        sanitizer = ScheduleSanitizer(config)
        report = run_chaos(seed, sanitize=sanitizer, **kwargs)
        return report.canonical, sanitizer

    return prove_order_independence(_run, order=order,
                                    permute_seed=permute_seed,
                                    max_runs=max_runs)


def _observe_report(obs, report: ChaosReport,
                    export: bool) -> ObserveReport:
    """Evaluate the SLO probes and snapshot the recorder for one run."""
    from repro.telemetry.exporters import jsonl_lines
    from repro.telemetry.slo import fault_coverage

    obs.slo.evaluate()
    windows, uncovered = fault_coverage(obs.slo)
    recorder = obs.recorder
    if report.violations:
        recorder.record("chaos.invariant_violation",
                        {"seed": report.seed,
                         "violations": list(report.violations)})
        recorder.dump("invariant-violation")
    elif recorder.dump_path is not None:
        # CI's smoke job uploads the on-demand dump as an artifact.
        recorder.dump("on-demand")
    return ObserveReport(
        alerts=[{"probe": alert.probe, "severity": alert.severity,
                 "time": alert.time, "window": alert.window,
                 "value": alert.value, "threshold": alert.threshold,
                 "labels": dict(alert.labels), "message": alert.message}
                for alert in obs.slo.alerts],
        fault_windows=len(windows),
        uncovered_windows=list(uncovered),
        recorder_records=len(recorder.ring),
        recorder_dropped=recorder.dropped,
        dump_reason=recorder.last_dump_reason,
        dump_lines=list(recorder.last_dump),
        jsonl=jsonl_lines(obs.telemetry) if export else [],
    )


def run_chaos_sweep(seeds: Optional[List[int]] = None,
                    jobs: Optional[int] = None,
                    **kwargs) -> List[ChaosReport]:
    """The chaos sweep: :func:`run_chaos` for every seed, farmed out.

    This is the parallel face of the invariant suite. Each seed's run is
    fully determined by the seed (bit-identity is what the chaos suite
    *checks*), shares nothing with other seeds, and a
    :class:`~repro.workloads.chaos.ChaosReport` pickles cleanly — so the
    sweep rides :func:`repro.farm.run_farm` across all cores. Reports come
    back in seed order and are byte-identical to running the same seeds
    serially (``jobs=1`` *is* the serial loop; ``tests/test_farm.py`` and
    ``benchmarks/test_e22_kernel.py`` hold the two paths equal).

    ``seeds`` defaults to :func:`default_chaos_seeds`; ``jobs`` defaults
    to every available core; ``kwargs`` are forwarded to every
    :func:`run_chaos` call.
    """
    from repro.farm import run_farm

    if seeds is None:
        seeds = default_chaos_seeds()
    return run_farm(run_chaos, seeds, jobs=jobs, kwargs=kwargs)


def run_federation_chaos(seed: int, **kwargs):
    """Multi-zone chaos: one seeded federation run (thin forwarder).

    The zone-scoped counterpart of :func:`run_chaos` — cross-zone copy
    workloads under :class:`~repro.faults.model.ZoneOutage` /
    :class:`~repro.faults.model.BridgeDegradation` schedules, with the
    federation survival invariants checked. Lives in
    :mod:`repro.federation.chaos` (which borrows this module's
    :data:`CHAOS_POLICY`); imported lazily here so the single-grid chaos
    harness stays importable without the federation package.
    """
    from repro.federation.chaos import run_federation_chaos as run

    return run(seed, **kwargs)


def run_federation_sweep(seeds: Optional[List[int]] = None,
                         jobs: Optional[int] = None, **kwargs):
    """Multi-zone chaos sweep, farmed like :func:`run_chaos_sweep`
    (thin forwarder to :mod:`repro.federation.chaos`)."""
    from repro.federation.chaos import run_federation_sweep as run

    return run(seeds=seeds, jobs=jobs, **kwargs)

"""Unique identifier generation.

The paper requires every DGL transaction to produce "a unique identifier that
can be used to query the status of any task in the workflow at any level of
granularity" (Appendix A). This module provides deterministic, human-readable
identifiers so tests and benchmarks are reproducible run-to-run.

Identifiers look like ``dgr-000017`` (prefix + zero-padded counter). A single
:class:`IdFactory` hands out independent counters per prefix.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator


class IdFactory:
    """Hands out unique, deterministic identifiers, one counter per prefix.

    >>> ids = IdFactory()
    >>> ids.next("dgr")
    'dgr-000001'
    >>> ids.next("dgr")
    'dgr-000002'
    >>> ids.next("flow")
    'flow-000001'
    """

    def __init__(self, width: int = 6) -> None:
        self._width = width
        self._counters: Dict[str, Iterator[int]] = {}

    def next(self, prefix: str) -> str:
        """Return the next identifier for ``prefix``."""
        counter = self._counters.get(prefix)
        if counter is None:
            counter = itertools.count(1)
            self._counters[prefix] = counter
        return f"{prefix}-{next(counter):0{self._width}d}"

    def reset(self) -> None:
        """Forget all counters (identifiers restart at 1)."""
        self._counters.clear()


#: Process-wide default factory, for callers that do not manage their own.
DEFAULT_FACTORY = IdFactory()


def next_id(prefix: str) -> str:
    """Return the next identifier for ``prefix`` from the default factory."""
    return DEFAULT_FACTORY.next(prefix)

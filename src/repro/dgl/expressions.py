"""The DGL expression language.

DGL documents embed small expressions in three places:

* **templates** in operation parameters — ``"/archive/${site}/file-${i}.dat"``;
* **tconditions** in user-defined rules — "a usually simple string that is
  evaluated", possibly referencing DGL variables (Appendix A);
* loop/switch control expressions — ``${count < 10}``.

Expressions inside ``${...}`` are parsed with Python's :mod:`ast` and
evaluated against the flow's variable scope by a strict whitelist
interpreter: literals, variable names, arithmetic, comparisons, boolean
logic, unary ops, and indexing. No calls, no attribute access, no
comprehensions — a DGL document can never execute arbitrary code.
"""

from __future__ import annotations

import ast
import re
from typing import Any, Mapping, Optional, Union

from repro.errors import ExpressionError

__all__ = ["Scope", "evaluate", "render_template", "evaluate_condition"]


class Scope:
    """A chain of variable bindings with lexical lookup.

    Each :class:`~repro.dgl.model.Flow` opens a scope; lookups walk outward
    to the parent, matching "each flow is like a block of code in modern
    programming languages with its own variable scope" (§4).
    """

    def __init__(self, parent: Optional["Scope"] = None) -> None:
        self.parent = parent
        self._bindings: dict = {}

    def declare(self, name: str, value: Any) -> None:
        """Introduce ``name`` in *this* scope (shadows outer bindings)."""
        self._bindings[name] = value

    def lookup(self, name: str) -> Any:
        """Innermost binding of ``name``."""
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope._bindings:
                return scope._bindings[name]
            scope = scope.parent
        raise ExpressionError(f"undefined DGL variable {name!r}")

    def assign(self, name: str, value: Any) -> None:
        """Rebind the innermost existing ``name`` (declare here if new)."""
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope._bindings:
                scope._bindings[name] = value
                return
            scope = scope.parent
        self._bindings[name] = value

    def __contains__(self, name: str) -> bool:
        try:
            self.lookup(name)
            return True
        except ExpressionError:
            return False

    def flatten(self) -> dict:
        """All visible bindings (inner shadowing outer)."""
        chain = []
        scope: Optional[Scope] = self
        while scope is not None:
            chain.append(scope._bindings)
            scope = scope.parent
        merged: dict = {}
        for bindings in reversed(chain):
            merged.update(bindings)
        return merged


# --------------------------------------------------------------------------
# Whitelist evaluator
# --------------------------------------------------------------------------

_BIN_OPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.Pow: lambda a, b: a ** b,
}

_CMP_OPS = {
    ast.Eq: lambda a, b: a == b,
    ast.NotEq: lambda a, b: a != b,
    ast.Lt: lambda a, b: a < b,
    ast.LtE: lambda a, b: a <= b,
    ast.Gt: lambda a, b: a > b,
    ast.GtE: lambda a, b: a >= b,
    ast.In: lambda a, b: a in b,
    ast.NotIn: lambda a, b: a not in b,
}

_CONSTANTS = {"true": True, "false": False, "null": None}


def _eval_node(node: ast.AST, scope: Union[Scope, Mapping]) -> Any:
    if isinstance(node, ast.Expression):
        return _eval_node(node.body, scope)
    if isinstance(node, ast.Constant):
        if isinstance(node.value, (str, int, float, bool)) or node.value is None:
            return node.value
        raise ExpressionError(f"literal type not allowed: {node.value!r}")
    if isinstance(node, ast.Name):
        if node.id in _CONSTANTS:
            return _CONSTANTS[node.id]
        if isinstance(scope, Scope):
            return scope.lookup(node.id)
        try:
            return scope[node.id]
        except KeyError:
            raise ExpressionError(f"undefined DGL variable {node.id!r}") from None
    if isinstance(node, ast.BinOp):
        op = _BIN_OPS.get(type(node.op))
        if op is None:
            raise ExpressionError(f"operator not allowed: {ast.dump(node.op)}")
        return op(_eval_node(node.left, scope), _eval_node(node.right, scope))
    if isinstance(node, ast.UnaryOp):
        operand = _eval_node(node.operand, scope)
        if isinstance(node.op, ast.USub):
            return -operand
        if isinstance(node.op, ast.UAdd):
            return +operand
        if isinstance(node.op, ast.Not):
            return not operand
        raise ExpressionError(f"unary operator not allowed: {ast.dump(node.op)}")
    if isinstance(node, ast.BoolOp):
        values = [_eval_node(v, scope) for v in node.values]
        if isinstance(node.op, ast.And):
            result = True
            for value in values:
                result = result and value
            return result
        result = False
        for value in values:
            result = result or value
        return result
    if isinstance(node, ast.Compare):
        left = _eval_node(node.left, scope)
        for op_node, comparator in zip(node.ops, node.comparators):
            op = _CMP_OPS.get(type(op_node))
            if op is None:
                raise ExpressionError(f"comparison not allowed: {ast.dump(op_node)}")
            right = _eval_node(comparator, scope)
            if not op(left, right):
                return False
            left = right
        return True
    if isinstance(node, ast.IfExp):
        condition = _eval_node(node.test, scope)
        return _eval_node(node.body if condition else node.orelse, scope)
    if isinstance(node, ast.Subscript):
        container = _eval_node(node.value, scope)
        index = _eval_node(node.slice, scope)
        try:
            return container[index]
        except (KeyError, IndexError, TypeError) as exc:
            raise ExpressionError(f"bad subscript: {exc}") from None
    if isinstance(node, (ast.List, ast.Tuple)):
        return [_eval_node(item, scope) for item in node.elts]
    raise ExpressionError(f"syntax not allowed in DGL expressions: "
                          f"{type(node).__name__}")


def evaluate(expression: str, scope: Union[Scope, Mapping]) -> Any:
    """Evaluate a bare DGL expression (no ``${}`` wrapper) against ``scope``."""
    try:
        tree = ast.parse(expression.strip(), mode="eval")
    except SyntaxError as exc:
        raise ExpressionError(f"cannot parse expression {expression!r}: {exc}") from None
    return _eval_node(tree, scope)


_TEMPLATE_RE = re.compile(r"\$\{([^{}]*)\}")


def render_template(template: Any, scope: Union[Scope, Mapping]) -> Any:
    """Expand ``${...}`` occurrences in ``template``.

    * Non-strings pass through unchanged.
    * A template that is *exactly* one ``${expr}`` returns the expression's
      typed value (so numeric parameters stay numeric).
    * Otherwise each occurrence is stringified into the surrounding text.
    """
    if not isinstance(template, str):
        return template
    full = _TEMPLATE_RE.fullmatch(template.strip())
    if full is not None:
        return evaluate(full.group(1), scope)

    def _sub(match: re.Match) -> str:
        return str(evaluate(match.group(1), scope))

    return _TEMPLATE_RE.sub(_sub, template)


def evaluate_condition(condition: str, scope: Union[Scope, Mapping]) -> Any:
    """Evaluate a tcondition.

    Conditions are written either as a bare expression (``count < 10``) or
    with template syntax (``${count < 10}``); both forms are accepted.
    """
    condition = condition.strip()
    if _TEMPLATE_RE.fullmatch(condition):
        return render_template(condition, scope)
    return evaluate(condition, scope)

"""Fluent construction of DGL flows.

The paper pairs a GUI IDE for novices with "an API based interface for
developers and expert users" (§3.1); this builder is that API surface.
It reads top-to-bottom like the flow it describes::

    flow = (
        flow_builder("nightly-archive")
        .for_each("f", collection="/ingest", query="meta:stage = 'raw'")
        .step("copy", "srb.replicate", path="${f}", resource="tape")
        .step("mark", "srb.set_metadata", path="${f}",
              attribute="stage", value="archived")
        .build()
    )
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.errors import DGLValidationError
from repro.dgl.model import (
    AFTER_EXIT,
    BEFORE_ENTRY,
    Action,
    Flow,
    FlowLogic,
    ForEach,
    Operation,
    Parallel,
    Repeat,
    Sequential,
    Step,
    SwitchCase,
    UserDefinedRule,
    Variable,
    WhileLoop,
)
from repro.dgl.schema import validate_flow

__all__ = ["FlowBuilder", "flow_builder", "operation"]


def operation(name: str, assign_to: Optional[str] = None,
              **parameters) -> Operation:
    """Shorthand for constructing an :class:`Operation`."""
    return Operation(name=name, parameters=parameters, assign_to=assign_to)


class FlowBuilder:
    """Accumulates a flow's pattern, variables, children, and rules."""

    def __init__(self, name: str) -> None:
        self._name = name
        self._pattern = None
        self._variables: list = []
        self._children: list = []
        self._rules: list = []

    # -- control patterns (choose at most one) -------------------------------

    def _set_pattern(self, pattern) -> "FlowBuilder":
        if self._pattern is not None:
            raise DGLValidationError(
                f"flow {self._name!r} already has a control pattern")
        self._pattern = pattern
        return self

    def sequential(self) -> "FlowBuilder":
        """Children run one after another (the default)."""
        return self._set_pattern(Sequential())

    def parallel(self, max_concurrent: int = 0) -> "FlowBuilder":
        """Children run concurrently (optionally bounded)."""
        return self._set_pattern(Parallel(max_concurrent=max_concurrent))

    def while_loop(self, condition: str) -> "FlowBuilder":
        """Children repeat while ``condition`` holds."""
        return self._set_pattern(WhileLoop(condition=condition))

    def repeat(self, count: Union[int, str]) -> "FlowBuilder":
        """Children repeat ``count`` times (int or expression)."""
        return self._set_pattern(Repeat(count=count))

    def for_each(self, item_variable: str, collection: Optional[str] = None,
                 query: Optional[str] = None,
                 items: Optional[str] = None) -> "FlowBuilder":
        """Children repeat once per matching object / list item."""
        return self._set_pattern(ForEach(
            item_variable=item_variable, collection=collection,
            query=query, items=items))

    def switch(self, expression: str,
               default: Optional[str] = None) -> "FlowBuilder":
        """Run the child named by ``expression``'s value."""
        return self._set_pattern(SwitchCase(expression=expression,
                                            default=default))

    # -- contents -------------------------------------------------------------

    def variable(self, name: str, value=None) -> "FlowBuilder":
        """Declare a variable in this flow's scope."""
        self._variables.append(Variable(name=name, value=value))
        return self

    def step(self, name: str, operation_name: str,
             assign_to: Optional[str] = None,
             requirements: Optional[Dict] = None,
             **parameters) -> "FlowBuilder":
        """Append a step executing one operation."""
        self._children.append(Step(
            name=name,
            operation=Operation(name=operation_name, parameters=parameters,
                                assign_to=assign_to),
            requirements=requirements or {}))
        return self

    def add_step(self, step: Step) -> "FlowBuilder":
        """Append an already-built step."""
        self._children.append(step)
        return self

    def subflow(self, flow: Union[Flow, "FlowBuilder"]) -> "FlowBuilder":
        """Append a nested flow."""
        if isinstance(flow, FlowBuilder):
            flow = flow.build(validate=False)
        self._children.append(flow)
        return self

    # -- rules ------------------------------------------------------------------

    def rule(self, rule: UserDefinedRule) -> "FlowBuilder":
        """Attach an arbitrary user-defined rule."""
        self._rules.append(rule)
        return self

    def before_entry(self, action_operation: Operation,
                     condition: str = "true",
                     action_name: str = "run") -> "FlowBuilder":
        """Shorthand for the reserved ``beforeEntry`` rule."""
        return self.rule(UserDefinedRule(
            name=BEFORE_ENTRY, condition=condition,
            actions=[Action(name=action_name, operation=action_operation)]))

    def after_exit(self, action_operation: Operation,
                   condition: str = "true",
                   action_name: str = "run") -> "FlowBuilder":
        """Shorthand for the reserved ``afterExit`` rule."""
        return self.rule(UserDefinedRule(
            name=AFTER_EXIT, condition=condition,
            actions=[Action(name=action_name, operation=action_operation)]))

    # -- build --------------------------------------------------------------------

    def build(self, validate: bool = True) -> Flow:
        """Produce the :class:`Flow` (validating unless told not to)."""
        flow = Flow(
            name=self._name,
            logic=FlowLogic(pattern=self._pattern or Sequential(),
                            rules=list(self._rules)),
            variables=list(self._variables),
            children=list(self._children))
        if validate:
            validate_flow(flow)
        return flow


def flow_builder(name: str) -> FlowBuilder:
    """Start building a flow called ``name``."""
    return FlowBuilder(name)

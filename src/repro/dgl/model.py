"""The DGL document object model.

Mirrors Appendix A of the paper:

* a :class:`DataGridRequest` carries document metadata, the grid user and
  virtual organization, and either a :class:`Flow` or a
  :class:`FlowStatusQuery` (paper Fig. 2);
* a :class:`Flow` is a recursive control structure with three sections —
  Variables, FlowLogic, and Children (sub-flows *or* steps, never both)
  (paper Fig. 1);
* :class:`FlowLogic` is a choice of control pattern plus user-defined
  ECA rules, including the reserved ``beforeEntry`` / ``afterExit`` hooks
  (paper Fig. 3);
* a :class:`Step` is a concrete action: variables + rules + exactly one
  :class:`Operation`;
* a :class:`DataGridResponse` carries either a full :class:`FlowStatus`
  (synchronous requests), a :class:`RequestAcknowledgement`
  (asynchronous requests) (paper Fig. 4), or — from a load-managed
  front end — a :class:`RequestRejection` shedding the request outright.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.errors import DGLValidationError

__all__ = [
    "Variable", "Operation", "Action", "UserDefinedRule",
    "ControlPattern", "Sequential", "Parallel", "WhileLoop", "Repeat",
    "ForEach", "SwitchCase", "FlowLogic", "Step", "Flow",
    "DocumentMetadata", "DataGridRequest", "FlowStatusQuery",
    "ExecutionState", "FlowStatus", "RequestAcknowledgement",
    "RequestRejection", "DataGridResponse", "BEFORE_ENTRY", "AFTER_EXIT",
]

#: Reserved user-defined-rule names (Appendix A).
BEFORE_ENTRY = "beforeEntry"
AFTER_EXIT = "afterExit"


# --------------------------------------------------------------------------
# Building blocks
# --------------------------------------------------------------------------


@dataclass
class Variable:
    """A variable declaration in a Flow's or Step's scope."""

    name: str
    value: Union[str, int, float, None] = None

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise DGLValidationError(
                f"variable name must be an identifier, got {self.name!r}")


@dataclass
class Operation:
    """The atomic action a Step performs.

    ``name`` selects a handler from the operation registry (datagrid
    operations like ``srb.put``, or ``exec`` for business logic). String
    parameter values may contain ``${...}`` templates expanded against the
    step's scope at execution time. ``assign_to`` optionally names a DGL
    variable that receives the operation's result.
    """

    name: str
    parameters: Dict[str, Union[str, int, float, None]] = field(default_factory=dict)
    assign_to: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise DGLValidationError("operation name cannot be empty")
        if self.assign_to is not None and not self.assign_to.isidentifier():
            raise DGLValidationError(
                f"assign_to must be an identifier, got {self.assign_to!r}")


@dataclass
class Action:
    """One named action inside a user-defined rule."""

    name: str
    operation: Operation


@dataclass
class UserDefinedRule:
    """An ECA rule: evaluate ``condition``; run the action it names.

    "Each UserDefinedRule has one condition and can have one or more
    Actions. … The Actions are executed if the condition statement
    evaluates to the name of the action." (Appendix A). A condition that
    evaluates to boolean ``True`` is treated as naming the first action,
    so simple guard-style rules stay terse.
    """

    name: str
    condition: str
    actions: List[Action] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.actions:
            raise DGLValidationError(f"rule {self.name!r} needs at least one action")
        names = [action.name for action in self.actions]
        if len(names) != len(set(names)):
            raise DGLValidationError(
                f"rule {self.name!r} has duplicate action names")


# --------------------------------------------------------------------------
# Control patterns
# --------------------------------------------------------------------------


@dataclass
class Sequential:
    """Children execute one after another."""


@dataclass
class Parallel:
    """Children execute concurrently; the flow completes when all do.

    ``max_concurrent`` optionally bounds the fan-out (0 = unbounded).
    """

    max_concurrent: int = 0

    def __post_init__(self) -> None:
        if self.max_concurrent < 0:
            raise DGLValidationError("max_concurrent cannot be negative")


@dataclass
class WhileLoop:
    """Children execute (in order) repeatedly while ``condition`` holds."""

    condition: str

    def __post_init__(self) -> None:
        if not self.condition.strip():
            raise DGLValidationError("while loop needs a condition")


@dataclass
class Repeat:
    """Children execute ``count`` times (count may be an expression)."""

    count: Union[int, str]


@dataclass
class ForEach:
    """Children execute once per item.

    ``item_variable`` is bound to each item in turn. Items come from either
    ``query`` (a datagrid query in the text form of
    :func:`repro.grid.query.parse_conditions`, run against a collection) or
    ``items`` (an expression evaluating to a list). Exactly one must be set.
    This is the paper's "iterating some set of tasks over collections of
    files … processed according to a datagrid query" (§2.3).
    """

    item_variable: str
    collection: Optional[str] = None
    query: Optional[str] = None
    items: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.item_variable.isidentifier():
            raise DGLValidationError(
                f"item variable must be an identifier, got {self.item_variable!r}")
        has_query = self.collection is not None
        has_items = self.items is not None
        if has_query == has_items:
            raise DGLValidationError(
                "forEach needs exactly one of (collection [+ query]) or items")
        if self.query is not None and self.collection is None:
            raise DGLValidationError("forEach query requires a collection")


@dataclass
class SwitchCase:
    """Evaluate ``expression``; execute the child whose name matches.

    ``default`` optionally names the child to run when no case matches;
    with no match and no default, the flow is a no-op.
    """

    expression: str
    default: Optional[str] = None


#: The closed set of control patterns a FlowLogic may choose from.
ControlPattern = Union[Sequential, Parallel, WhileLoop, Repeat, ForEach, SwitchCase]

_PATTERN_TYPES = (Sequential, Parallel, WhileLoop, Repeat, ForEach, SwitchCase)


@dataclass
class FlowLogic:
    """Control-structure choice + the rules that wrap execution (Fig. 3)."""

    pattern: ControlPattern = field(default_factory=Sequential)
    rules: List[UserDefinedRule] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not isinstance(self.pattern, _PATTERN_TYPES):
            raise DGLValidationError(
                f"unknown control pattern {type(self.pattern).__name__}")
        names = [rule.name for rule in self.rules]
        if len(names) != len(set(names)):
            raise DGLValidationError("duplicate rule names in flowLogic")

    def rule(self, name: str) -> Optional[UserDefinedRule]:
        """The rule called ``name``, if defined."""
        for rule in self.rules:
            if rule.name == name:
                return rule
        return None


# --------------------------------------------------------------------------
# Steps and Flows
# --------------------------------------------------------------------------


@dataclass
class Step:
    """A concrete action: one operation, with its own scope and rules."""

    name: str
    operation: Operation
    variables: List[Variable] = field(default_factory=list)
    rules: List[UserDefinedRule] = field(default_factory=list)
    #: Abstract resource requirements for the scheduler (§2.3: "describe the
    #: requirements in terms of resource types and the service levels").
    requirements: Dict[str, Union[str, int, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise DGLValidationError("step name cannot be empty")

    def rule(self, name: str) -> Optional[UserDefinedRule]:
        """The step's rule called ``name``, if defined."""
        for rule in self.rules:
            if rule.name == name:
                return rule
        return None


@dataclass
class Flow:
    """The recursive control structure of Fig. 1."""

    name: str
    logic: FlowLogic = field(default_factory=FlowLogic)
    variables: List[Variable] = field(default_factory=list)
    children: List[Union["Flow", Step]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise DGLValidationError("flow name cannot be empty")
        kinds = {type(child) for child in self.children}
        if Flow in kinds and Step in kinds:
            raise DGLValidationError(
                f"flow {self.name!r} mixes sub-flows and steps; "
                "children must be one kind (Appendix A)")
        names = [child.name for child in self.children]
        if len(names) != len(set(names)):
            raise DGLValidationError(
                f"flow {self.name!r} has children with duplicate names")

    def child(self, name: str) -> Union["Flow", Step, None]:
        """The direct child named ``name``, or None."""
        for child in self.children:
            if child.name == name:
                return child
        return None

    def count_steps(self) -> int:
        """Total steps in this flow, recursively."""
        total = 0
        for child in self.children:
            total += child.count_steps() if isinstance(child, Flow) else 1
        return total

    def depth(self) -> int:
        """Nesting depth (a flow of steps has depth 1)."""
        child_depths = [child.depth() for child in self.children
                        if isinstance(child, Flow)]
        return 1 + (max(child_depths) if child_depths else 0)


# --------------------------------------------------------------------------
# Requests
# --------------------------------------------------------------------------


@dataclass
class DocumentMetadata:
    """Descriptive header on every DGL document."""

    document_id: Optional[str] = None
    created_at: Optional[float] = None
    description: Optional[str] = None


@dataclass
class FlowStatusQuery:
    """A query on the execution status of a submitted request.

    ``request_id`` is the identifier returned in the acknowledgement;
    ``path`` optionally narrows to one task, at any granularity, as a
    ``/``-joined chain of flow/step names (e.g. ``ingest/stage-2/copy``).
    ``max_depth`` optionally bounds how many levels of children the
    answer includes below the addressed node (``0`` = just that node's
    own state — the cheap poll a monitoring loop wants; ``None`` = the
    full subtree).
    """

    request_id: str
    path: Optional[str] = None
    max_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.request_id:
            raise DGLValidationError("status query needs a request id")
        if self.max_depth is not None and self.max_depth < 0:
            raise DGLValidationError("max_depth cannot be negative")


@dataclass
class DataGridRequest:
    """The top-level request document (Fig. 2)."""

    user: str
    virtual_organization: str
    body: Union[Flow, FlowStatusQuery]
    metadata: DocumentMetadata = field(default_factory=DocumentMetadata)
    #: Asynchronous requests get a RequestAcknowledgement immediately;
    #: synchronous requests block until the flow completes (Appendix A).
    asynchronous: bool = False

    @property
    def is_status_query(self) -> bool:
        return isinstance(self.body, FlowStatusQuery)


# --------------------------------------------------------------------------
# Responses
# --------------------------------------------------------------------------


class ExecutionState(enum.Enum):
    """Lifecycle of a flow, step, or whole request."""

    PENDING = "pending"
    RUNNING = "running"
    PAUSED = "paused"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def is_terminal(self) -> bool:
        return self in (ExecutionState.COMPLETED, ExecutionState.FAILED,
                        ExecutionState.CANCELLED)


@dataclass
class FlowStatus:
    """Recursive status of one flow or step, at any granularity."""

    name: str
    state: ExecutionState
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    #: Loop flows report how many iterations have completed.
    iterations: int = 0
    children: List["FlowStatus"] = field(default_factory=list)

    def find(self, path: str) -> Optional["FlowStatus"]:
        """Descend by ``/``-joined child names ('' or None = self)."""
        if not path:
            return self
        head, _, rest = path.partition("/")
        for child in self.children:
            if child.name == head:
                return child.find(rest)
        return None

    def snapshot(self, max_depth: Optional[int] = None) -> "FlowStatus":
        """A detached copy of this subtree, to ``max_depth`` levels.

        The server's status trees are live (the engine mutates them in
        place), so answers must be copies. ``copy.deepcopy`` walks every
        field through its generic machinery; this hand-rolled copy is
        an order of magnitude cheaper — which matters because status
        polls dominate gateway traffic. ``max_depth=0`` copies just this
        node (children omitted); ``None`` copies everything below.
        """
        if max_depth == 0:
            children: List["FlowStatus"] = []
        else:
            deeper = None if max_depth is None else max_depth - 1
            children = [child.snapshot(deeper) for child in self.children]
        return FlowStatus(
            name=self.name, state=self.state, started_at=self.started_at,
            finished_at=self.finished_at, error=self.error,
            iterations=self.iterations, children=children)


@dataclass
class RequestAcknowledgement:
    """Immediate reply to an asynchronous request (Fig. 4)."""

    request_id: str
    state: ExecutionState
    valid: bool = True
    message: Optional[str] = None


@dataclass
class RequestRejection:
    """A shed response: the request was refused before admission.

    Unlike an invalid-document :class:`RequestAcknowledgement`
    (``valid=False`` — the *document* is wrong), a rejection says the
    document never got looked at: the submitting tenant is out of quota
    (``reason="quota"``) or the service is saturated
    (``reason="overload"``). ``retry_after_s`` is the server's hint for
    when resubmission could succeed (sim seconds; ``None`` = no
    estimate).
    """

    request_id: str
    reason: str
    message: Optional[str] = None
    retry_after_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.reason:
            raise DGLValidationError("rejection needs a reason")


@dataclass
class DataGridResponse:
    """The top-level response document (Fig. 4)."""

    request_id: str
    body: Union[FlowStatus, RequestAcknowledgement, RequestRejection]
    metadata: DocumentMetadata = field(default_factory=DocumentMetadata)

    @property
    def is_acknowledgement(self) -> bool:
        return isinstance(self.body, RequestAcknowledgement)

    @property
    def is_rejection(self) -> bool:
        return isinstance(self.body, RequestRejection)

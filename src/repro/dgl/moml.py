"""MoML interchange: the IDE's modeling language (§3.2, §5).

"A modeling markup language describes datagridflows and stores it locally
for the users to use again or view the datagridflow rendered on the IDE.
MoML, used in Ptolemy II/Kepler, uses this approach. … The user interface
will be defined by the MoML modeling language, with execution taking place
using the DGL."

This module implements that bridge for the structural subset an IDE
manipulates: a datagridflow drawn as a MoML model — nested
``<entity class="datagridflow.Flow">`` composites holding
``<entity class="datagridflow.Step">`` actors, with ``<property>``
elements for the control pattern, variables, and operation parameters —
converts losslessly to and from DGL :class:`~repro.dgl.model.Flow` trees.

Out of the subset (by design): user-defined rules and step requirements
are execution-logic details the paper keeps in DGL, not in the canvas
model; round-tripping a flow that uses them raises so nothing is silently
dropped.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Union

from repro.errors import DGLParseError, DGLValidationError
from repro.dgl.model import (
    Flow,
    FlowLogic,
    ForEach,
    Operation,
    Parallel,
    Repeat,
    Sequential,
    Step,
    SwitchCase,
    Variable,
    WhileLoop,
)

__all__ = ["flow_to_moml", "moml_to_flow"]

_FLOW_CLASS = "datagridflow.Flow"
_STEP_CLASS = "datagridflow.Step"


def _set_typed(element: ET.Element, value) -> None:
    if value is None:
        element.set("type", "null")
        element.set("value", "")
    elif isinstance(value, int) and not isinstance(value, bool):
        element.set("type", "int")
        element.set("value", str(value))
    elif isinstance(value, float):
        element.set("type", "float")
        element.set("value", repr(value))
    else:
        element.set("type", "str")
        element.set("value", str(value))


def _get_typed(element: ET.Element):
    kind = element.get("type", "str")
    text = element.get("value", "")
    if kind == "null":
        return None
    if kind == "int":
        return int(text)
    if kind == "float":
        return float(text)
    return text


def _pattern_properties(pattern, entity: ET.Element) -> None:
    def prop(name: str, value: str) -> None:
        ET.SubElement(entity, "property", name=name, value=value)

    if isinstance(pattern, Sequential):
        prop("flowLogic", "sequential")
    elif isinstance(pattern, Parallel):
        prop("flowLogic", "parallel")
        if pattern.max_concurrent:
            prop("maxConcurrent", str(pattern.max_concurrent))
    elif isinstance(pattern, WhileLoop):
        prop("flowLogic", "while")
        prop("condition", pattern.condition)
    elif isinstance(pattern, Repeat):
        prop("flowLogic", "repeat")
        prop("count", str(pattern.count))
    elif isinstance(pattern, ForEach):
        prop("flowLogic", "forEach")
        prop("itemVariable", pattern.item_variable)
        if pattern.collection is not None:
            prop("collection", pattern.collection)
        if pattern.query is not None:
            prop("query", pattern.query)
        if pattern.items is not None:
            prop("items", pattern.items)
    elif isinstance(pattern, SwitchCase):
        prop("flowLogic", "switch")
        prop("expression", pattern.expression)
        if pattern.default is not None:
            prop("default", pattern.default)
    else:
        raise DGLValidationError(
            f"MoML cannot express pattern {type(pattern).__name__}")


def _flow_entity(flow: Flow) -> ET.Element:
    if flow.logic.rules:
        raise DGLValidationError(
            f"flow {flow.name!r} has user-defined rules; rules are "
            "execution logic and have no MoML representation")
    entity = ET.Element("entity", name=flow.name)
    entity.set("class", _FLOW_CLASS)
    _pattern_properties(flow.logic.pattern, entity)
    for variable in flow.variables:
        var_el = ET.SubElement(entity, "property",
                               name=f"var:{variable.name}")
        _set_typed(var_el, variable.value)
    for child in flow.children:
        if isinstance(child, Flow):
            entity.append(_flow_entity(child))
        else:
            entity.append(_step_entity(child))
    return entity


def _step_entity(step: Step) -> ET.Element:
    if step.rules or step.variables or step.requirements:
        raise DGLValidationError(
            f"step {step.name!r} carries rules/variables/requirements; "
            "those are execution logic and have no MoML representation")
    entity = ET.Element("entity", name=step.name)
    entity.set("class", _STEP_CLASS)
    ET.SubElement(entity, "property", name="operation",
                  value=step.operation.name)
    if step.operation.assign_to is not None:
        ET.SubElement(entity, "property", name="assignTo",
                      value=step.operation.assign_to)
    for name in sorted(step.operation.parameters):
        param = ET.SubElement(entity, "property", name=f"param:{name}")
        _set_typed(param, step.operation.parameters[name])
    return entity


def flow_to_moml(flow: Flow) -> str:
    """Serialize a (structural-subset) flow as a MoML model document."""
    root = _flow_entity(flow)
    ET.indent(root)
    header = ('<?xml version="1.0" standalone="no"?>\n'
              '<!DOCTYPE entity PUBLIC "-//UC Berkeley//DTD MoML 1//EN" '
              '"http://ptolemy.eecs.berkeley.edu/xml/dtd/MoML_1.dtd">\n')
    return header + ET.tostring(root, encoding="unicode")


# --------------------------------------------------------------------------
# Parsing
# --------------------------------------------------------------------------


def _properties(entity: ET.Element) -> dict:
    return {prop.get("name"): prop
            for prop in entity.findall("property")}


def _parse_pattern(properties: dict):
    logic = properties.get("flowLogic")
    kind = logic.get("value") if logic is not None else "sequential"

    def value_of(name: str, default=None):
        prop = properties.get(name)
        return prop.get("value") if prop is not None else default

    if kind == "sequential":
        return Sequential()
    if kind == "parallel":
        return Parallel(max_concurrent=int(value_of("maxConcurrent", "0")))
    if kind == "while":
        condition = value_of("condition")
        if condition is None:
            raise DGLParseError("MoML while flow needs a condition property")
        return WhileLoop(condition=condition)
    if kind == "repeat":
        count_text = value_of("count", "0")
        try:
            count: Union[int, str] = int(count_text)
        except ValueError:
            count = count_text
        return Repeat(count=count)
    if kind == "forEach":
        item = value_of("itemVariable")
        if item is None:
            raise DGLParseError("MoML forEach flow needs itemVariable")
        return ForEach(item_variable=item,
                       collection=value_of("collection"),
                       query=value_of("query"),
                       items=value_of("items"))
    if kind == "switch":
        expression = value_of("expression")
        if expression is None:
            raise DGLParseError("MoML switch flow needs an expression")
        return SwitchCase(expression=expression,
                          default=value_of("default"))
    raise DGLParseError(f"unknown MoML flowLogic {kind!r}")


def _parse_entity(entity: ET.Element) -> Union[Flow, Step]:
    name = entity.get("name")
    if not name:
        raise DGLParseError("MoML entity needs a name")
    entity_class = entity.get("class")
    properties = _properties(entity)
    if entity_class == _STEP_CLASS:
        operation_prop = properties.get("operation")
        if operation_prop is None:
            raise DGLParseError(f"MoML step {name!r} needs an operation")
        parameters = {
            prop_name[len("param:"):]: _get_typed(prop)
            for prop_name, prop in properties.items()
            if prop_name.startswith("param:")}
        assign_prop = properties.get("assignTo")
        return Step(name=name, operation=Operation(
            name=operation_prop.get("value"),
            parameters=parameters,
            assign_to=(assign_prop.get("value")
                       if assign_prop is not None else None)))
    if entity_class == _FLOW_CLASS:
        variables = [Variable(prop_name[len("var:"):], _get_typed(prop))
                     for prop_name, prop in properties.items()
                     if prop_name.startswith("var:")]
        children = [_parse_entity(child)
                    for child in entity.findall("entity")]
        return Flow(name=name,
                    logic=FlowLogic(pattern=_parse_pattern(properties)),
                    variables=variables, children=children)
    raise DGLParseError(f"unknown MoML entity class {entity_class!r}")


def moml_to_flow(text: str) -> Flow:
    """Parse a MoML model document into a DGL flow."""
    # Strip the doctype line(s); ElementTree rejects external DTDs.
    body = "\n".join(line for line in text.splitlines()
                     if not line.lstrip().startswith(("<?xml", "<!DOCTYPE")))
    try:
        root = ET.fromstring(body)
    except ET.ParseError as exc:
        raise DGLParseError(f"malformed MoML: {exc}") from None
    if root.tag != "entity":
        raise DGLParseError(f"expected MoML <entity>, got <{root.tag}>")
    parsed = _parse_entity(root)
    if not isinstance(parsed, Flow):
        raise DGLParseError("top-level MoML entity must be a flow composite")
    return parsed

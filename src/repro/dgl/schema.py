"""DGL schema: semantic validation and structure introspection.

Two jobs:

* :func:`validate_flow` / :func:`validate_request` enforce the structural
  rules of Appendix A that go beyond per-class invariants — unique variable
  names per scope, homogeneous children, switch defaults naming real
  children, well-formed nested rule operations.

* :func:`structure_of` renders the element structure of any DGL model class
  as a text tree **derived from the dataclasses themselves** (via
  :func:`typing.get_type_hints`). The figure-reproduction benchmarks
  (DESIGN.md F1–F4) regenerate the paper's four schema figures from this,
  so the documented structure can never drift from the implementation.
"""

from __future__ import annotations

import dataclasses
import typing
from typing import List, Union

from repro.errors import DGLValidationError
from repro.dgl.model import (
    DataGridRequest,
    Flow,
    FlowStatusQuery,
    Step,
    UserDefinedRule,
)

__all__ = ["validate_flow", "validate_request", "structure_of"]


# --------------------------------------------------------------------------
# Validation
# --------------------------------------------------------------------------


def _check_unique_variables(owner: str, variables) -> None:
    names = [variable.name for variable in variables]
    if len(names) != len(set(names)):
        raise DGLValidationError(f"{owner} declares duplicate variable names")


def _check_rules(owner: str, rules: List[UserDefinedRule]) -> None:
    for rule in rules:
        if not rule.condition.strip():
            raise DGLValidationError(
                f"{owner}: rule {rule.name!r} has an empty condition")


def _validate_step(step: Step, path: str) -> None:
    where = f"step {path!r}"
    _check_unique_variables(where, step.variables)
    _check_rules(where, step.rules)
    for parameter in step.operation.parameters:
        if not parameter:
            raise DGLValidationError(f"{where}: empty operation parameter name")


def validate_flow(flow: Flow, _path: str = "") -> None:
    """Validate a flow tree; raises :class:`DGLValidationError` on problems."""
    path = f"{_path}/{flow.name}" if _path else flow.name
    where = f"flow {path!r}"
    _check_unique_variables(where, flow.variables)
    _check_rules(where, flow.logic.rules)
    pattern = flow.logic.pattern
    # A switch default must name an actual child.
    default = getattr(pattern, "default", None)
    if default is not None and flow.child(default) is None:
        raise DGLValidationError(
            f"{where}: switch default {default!r} names no child")
    for child in flow.children:
        if isinstance(child, Flow):
            validate_flow(child, path)
        else:
            _validate_step(child, f"{path}/{child.name}")


def validate_request(request: DataGridRequest) -> None:
    """Validate a full request document."""
    if not request.user:
        raise DGLValidationError("request needs a grid user")
    if isinstance(request.body, FlowStatusQuery):
        return
    validate_flow(request.body)


# --------------------------------------------------------------------------
# Structure introspection (figure regeneration)
# --------------------------------------------------------------------------


def _type_label(annotation) -> str:
    """Human-readable label for one field annotation."""
    origin = typing.get_origin(annotation)
    if origin is Union:
        args = [arg for arg in typing.get_args(annotation)
                if arg is not type(None)]
        label = " | ".join(_type_label(arg) for arg in args)
        if type(None) in typing.get_args(annotation):
            label += "?"
        return label
    if origin in (list, List):
        (arg,) = typing.get_args(annotation)
        return f"{_type_label(arg)}*"
    if origin is dict:
        key, value = typing.get_args(annotation)
        return f"map<{_type_label(key)}, {_type_label(value)}>"
    if dataclasses.is_dataclass(annotation):
        return annotation.__name__
    name = getattr(annotation, "__name__", None)
    return name if name is not None else str(annotation)


def _expandable_classes(annotation) -> list:
    """Dataclasses mentioned by an annotation, for recursive expansion."""
    origin = typing.get_origin(annotation)
    if origin is Union:
        out = []
        for arg in typing.get_args(annotation):
            out.extend(_expandable_classes(arg))
        return out
    if origin in (list, List):
        (arg,) = typing.get_args(annotation)
        return _expandable_classes(arg)
    if dataclasses.is_dataclass(annotation) and isinstance(annotation, type):
        return [annotation]
    return []


def structure_of(cls, max_depth: int = 3) -> str:
    """Render ``cls``'s element structure as an indented text tree.

    Each dataclass expands once per path (recursion, as in Flow → Flow,
    is marked ``…recursive``), and expansion stops at ``max_depth``.
    """
    if not dataclasses.is_dataclass(cls):
        raise DGLValidationError(f"{cls!r} is not a DGL model class")
    lines: List[str] = [cls.__name__]

    def _expand(klass, prefix: str, seen: tuple, depth: int) -> None:
        try:
            hints = typing.get_type_hints(klass)
        except Exception:
            hints = {field.name: field.type
                     for field in dataclasses.fields(klass)}
        fields = dataclasses.fields(klass)
        for index, field in enumerate(fields):
            last = index == len(fields) - 1
            connector = "└── " if last else "├── "
            annotation = hints.get(field.name, field.type)
            lines.append(f"{prefix}{connector}{field.name}: "
                         f"{_type_label(annotation)}")
            child_prefix = prefix + ("    " if last else "│   ")
            if depth >= max_depth:
                continue
            for child_cls in _expandable_classes(annotation):
                if child_cls in seen:
                    lines.append(f"{child_prefix}({child_cls.__name__} …recursive)")
                    continue
                _expand(child_cls, child_prefix, seen + (child_cls,), depth + 1)

    _expand(cls, "", (cls,), 1)
    return "\n".join(lines)

"""Text rendering of flows and status trees.

The paper pairs DGL with a graphical IDE (VERGIL/MoML) for novice users
(§3.2). A GUI is out of scope here (DESIGN.md §2), but the *rendering*
half — "view the datagridflow rendered" — is valuable for any CLI user:
:func:`render_flow` draws the recursive structure with its control
patterns, variables, and rules; :func:`render_status` draws a live or
final status tree with states and timings.
"""

from __future__ import annotations

from typing import List, Union

from repro.dgl.model import (
    ExecutionState,
    Flow,
    FlowLogic,
    FlowStatus,
    ForEach,
    Parallel,
    Repeat,
    Sequential,
    Step,
    SwitchCase,
    WhileLoop,
)

__all__ = ["render_flow", "render_status", "pattern_label"]

_STATE_MARKS = {
    ExecutionState.PENDING: " ",
    ExecutionState.RUNNING: "~",
    ExecutionState.PAUSED: "=",
    ExecutionState.COMPLETED: "+",
    ExecutionState.FAILED: "!",
    ExecutionState.CANCELLED: "x",
}


def pattern_label(pattern) -> str:
    """Compact human label for a control pattern."""
    if isinstance(pattern, Sequential):
        return "sequential"
    if isinstance(pattern, Parallel):
        if pattern.max_concurrent:
            return f"parallel(max={pattern.max_concurrent})"
        return "parallel"
    if isinstance(pattern, WhileLoop):
        return f"while({pattern.condition})"
    if isinstance(pattern, Repeat):
        return f"repeat({pattern.count})"
    if isinstance(pattern, ForEach):
        source = (pattern.collection if pattern.collection is not None
                  else pattern.items)
        if pattern.query:
            source = f"{source} where {pattern.query}"
        return f"forEach {pattern.item_variable} in {source}"
    if isinstance(pattern, SwitchCase):
        label = f"switch({pattern.expression})"
        if pattern.default:
            label += f" default={pattern.default}"
        return label
    return type(pattern).__name__


def _logic_lines(logic: FlowLogic) -> List[str]:
    lines = []
    for rule in logic.rules:
        actions = ", ".join(action.name for action in rule.actions)
        lines.append(f"rule {rule.name}: {rule.condition!r} -> [{actions}]")
    return lines


def render_flow(flow: Flow) -> str:
    """Draw a flow definition as an indented tree."""
    lines: List[str] = []

    def _node(node: Union[Flow, Step], prefix: str, connector: str,
              child_prefix: str) -> None:
        if isinstance(node, Step):
            extras = []
            if node.operation.assign_to:
                extras.append(f"-> {node.operation.assign_to}")
            if node.requirements:
                extras.append(f"req={node.requirements}")
            suffix = (" " + " ".join(extras)) if extras else ""
            lines.append(f"{prefix}{connector}[step] {node.name}: "
                         f"{node.operation.name}{suffix}")
            return
        lines.append(f"{prefix}{connector}[flow] {node.name} "
                     f"({pattern_label(node.logic.pattern)})")
        details: List[str] = []
        if node.variables:
            bindings = ", ".join(f"{v.name}={v.value!r}"
                                 for v in node.variables)
            details.append(f"vars: {bindings}")
        details.extend(_logic_lines(node.logic))
        for detail in details:
            lines.append(f"{child_prefix}| {detail}")
        for index, child in enumerate(node.children):
            last = index == len(node.children) - 1
            _node(child, child_prefix,
                  "`-- " if last else "|-- ",
                  child_prefix + ("    " if last else "|   "))

    _node(flow, "", "", "")
    return "\n".join(lines)


def render_status(status: FlowStatus) -> str:
    """Draw a status tree with states and timings."""
    lines: List[str] = []

    def _node(node: FlowStatus, prefix: str, connector: str,
              child_prefix: str) -> None:
        mark = _STATE_MARKS[node.state]
        timing = ""
        if node.started_at is not None:
            end = (f"{node.finished_at:.2f}"
                   if node.finished_at is not None else "...")
            timing = f"  [{node.started_at:.2f} .. {end}]"
        extras = ""
        if node.iterations:
            extras += f"  x{node.iterations}"
        if node.error:
            extras += f"  error: {node.error}"
        lines.append(f"{prefix}{connector}[{mark}] {node.name} "
                     f"{node.state.value}{timing}{extras}")
        for index, child in enumerate(node.children):
            last = index == len(node.children) - 1
            _node(child, child_prefix,
                  "`-- " if last else "|-- ",
                  child_prefix + ("    " if last else "|   "))

    _node(status, "", "", "")
    return "\n".join(lines)

"""DGL XML serialization and parsing.

DGL "is an XML-Schema specification" (§4); this module is the concrete
wire format: :func:`to_xml` / :func:`from_xml` round-trip every request and
response document through ``xml.etree.ElementTree``. Values keep their
types via a ``type`` attribute, so a numeric variable survives the trip.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional, Union

from repro.errors import DGLParseError
from repro.dgl.model import (
    Action,
    DataGridRequest,
    DataGridResponse,
    DocumentMetadata,
    ExecutionState,
    Flow,
    FlowLogic,
    FlowStatus,
    FlowStatusQuery,
    ForEach,
    Operation,
    Parallel,
    Repeat,
    RequestAcknowledgement,
    Sequential,
    Step,
    SwitchCase,
    UserDefinedRule,
    Variable,
    WhileLoop,
)

__all__ = ["to_xml", "from_xml", "request_to_xml", "request_from_xml",
           "response_to_xml", "response_from_xml"]


# --------------------------------------------------------------------------
# Typed values
# --------------------------------------------------------------------------


def _set_value(element: ET.Element, value) -> None:
    if value is None:
        element.set("type", "null")
        element.set("value", "")
    elif isinstance(value, bool):
        raise DGLParseError("boolean values are not part of DGL's value model")
    elif isinstance(value, int):
        element.set("type", "int")
        element.set("value", str(value))
    elif isinstance(value, float):
        element.set("type", "float")
        element.set("value", repr(value))
    else:
        element.set("type", "str")
        element.set("value", str(value))


def _get_value(element: ET.Element):
    kind = element.get("type", "str")
    text = element.get("value", "")
    if kind == "null":
        return None
    if kind == "int":
        return int(text)
    if kind == "float":
        return float(text)
    if kind == "str":
        return text
    raise DGLParseError(f"unknown value type {kind!r}")


def _require(element: ET.Element, attribute: str) -> str:
    value = element.get(attribute)
    if value is None:
        raise DGLParseError(
            f"<{element.tag}> is missing required attribute {attribute!r}")
    return value


# --------------------------------------------------------------------------
# Serialization
# --------------------------------------------------------------------------


def _metadata_element(metadata: DocumentMetadata) -> ET.Element:
    element = ET.Element("documentMetadata")
    if metadata.document_id is not None:
        element.set("documentId", metadata.document_id)
    if metadata.created_at is not None:
        element.set("createdAt", repr(metadata.created_at))
    if metadata.description is not None:
        element.set("description", metadata.description)
    return element


def _operation_element(operation: Operation) -> ET.Element:
    element = ET.Element("operation", name=operation.name)
    if operation.assign_to is not None:
        element.set("assignTo", operation.assign_to)
    for name in sorted(operation.parameters):
        parameter = ET.SubElement(element, "parameter", name=name)
        _set_value(parameter, operation.parameters[name])
    return element


def _rule_element(rule: UserDefinedRule) -> ET.Element:
    element = ET.Element("userDefinedRule", name=rule.name)
    condition = ET.SubElement(element, "condition")
    condition.text = rule.condition
    for action in rule.actions:
        action_el = ET.SubElement(element, "action", name=action.name)
        action_el.append(_operation_element(action.operation))
    return element


def _variables_element(variables) -> Optional[ET.Element]:
    if not variables:
        return None
    element = ET.Element("variables")
    for variable in variables:
        var_el = ET.SubElement(element, "variable", name=variable.name)
        _set_value(var_el, variable.value)
    return element


def _pattern_element(pattern) -> ET.Element:
    if isinstance(pattern, Sequential):
        return ET.Element("sequential")
    if isinstance(pattern, Parallel):
        element = ET.Element("parallel")
        if pattern.max_concurrent:
            element.set("maxConcurrent", str(pattern.max_concurrent))
        return element
    if isinstance(pattern, WhileLoop):
        return ET.Element("while", condition=pattern.condition)
    if isinstance(pattern, Repeat):
        return ET.Element("repeat", count=str(pattern.count))
    if isinstance(pattern, ForEach):
        element = ET.Element("forEach", itemVariable=pattern.item_variable)
        if pattern.collection is not None:
            element.set("collection", pattern.collection)
        if pattern.query is not None:
            element.set("query", pattern.query)
        if pattern.items is not None:
            element.set("items", pattern.items)
        return element
    if isinstance(pattern, SwitchCase):
        element = ET.Element("switch", expression=pattern.expression)
        if pattern.default is not None:
            element.set("default", pattern.default)
        return element
    raise DGLParseError(f"unknown control pattern {type(pattern).__name__}")


def _logic_element(logic: FlowLogic) -> ET.Element:
    element = ET.Element("flowLogic")
    element.append(_pattern_element(logic.pattern))
    for rule in logic.rules:
        element.append(_rule_element(rule))
    return element


def _step_element(step: Step) -> ET.Element:
    element = ET.Element("step", name=step.name)
    variables = _variables_element(step.variables)
    if variables is not None:
        element.append(variables)
    if step.requirements:
        req_root = ET.SubElement(element, "requirements")
        for name in sorted(step.requirements):
            requirement = ET.SubElement(req_root, "requirement", name=name)
            _set_value(requirement, step.requirements[name])
    element.append(_operation_element(step.operation))
    for rule in step.rules:
        element.append(_rule_element(rule))
    return element


def _flow_element(flow: Flow) -> ET.Element:
    element = ET.Element("flow", name=flow.name)
    variables = _variables_element(flow.variables)
    if variables is not None:
        element.append(variables)
    element.append(_logic_element(flow.logic))
    if flow.children:
        children = ET.SubElement(element, "children")
        for child in flow.children:
            if isinstance(child, Flow):
                children.append(_flow_element(child))
            else:
                children.append(_step_element(child))
    return element


def _status_element(status: FlowStatus) -> ET.Element:
    element = ET.Element("flowStatus", name=status.name,
                         state=status.state.value)
    if status.started_at is not None:
        element.set("startedAt", repr(status.started_at))
    if status.finished_at is not None:
        element.set("finishedAt", repr(status.finished_at))
    if status.error is not None:
        element.set("error", status.error)
    if status.iterations:
        element.set("iterations", str(status.iterations))
    for child in status.children:
        element.append(_status_element(child))
    return element


def request_to_xml(request: DataGridRequest) -> str:
    """Serialize a request document to an XML string."""
    root = ET.Element("dataGridRequest",
                      asynchronous="true" if request.asynchronous else "false")
    root.append(_metadata_element(request.metadata))
    user = ET.SubElement(root, "gridUser")
    user.text = request.user
    vo = ET.SubElement(root, "virtualOrganization")
    vo.text = request.virtual_organization
    if isinstance(request.body, FlowStatusQuery):
        query = ET.SubElement(root, "flowStatusQuery",
                              requestId=request.body.request_id)
        if request.body.path is not None:
            query.set("path", request.body.path)
    else:
        root.append(_flow_element(request.body))
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def response_to_xml(response: DataGridResponse) -> str:
    """Serialize a response document to an XML string."""
    root = ET.Element("dataGridResponse", requestId=response.request_id)
    root.append(_metadata_element(response.metadata))
    if isinstance(response.body, RequestAcknowledgement):
        ack = ET.SubElement(root, "requestAcknowledgement",
                            requestId=response.body.request_id,
                            state=response.body.state.value,
                            valid="true" if response.body.valid else "false")
        if response.body.message is not None:
            ack.set("message", response.body.message)
    else:
        root.append(_status_element(response.body))
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def to_xml(document: Union[DataGridRequest, DataGridResponse]) -> str:
    """Serialize either document kind."""
    if isinstance(document, DataGridRequest):
        return request_to_xml(document)
    if isinstance(document, DataGridResponse):
        return response_to_xml(document)
    raise DGLParseError(f"cannot serialize {type(document).__name__}")


# --------------------------------------------------------------------------
# Parsing
# --------------------------------------------------------------------------


def _parse_metadata(element: Optional[ET.Element]) -> DocumentMetadata:
    if element is None:
        return DocumentMetadata()
    created = element.get("createdAt")
    return DocumentMetadata(
        document_id=element.get("documentId"),
        created_at=float(created) if created is not None else None,
        description=element.get("description"))


def _parse_operation(element: ET.Element) -> Operation:
    parameters = {}
    for parameter in element.findall("parameter"):
        parameters[_require(parameter, "name")] = _get_value(parameter)
    return Operation(name=_require(element, "name"), parameters=parameters,
                     assign_to=element.get("assignTo"))


def _parse_rule(element: ET.Element) -> UserDefinedRule:
    condition = element.find("condition")
    if condition is None or condition.text is None:
        raise DGLParseError("userDefinedRule needs a <condition>")
    actions = []
    for action_el in element.findall("action"):
        operation_el = action_el.find("operation")
        if operation_el is None:
            raise DGLParseError("rule action needs an <operation>")
        actions.append(Action(name=_require(action_el, "name"),
                              operation=_parse_operation(operation_el)))
    return UserDefinedRule(name=_require(element, "name"),
                           condition=condition.text, actions=actions)


def _parse_variables(element: Optional[ET.Element]):
    if element is None:
        return []
    return [Variable(name=_require(v, "name"), value=_get_value(v))
            for v in element.findall("variable")]


def _parse_pattern(element: ET.Element):
    tag = element.tag
    if tag == "sequential":
        return Sequential()
    if tag == "parallel":
        return Parallel(max_concurrent=int(element.get("maxConcurrent", "0")))
    if tag == "while":
        return WhileLoop(condition=_require(element, "condition"))
    if tag == "repeat":
        count_text = _require(element, "count")
        try:
            count: Union[int, str] = int(count_text)
        except ValueError:
            count = count_text
        return Repeat(count=count)
    if tag == "forEach":
        return ForEach(item_variable=_require(element, "itemVariable"),
                       collection=element.get("collection"),
                       query=element.get("query"),
                       items=element.get("items"))
    if tag == "switch":
        return SwitchCase(expression=_require(element, "expression"),
                          default=element.get("default"))
    raise DGLParseError(f"unknown control pattern element <{tag}>")


_PATTERN_TAGS = {"sequential", "parallel", "while", "repeat", "forEach", "switch"}


def _parse_logic(element: Optional[ET.Element]) -> FlowLogic:
    if element is None:
        return FlowLogic()
    pattern = None
    rules = []
    for child in element:
        if child.tag in _PATTERN_TAGS:
            if pattern is not None:
                raise DGLParseError("flowLogic has more than one control pattern")
            pattern = _parse_pattern(child)
        elif child.tag == "userDefinedRule":
            rules.append(_parse_rule(child))
        else:
            raise DGLParseError(f"unexpected element <{child.tag}> in flowLogic")
    return FlowLogic(pattern=pattern or Sequential(), rules=rules)


def _parse_step(element: ET.Element) -> Step:
    operation_el = element.find("operation")
    if operation_el is None:
        raise DGLParseError(
            f"step {element.get('name')!r} needs exactly one <operation>")
    requirements = {}
    req_root = element.find("requirements")
    if req_root is not None:
        for requirement in req_root.findall("requirement"):
            requirements[_require(requirement, "name")] = _get_value(requirement)
    return Step(name=_require(element, "name"),
                operation=_parse_operation(operation_el),
                variables=_parse_variables(element.find("variables")),
                rules=[_parse_rule(r) for r in element.findall("userDefinedRule")],
                requirements=requirements)


def _parse_flow(element: ET.Element) -> Flow:
    children = []
    children_el = element.find("children")
    if children_el is not None:
        for child in children_el:
            if child.tag == "flow":
                children.append(_parse_flow(child))
            elif child.tag == "step":
                children.append(_parse_step(child))
            else:
                raise DGLParseError(f"unexpected element <{child.tag}> in children")
    return Flow(name=_require(element, "name"),
                logic=_parse_logic(element.find("flowLogic")),
                variables=_parse_variables(element.find("variables")),
                children=children)


def _parse_status(element: ET.Element) -> FlowStatus:
    started = element.get("startedAt")
    finished = element.get("finishedAt")
    return FlowStatus(
        name=_require(element, "name"),
        state=ExecutionState(_require(element, "state")),
        started_at=float(started) if started is not None else None,
        finished_at=float(finished) if finished is not None else None,
        error=element.get("error"),
        iterations=int(element.get("iterations", "0")),
        children=[_parse_status(child) for child in element.findall("flowStatus")])


def request_from_xml(text: str) -> DataGridRequest:
    """Parse a request document from an XML string."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise DGLParseError(f"malformed XML: {exc}") from None
    if root.tag != "dataGridRequest":
        raise DGLParseError(f"expected <dataGridRequest>, got <{root.tag}>")
    user_el = root.find("gridUser")
    vo_el = root.find("virtualOrganization")
    if user_el is None or not user_el.text:
        raise DGLParseError("request needs a <gridUser>")
    flow_el = root.find("flow")
    query_el = root.find("flowStatusQuery")
    if (flow_el is None) == (query_el is None):
        raise DGLParseError(
            "request needs exactly one of <flow> or <flowStatusQuery>")
    if flow_el is not None:
        body: Union[Flow, FlowStatusQuery] = _parse_flow(flow_el)
    else:
        body = FlowStatusQuery(request_id=_require(query_el, "requestId"),
                               path=query_el.get("path"))
    return DataGridRequest(
        user=user_el.text,
        virtual_organization=(vo_el.text or "") if vo_el is not None else "",
        body=body,
        metadata=_parse_metadata(root.find("documentMetadata")),
        asynchronous=root.get("asynchronous", "false") == "true")


def response_from_xml(text: str) -> DataGridResponse:
    """Parse a response document from an XML string."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise DGLParseError(f"malformed XML: {exc}") from None
    if root.tag != "dataGridResponse":
        raise DGLParseError(f"expected <dataGridResponse>, got <{root.tag}>")
    ack_el = root.find("requestAcknowledgement")
    status_el = root.find("flowStatus")
    if (ack_el is None) == (status_el is None):
        raise DGLParseError(
            "response needs exactly one of <requestAcknowledgement> or <flowStatus>")
    if ack_el is not None:
        body: Union[FlowStatus, RequestAcknowledgement] = RequestAcknowledgement(
            request_id=_require(ack_el, "requestId"),
            state=ExecutionState(_require(ack_el, "state")),
            valid=ack_el.get("valid", "true") == "true",
            message=ack_el.get("message"))
    else:
        body = _parse_status(status_el)
    return DataGridResponse(
        request_id=_require(root, "requestId"),
        body=body,
        metadata=_parse_metadata(root.find("documentMetadata")))


def from_xml(text: str) -> Union[DataGridRequest, DataGridResponse]:
    """Parse either document kind, dispatching on the root tag."""
    stripped = text.lstrip()
    if stripped.startswith("<dataGridRequest"):
        return request_from_xml(text)
    if stripped.startswith("<dataGridResponse"):
        return response_from_xml(text)
    raise DGLParseError("not a DGL document (unknown root element)")

"""The DGL operation registry.

"DGL supports a number of DataGrid related operations for SDSC's Storage
Resource Broker (SRB) or execution of business logic (code) by the DfMS
server" (Appendix A). The registry maps operation names to handlers; the
DfMS binds the datagrid operations (``srb.*``), business-logic execution
(``exec``), and control utilities (``dgl.*``) when it starts — see
:mod:`repro.dfms.bindings`.

A handler is called as ``handler(context, params)`` where ``params`` are
the step's parameters with all ``${...}`` templates already expanded.
Handlers may return a plain value (instant operations) or a generator to
run as a simulation process (timed operations).
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, List

from repro.errors import UnknownOperationError
from repro.dgl.model import Flow, Step

__all__ = ["OperationHandler", "OperationRegistry"]

#: Handler signature: (execution context, expanded parameters) -> result.
OperationHandler = Callable[[Any, Dict[str, Any]], Any]


class OperationRegistry:
    """Name → handler mapping with registration helpers."""

    def __init__(self) -> None:
        self._handlers: Dict[str, OperationHandler] = {}
        self._required_params: Dict[str, tuple] = {}

    def register(self, name: str, handler: OperationHandler,
                 replace: bool = False,
                 required_params: tuple = ()) -> None:
        """Bind ``handler`` to operation ``name``.

        ``required_params`` declares parameters every use of the operation
        must supply (values may still be ``${...}`` templates); documents
        missing them are rejected at admission, before anything runs —
        the "SQL for datagrids" stance applied to static checking.
        """
        if name in self._handlers and not replace:
            raise UnknownOperationError(
                f"operation {name!r} is already registered")
        self._handlers[name] = handler
        self._required_params[name] = tuple(required_params)

    def operation(self, name: str) -> Callable[[OperationHandler], OperationHandler]:
        """Decorator form of :meth:`register`."""

        def _decorator(handler: OperationHandler) -> OperationHandler:
            self.register(name, handler)
            return handler

        return _decorator

    def get(self, name: str) -> OperationHandler:
        """The handler for ``name``; raises :class:`UnknownOperationError`."""
        try:
            return self._handlers[name]
        except KeyError:
            raise UnknownOperationError(
                f"unknown operation {name!r} "
                f"(registered: {sorted(self._handlers)})") from None

    def names(self) -> List[str]:
        """Registered operation names, sorted."""
        return sorted(self._handlers)

    def __contains__(self, name: str) -> bool:
        return name in self._handlers

    # -- static checking -------------------------------------------------------

    def missing_operations(self, flow: Flow) -> List[str]:
        """Operation names used anywhere in ``flow`` but not registered.

        Covers step operations and rule-action operations, recursively —
        run before execution to fail fast on a typo in a DGL document.
        """
        missing = set()

        def _check_rules(rules) -> None:
            for rule in rules:
                for action in rule.actions:
                    if action.operation.name not in self:
                        missing.add(action.operation.name)

        def _walk(node) -> None:
            if isinstance(node, Step):
                if node.operation.name not in self:
                    missing.add(node.operation.name)
                _check_rules(node.rules)
                return
            _check_rules(node.logic.rules)
            for child in node.children:
                _walk(child)

        _walk(flow)
        return sorted(missing)

    def parameter_problems(self, flow: Flow) -> List[str]:
        """Required-parameter violations anywhere in ``flow``.

        Only steps whose operation *is* registered are checked (unknown
        operations are :meth:`missing_operations`' job). Rule-action
        operations are checked too.
        """
        problems: List[str] = []

        def _check_operation(where: str, operation) -> None:
            required = self._required_params.get(operation.name)
            if not required:
                return
            missing = [parameter for parameter in required
                       if parameter not in operation.parameters]
            if missing:
                problems.append(
                    f"{where}: {operation.name} is missing required "
                    f"parameter(s) {', '.join(missing)}")

        def _check_rules(where: str, rules) -> None:
            for rule in rules:
                for action in rule.actions:
                    _check_operation(f"{where} rule {rule.name!r}",
                                     action.operation)

        def _walk(node, path: str) -> None:
            if isinstance(node, Step):
                _check_operation(f"step {path!r}", node.operation)
                _check_rules(f"step {path!r}", node.rules)
                return
            _check_rules(f"flow {path!r}", node.logic.rules)
            for child in node.children:
                _walk(child, f"{path}/{child.name}")

        _walk(flow, flow.name)
        return problems

    @staticmethod
    def is_timed(result: Any) -> bool:
        """True if a handler result is a generator to run in virtual time."""
        return inspect.isgenerator(result)

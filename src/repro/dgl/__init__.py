"""The Data Grid Language (DGL) — "SQL for datagrids" (§4, Appendix A).

Document model (requests, flows, steps, rules, responses), XML round-trip,
schema validation and structure introspection, a fluent builder, the
expression language, and the operation registry.
"""

from repro.dgl.builder import FlowBuilder, flow_builder, operation
from repro.dgl.expressions import (
    Scope,
    evaluate,
    evaluate_condition,
    render_template,
)
from repro.dgl.model import (
    AFTER_EXIT,
    BEFORE_ENTRY,
    Action,
    DataGridRequest,
    DataGridResponse,
    DocumentMetadata,
    ExecutionState,
    Flow,
    FlowLogic,
    FlowStatus,
    FlowStatusQuery,
    ForEach,
    Operation,
    Parallel,
    Repeat,
    RequestAcknowledgement,
    RequestRejection,
    Sequential,
    Step,
    SwitchCase,
    UserDefinedRule,
    Variable,
    WhileLoop,
)
from repro.dgl.moml import flow_to_moml, moml_to_flow
from repro.dgl.operations import OperationHandler, OperationRegistry
from repro.dgl.render import pattern_label, render_flow, render_status
from repro.dgl.schema import structure_of, validate_flow, validate_request
from repro.dgl.xml_io import (
    from_xml,
    request_from_xml,
    request_to_xml,
    response_from_xml,
    response_to_xml,
    to_xml,
)

__all__ = [
    # model
    "DataGridRequest", "DataGridResponse", "DocumentMetadata",
    "Flow", "FlowLogic", "Step", "Operation", "Variable",
    "Action", "UserDefinedRule", "BEFORE_ENTRY", "AFTER_EXIT",
    "Sequential", "Parallel", "WhileLoop", "Repeat", "ForEach", "SwitchCase",
    "FlowStatusQuery", "FlowStatus", "RequestAcknowledgement",
    "RequestRejection", "ExecutionState",
    # xml
    "to_xml", "from_xml", "request_to_xml", "request_from_xml",
    "response_to_xml", "response_from_xml",
    # schema
    "validate_flow", "validate_request", "structure_of",
    # builder
    "FlowBuilder", "flow_builder", "operation",
    # expressions
    "Scope", "evaluate", "render_template", "evaluate_condition",
    # operations
    "OperationRegistry", "OperationHandler",
    # rendering + MoML interchange
    "render_flow", "render_status", "pattern_label",
    "flow_to_moml", "moml_to_flow",
]

"""Simulated physical storage resources.

A :class:`PhysicalStorageResource` stands in for one real storage system at
one administrative domain — a disk farm, a parallel filesystem, a tape silo.
The SRB model in the paper maps each such system into the datagrid's
*logical resource namespace* without changing it (§1); this class is the
"physical" side of that mapping. It tracks capacity, accounts allocations
per stored object, answers timing questions from its performance model, and
routes every operation through a failure injector.

Durations are returned as plain floats; the layer driving the simulation
(the DGMS / DfMS) turns them into virtual-time timeouts. Keeping this class
simulation-agnostic lets benchmarks also query costs analytically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import CapacityExceeded, ResourceOffline, StorageError
from repro.storage.failures import FailureInjector, NO_FAILURES
from repro.storage.models import MODEL_PRESETS, PerformanceModel, StorageClass

__all__ = ["PhysicalStorageResource", "StorageStats"]


@dataclass
class StorageStats:
    """Operation counters for one physical resource."""

    reads: int = 0
    writes: int = 0
    deletes: int = 0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    busy_seconds: float = 0.0


class PhysicalStorageResource:
    """One physical storage system with capacity and timing behaviour."""

    def __init__(self, name: str, storage_class: StorageClass,
                 capacity_bytes: float,
                 model: Optional[PerformanceModel] = None,
                 failures: Optional[FailureInjector] = None,
                 channels: int = 0) -> None:
        if capacity_bytes <= 0:
            raise StorageError(f"capacity must be positive, got {capacity_bytes}")
        if channels < 0:
            raise StorageError(f"channels cannot be negative, got {channels}")
        self.name = name
        self.storage_class = storage_class
        self.capacity_bytes = float(capacity_bytes)
        self.model = model or MODEL_PRESETS[storage_class]
        self.failures = failures or NO_FAILURES
        #: Concurrent-I/O limit the driving layer (DGMS) enforces:
        #: 0 = unlimited; 1 models a single tape drive; N a disk array's
        #: channel count. Durations here stay per-operation; queueing for
        #: a channel happens in virtual time at the DGMS.
        self.channels = channels
        self.online = True
        self.stats = StorageStats()
        self._allocations: Dict[str, float] = {}

    # -- capacity -----------------------------------------------------------

    @property
    def used_bytes(self) -> float:
        """Bytes currently allocated."""
        return sum(self._allocations.values())

    @property
    def free_bytes(self) -> float:
        """Bytes still available."""
        return self.capacity_bytes - self.used_bytes

    def holds(self, object_id: str) -> bool:
        """True if ``object_id`` has an allocation here."""
        return object_id in self._allocations

    def size_of(self, object_id: str) -> float:
        """Allocated size of ``object_id`` (raises if absent)."""
        try:
            return self._allocations[object_id]
        except KeyError:
            raise StorageError(f"{self.name} does not hold {object_id!r}") from None

    # -- operations -----------------------------------------------------------

    def _require_online(self) -> None:
        if not self.online:
            raise ResourceOffline(
                f"storage resource {self.name!r} is offline")

    def write(self, object_id: str, nbytes: float) -> float:
        """Allocate and write ``object_id``; return the operation duration."""
        self._require_online()
        if nbytes < 0:
            raise StorageError(f"negative object size: {nbytes}")
        if object_id in self._allocations:
            raise StorageError(f"{self.name} already holds {object_id!r}")
        if nbytes > self.free_bytes:
            raise CapacityExceeded(
                f"{self.name}: need {nbytes:.0f} B, only {self.free_bytes:.0f} B free")
        self.failures.check(f"write {object_id} on {self.name}")
        self._allocations[object_id] = float(nbytes)
        duration = self.model.write_time(nbytes)
        self.stats.writes += 1
        self.stats.bytes_written += nbytes
        self.stats.busy_seconds += duration
        return duration

    def read(self, object_id: str) -> float:
        """Read ``object_id``; return the operation duration."""
        self._require_online()
        nbytes = self.size_of(object_id)
        self.failures.check(f"read {object_id} on {self.name}")
        duration = self.model.read_time(nbytes)
        self.stats.reads += 1
        self.stats.bytes_read += nbytes
        self.stats.busy_seconds += duration
        return duration

    def delete(self, object_id: str) -> float:
        """Remove ``object_id``; return the operation duration."""
        self._require_online()
        self.size_of(object_id)  # existence check
        self.failures.check(f"delete {object_id} on {self.name}")
        del self._allocations[object_id]
        self.stats.deletes += 1
        duration = self.model.access_latency_s
        self.stats.busy_seconds += duration
        return duration

    def retention_cost(self, seconds: float) -> float:
        """Cost of retaining the *current* contents for ``seconds``."""
        return self.model.retention_cost(self.used_bytes, seconds)

    def __repr__(self) -> str:
        return (f"<PhysicalStorageResource {self.name!r} "
                f"{self.storage_class.value} "
                f"{self.used_bytes / 1e9:.2f}/{self.capacity_bytes / 1e9:.2f} GB>")

"""Simulated physical storage substrate (disks, parallel FS, tape archives).

Stands in for the real storage systems the paper's datagrids federate —
substitution documented in DESIGN.md §2.
"""

from repro.storage.failures import FailureInjector, NO_FAILURES
from repro.storage.models import (
    GB,
    MB,
    MODEL_PRESETS,
    TB,
    PerformanceModel,
    StorageClass,
)
from repro.storage.resource import PhysicalStorageResource, StorageStats

__all__ = [
    "StorageClass", "PerformanceModel", "MODEL_PRESETS",
    "PhysicalStorageResource", "StorageStats",
    "FailureInjector", "NO_FAILURES",
    "MB", "GB", "TB",
]

"""Performance and cost models for simulated physical storage.

The paper's datagrids span heterogeneous storage — from parallel filesystems
at supercomputer centers to deep tape archives at third-party archiver
domains (§2.1). Experiments depend on the *relative* characteristics of
these classes (tape: enormous latency, cheap retention; parallel FS: high
bandwidth, expensive), which these models encode. Absolute numbers are
order-of-magnitude figures for mid-2000s hardware; every preset can be
overridden per resource.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import StorageError

__all__ = ["StorageClass", "PerformanceModel", "MODEL_PRESETS", "GB", "MB", "TB"]

KB = 1024.0
MB = 1024.0 * KB
GB = 1024.0 * MB
TB = 1024.0 * GB

SECONDS_PER_MONTH = 30 * 24 * 3600.0


class StorageClass(enum.Enum):
    """Broad classes of physical storage found in a datagrid."""

    MEMORY = "memory"
    DISK = "disk"
    PARALLEL_FS = "parallel_fs"
    ARCHIVE = "archive"  # tape silo / deep archive


@dataclass(frozen=True)
class PerformanceModel:
    """Timing and cost model for one storage system.

    Attributes
    ----------
    access_latency_s:
        Fixed per-operation setup cost (seek, tape mount, metadata lookup).
    read_bandwidth_bps / write_bandwidth_bps:
        Sustained streaming rates in bytes per second.
    cost_per_gb_month:
        Retention cost in abstract currency units — the quantity ILM
        policies trade against the "business value" of data (§2.1).
    """

    access_latency_s: float
    read_bandwidth_bps: float
    write_bandwidth_bps: float
    cost_per_gb_month: float

    def __post_init__(self) -> None:
        if self.access_latency_s < 0:
            raise StorageError("access latency cannot be negative")
        if self.read_bandwidth_bps <= 0 or self.write_bandwidth_bps <= 0:
            raise StorageError("bandwidth must be positive")
        if self.cost_per_gb_month < 0:
            raise StorageError("cost cannot be negative")

    def read_time(self, nbytes: float) -> float:
        """Seconds to read ``nbytes`` (latency + streaming)."""
        if nbytes < 0:
            raise StorageError(f"negative read size: {nbytes}")
        return self.access_latency_s + nbytes / self.read_bandwidth_bps

    def write_time(self, nbytes: float) -> float:
        """Seconds to write ``nbytes`` (latency + streaming)."""
        if nbytes < 0:
            raise StorageError(f"negative write size: {nbytes}")
        return self.access_latency_s + nbytes / self.write_bandwidth_bps

    def retention_cost(self, nbytes: float, seconds: float) -> float:
        """Cost of holding ``nbytes`` for ``seconds`` of virtual time."""
        if nbytes < 0 or seconds < 0:
            raise StorageError("negative size or duration")
        return self.cost_per_gb_month * (nbytes / GB) * (seconds / SECONDS_PER_MONTH)


#: Default model per storage class. Archive (tape) trades minutes of mount
#: latency for an order of magnitude cheaper retention; parallel filesystems
#: trade cost for bandwidth.
MODEL_PRESETS = {
    StorageClass.MEMORY: PerformanceModel(
        access_latency_s=1e-6,
        read_bandwidth_bps=2 * GB,
        write_bandwidth_bps=2 * GB,
        cost_per_gb_month=100.0,
    ),
    StorageClass.DISK: PerformanceModel(
        access_latency_s=0.01,
        read_bandwidth_bps=60 * MB,
        write_bandwidth_bps=50 * MB,
        cost_per_gb_month=1.0,
    ),
    StorageClass.PARALLEL_FS: PerformanceModel(
        access_latency_s=0.005,
        read_bandwidth_bps=400 * MB,
        write_bandwidth_bps=300 * MB,
        cost_per_gb_month=4.0,
    ),
    StorageClass.ARCHIVE: PerformanceModel(
        access_latency_s=90.0,  # tape fetch + mount
        read_bandwidth_bps=30 * MB,
        write_bandwidth_bps=30 * MB,
        cost_per_gb_month=0.05,
    ),
}

"""Failure injection for simulated storage.

Long-run datagrid processes must survive component faults — a key reason the
paper demands start/stop/restart and provenance (§2.1, §3.1). The injector
decides, per operation, whether a simulated fault occurs, either
probabilistically (seeded) or via an explicit deterministic schedule, so
tests can script exact failure points.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Iterable, Optional, Set

from repro.errors import StorageFailure

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.rng import RandomStreams

__all__ = ["FailureInjector", "NO_FAILURES"]

#: Stream-name prefix for per-resource failure draws (see
#: :meth:`FailureInjector.for_resource`).
STREAM_PREFIX = "storage-failures"


class FailureInjector:
    """Decides whether each successive operation fails.

    Parameters
    ----------
    probability:
        Independent chance that any operation fails.
    rng:
        Seeded random stream (required when ``probability`` > 0).
    fail_ops:
        Explicit 1-based operation indices that must fail, regardless of
        ``probability`` — for deterministic fault scripting in tests.
    """

    def __init__(self, probability: float = 0.0,
                 rng: Optional[random.Random] = None,
                 fail_ops: Optional[Iterable[int]] = None) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        if probability > 0.0 and rng is None:
            raise ValueError("probabilistic injection requires a seeded rng")
        self.probability = probability
        self._rng = rng
        self._fail_ops: Set[int] = set(fail_ops or ())
        self._op_count = 0
        self.failures_injected = 0

    @classmethod
    def for_resource(cls, streams: "RandomStreams", resource_name: str,
                     probability: float = 0.0,
                     fail_ops: Optional[Iterable[int]] = None
                     ) -> "FailureInjector":
        """An injector drawing from the *per-resource* named stream.

        Each resource gets its own substream
        (``storage-failures/<resource>``) of ``streams``, so how often one
        resource is probed never shifts another resource's fault points,
        and fault draws are isolated from every other stochastic component
        of the run — the property chaos schedules need to be reproducible.
        """
        return cls(probability=probability,
                   rng=streams.stream(f"{STREAM_PREFIX}/{resource_name}"),
                   fail_ops=fail_ops)

    @property
    def op_count(self) -> int:
        """Operations checked so far."""
        return self._op_count

    def should_fail(self) -> bool:
        """Record one operation and report whether it fails."""
        self._op_count += 1
        fails = self._op_count in self._fail_ops
        if not fails and self.probability > 0.0:
            fails = self._rng.random() < self.probability
        if fails:
            self.failures_injected += 1
        return fails

    def check(self, description: str) -> None:
        """Raise :class:`StorageFailure` if this operation fails."""
        if self.should_fail():
            raise StorageFailure(
                f"injected fault on operation #{self._op_count}: {description}")


#: Shared injector that never fails; safe to reuse because it is stateless
#: apart from counters, which callers of this constant never read.
NO_FAILURES = FailureInjector()

"""The multiprocess farm runner.

One deliberately small primitive: :func:`run_farm` maps a picklable task
over a list of items on a process pool and returns the results *in item
order*, as if a plain list comprehension had run — except wall-clock time
divides by the worker count. Everything else (which sweeps exist, what a
task computes) lives with the callers.

Why processes and not threads: a seed run is pure Python burning CPU in
the sim kernel, so threads serialize on the GIL. Fork-based processes
give each seed its own interpreter; results come back by pickle.

Failure surfacing: a task that raises inside a worker does not vanish
into a half-filled result list. The worker catches it, pickles the full
traceback text home, and the parent raises :class:`FarmWorkerError`
naming the item, its index, and the remote traceback. A worker that dies
without even reporting (segfault, OOM kill) surfaces the same way, with
the pool's diagnosis attached as the cause.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, List, Optional

from repro.errors import ReproError

__all__ = ["FarmWorkerError", "default_jobs", "run_farm"]


class FarmWorkerError(ReproError):
    """A farm task failed (or its worker died) on one item.

    ``item`` and ``index`` identify the failing unit of work — for a seed
    sweep, the seed to replay serially — and ``worker_traceback`` carries
    the traceback text from inside the worker process, since the original
    exception's own traceback cannot cross the process boundary.
    """

    def __init__(self, message: str, item: Any = None, index: int = -1,
                 worker_traceback: str = "") -> None:
        super().__init__(message)
        self.item = item
        self.index = index
        self.worker_traceback = worker_traceback


def default_jobs() -> int:
    """Worker count for this host: the CPUs this process may run on.

    Respects CPU affinity (a containerized runner often sees fewer cores
    than the machine has) and the ``REPRO_FARM_JOBS`` environment
    variable, which overrides everything — CI smoke jobs pin it to keep
    runs comparable.
    """
    override = os.environ.get("REPRO_FARM_JOBS")
    if override:
        return max(1, int(override))
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


def _run_task(payload) -> tuple:
    """Worker-side shim: run one task and make the outcome picklable.

    Returns ``(True, result)`` or ``(False, (exc_repr, traceback_text))``
    — never raises, so a Python-level task failure cannot take the pool
    down or reorder the surviving results.
    """
    task, item, kwargs = payload
    try:
        return (True, task(item, **kwargs))
    except BaseException as exc:
        return (False, (repr(exc), traceback.format_exc()))


def _mp_context():
    """Fork where available (cheap, inherits imports); spawn elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


def run_farm(task: Callable[..., Any], items: Iterable[Any],
             jobs: Optional[int] = None, kwargs: Optional[dict] = None,
             ) -> List[Any]:
    """Map ``task`` over ``items`` on a process pool; results in item order.

    Parameters
    ----------
    task:
        A picklable (module-level) callable; invoked as
        ``task(item, **kwargs)`` in a worker process.
    items:
        The work list. Result ``i`` is always ``task(items[i])`` — worker
        scheduling never reorders or drops results.
    jobs:
        Worker count. ``None`` means :func:`default_jobs`; ``1`` runs the
        tasks inline in this process (no pool, no pickling) — the serial
        reference the parallel path must match byte-for-byte.
    kwargs:
        Extra keyword arguments forwarded to every task call.

    Raises
    ------
    FarmWorkerError
        If any task raised or any worker died. The first failing item (in
        item order, not completion order) wins, so the error is itself
        deterministic.
    """
    items = list(items)
    kwargs = kwargs or {}
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ReproError(f"farm needs at least one worker, got jobs={jobs}")
    if jobs == 1 or len(items) <= 1:
        results = []
        for index, item in enumerate(items):
            ok, value = _run_task((task, item, kwargs))
            if not ok:
                exc_repr, text = value
                raise FarmWorkerError(
                    f"farm task failed on item {item!r} (index {index}): "
                    f"{exc_repr}", item=item, index=index,
                    worker_traceback=text)
            results.append(value)
        return results

    payloads = [(task, item, kwargs) for item in items]
    workers = min(jobs, len(items))
    with ProcessPoolExecutor(max_workers=workers,
                             mp_context=_mp_context()) as pool:
        futures = [pool.submit(_run_task, payload) for payload in payloads]
        outcomes = []
        for index, future in enumerate(futures):
            try:
                outcomes.append(future.result())
            except BaseException as exc:
                # The worker died without reporting (hard crash) or the
                # pool broke. Surface which item was running, keep the
                # pool's diagnosis as the cause.
                raise FarmWorkerError(
                    f"farm worker died on item {items[index]!r} "
                    f"(index {index}): {exc!r}", item=items[index],
                    index=index) from exc
    for index, (ok, value) in enumerate(outcomes):
        if not ok:
            exc_repr, text = value
            raise FarmWorkerError(
                f"farm task failed on item {items[index]!r} "
                f"(index {index}): {exc_repr}", item=items[index],
                index=index, worker_traceback=text)
    return [value for _, value in outcomes]

"""Seed farm: fan deterministic per-seed runs across all cores.

Every sweep in this repository — the 20-seed chaos invariant sweep, the
benchmark seed matrices, parameter grids — is a map of one pure function
over a seed list. Each run is bit-reproducible from its seed (guarded by
dgflint and ``run_signature``), shares nothing with its neighbours, and
reports a picklable result, which makes the whole shape embarrassingly
parallel. This package is the one runner all of those sweeps go through:

* :func:`run_farm` — map a task over items on a process pool, with
  deterministic result ordering and worker-crash surfacing;
* :func:`default_jobs` — how many workers this host can usefully run;
* :class:`FarmWorkerError` — a task failure, re-raised in the parent
  with the worker's full traceback and the offending item;
* ``repro farm`` (see :mod:`repro.cli`) — the operator entry point.

Determinism contract: ``run_farm(task, items)`` returns exactly
``[task(item) for item in items]`` — same values, same order — no matter
how many workers ran or how they interleaved. ``tests/test_farm.py``
holds the runner to that byte-for-byte.
"""

from repro.farm.runner import (
    FarmWorkerError,
    default_jobs,
    run_farm,
)

__all__ = ["FarmWorkerError", "default_jobs", "run_farm"]

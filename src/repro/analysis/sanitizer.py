"""dgfsan: the runtime schedule sanitizer.

Static rules (``repro/analysis/rules.py``) catch *syntactic* determinism
hazards; this module catches the *semantic* ones the batched kernel made
possible: workload code whose outcome silently depends on the arbitrary
eid tie-break between events that share a timestamp.

Two cooperating modes, both driven through kernel hooks
(:meth:`~repro.sim.kernel.Environment` dispatches via
``_step_batch_sanitized`` while a sanitizer is attached):

* **Race detection** (always on while attached): shared containers on
  registered subsystem objects are replaced with tracked proxies
  (:meth:`ScheduleSanitizer.track_object`); during one same-timestamp
  batch the sanitizer records which dispatch read/wrote which state and
  reports a :class:`ScheduleRace` for every conflicting pair that has no
  contracted ordering — neither event (transitively) scheduled the
  other, and both run at the same priority. Commutative accumulation
  (``list.append``, ``set.add``) only conflicts with reads and with
  non-commuting writes, so order-insensitive aggregation stays quiet.

* **Schedule permutation** (``SanitizeConfig(permute=True)``): the
  dispatcher re-orders *legal* same-timestamp schedules — priority
  classes stay separate, an event never runs before the event that
  scheduled it — and the caller diffs a canonical run signature against
  the baseline. :func:`prove_order_independence` drives the full
  protocol: prove order-independence, or refute it with a minimized
  :class:`PermutationWitness` (the first divergent batch, in both
  orders).

Approximations, documented so reports are readable: accesses through C
code that bypasses method dispatch (``heapq`` on a tracked list,
``list += ...``) are not seen; events at *different* priorities are
treated as ordered even though an interrupt raised by a permutable
normal event is itself permutable. Permutation mode is the ground truth
the race detector approximates.
"""

from __future__ import annotations

import hashlib
import random
from collections import deque
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import AnalysisError
from repro.sim.rng import RandomStreams

__all__ = [
    "SanitizeConfig", "ScheduleRace", "ScheduleSanitizer",
    "PermutationWitness", "PermutationProof", "prove_order_independence",
    "signature_digest",
]

#: Orders the permuted dispatcher understands. ``reverse`` is the
#: deterministic adversary (always pick the *last* ready event — any
#: two-sibling order dependence flips); ``random`` explores seeded
#: shuffles of larger pools.
_ORDERS = ("reverse", "random")


@dataclass(frozen=True)
class SanitizeConfig:
    """Knobs for one sanitized run.

    ``permute=False`` (the default) reproduces the kernel's normal
    dispatch order exactly — bit-identical trajectories, races reported
    on the side. ``max_permuted_batches``/``record_choice_batch`` are
    the witness-minimization hooks :func:`prove_order_independence`
    uses; workloads rarely set them directly.
    """

    permute: bool = False
    order: str = "reverse"
    permute_seed: int = 0
    #: Permute only the first N choice batches (batches where the ready
    #: pool actually offered a choice); None = no limit. Limit 0 with
    #: permute=True is the baseline schedule with choice counting on.
    max_permuted_batches: Optional[int] = None
    #: Record the dispatch order (and races) of choice batch N, for
    #: witness extraction.
    record_choice_batch: Optional[int] = None
    #: Keep at most this many distinct race records (the total is still
    #: counted past the cap).
    max_races: int = 50
    #: Per-container, per-batch access-list cap: conflict checking is
    #: pairwise, so this bounds the quadratic term.
    max_accesses_per_state: int = 128

    def __post_init__(self) -> None:
        if self.order not in _ORDERS:
            raise AnalysisError(
                f"unknown permutation order {self.order!r} "
                f"(expected one of {', '.join(_ORDERS)})")


@dataclass(frozen=True)
class ScheduleRace:
    """Two same-timestamp events touched the same state, unordered.

    A race is a *report*, not an error: it means the outcome legally
    depends on the kernel's arbitrary eid tie-break. Whether that
    dependence reaches an observable result is what permutation mode
    answers.
    """

    time: float
    state: str
    item: Optional[str]
    a_label: str
    a_kind: str
    b_label: str
    b_kind: str

    @property
    def kind_pair(self) -> str:
        """Telemetry-friendly conflict class, e.g. ``read-write``."""
        return "-".join(sorted((self.a_kind, self.b_kind)))

    def to_dict(self) -> dict:
        """JSON-ready form; inverse of :meth:`from_dict`."""
        return {"time": self.time, "state": self.state, "item": self.item,
                "a": {"label": self.a_label, "kind": self.a_kind},
                "b": {"label": self.b_label, "kind": self.b_kind}}

    @classmethod
    def from_dict(cls, data: dict) -> "ScheduleRace":
        return cls(time=float(data["time"]), state=data["state"],
                   item=data.get("item"),
                   a_label=data["a"]["label"], a_kind=data["a"]["kind"],
                   b_label=data["b"]["label"], b_kind=data["b"]["kind"])


# --------------------------------------------------------------------------
# Tracked containers
# --------------------------------------------------------------------------
#
# Exact-type subclasses so wrapped state keeps behaving like the plain
# container everywhere (json, dict(), iteration, pickling via
# __reduce__). Each mutator/reader notifies the owning sanitizer, which
# ignores the notification unless a batch dispatch is in flight.


def _item_key(key: Any) -> str:
    """A stable per-run label for one dict/set element."""
    if key is None or isinstance(key, (str, int, float, bool, tuple)):
        text = repr(key)
        return text if len(text) <= 60 else text[:57] + "..."
    return f"{type(key).__name__}@{id(key):#x}"


class TrackedDict(dict):
    """A dict that reports per-key reads/writes to its sanitizer."""

    __slots__ = ("_san", "_label")

    def __init__(self, san: "ScheduleSanitizer", label: str, *args) -> None:
        dict.__init__(self, *args)
        self._san = san
        self._label = label

    def __reduce__(self):
        return (dict, (dict(self),))

    # reads ---------------------------------------------------------------
    def __getitem__(self, key):
        self._san.note_read(self._label, _item_key(key))
        return dict.__getitem__(self, key)

    def get(self, key, default=None):
        self._san.note_read(self._label, _item_key(key))
        return dict.get(self, key, default)

    def __contains__(self, key):
        self._san.note_read(self._label, _item_key(key))
        return dict.__contains__(self, key)

    def __iter__(self):
        self._san.note_read(self._label, None)
        return dict.__iter__(self)

    def __len__(self):
        self._san.note_read(self._label, None)
        return dict.__len__(self)

    def keys(self):
        self._san.note_read(self._label, None)
        return dict.keys(self)

    def values(self):
        self._san.note_read(self._label, None)
        return dict.values(self)

    def items(self):
        self._san.note_read(self._label, None)
        return dict.items(self)

    # writes --------------------------------------------------------------
    def __setitem__(self, key, value):
        self._san.note_write(self._label, _item_key(key))
        dict.__setitem__(self, key, value)

    def __delitem__(self, key):
        self._san.note_write(self._label, _item_key(key))
        dict.__delitem__(self, key)

    def pop(self, key, *default):
        self._san.note_write(self._label, _item_key(key))
        return dict.pop(self, key, *default)

    def setdefault(self, key, default=None):
        self._san.note_write(self._label, _item_key(key))
        return dict.setdefault(self, key, default)

    def popitem(self):
        self._san.note_write(self._label, None)
        return dict.popitem(self)

    def update(self, *args, **kwargs):
        self._san.note_write(self._label, None)
        dict.update(self, *args, **kwargs)

    def clear(self):
        self._san.note_write(self._label, None)
        dict.clear(self)


class TrackedList(list):
    """A list whose appends count as commutative accumulation.

    Two same-batch appends are *content*-commutative (the multiset is
    order-independent; element order is permutation mode's job), so
    ``append``/``extend`` only conflict with reads and order-sensitive
    writes.
    """

    __slots__ = ("_san", "_label")

    def __init__(self, san: "ScheduleSanitizer", label: str,
                 iterable=()) -> None:
        list.__init__(self, iterable)
        self._san = san
        self._label = label

    def __reduce__(self):
        return (list, (list(self),))

    # reads ---------------------------------------------------------------
    def __getitem__(self, index):
        self._san.note_read(self._label, None)
        return list.__getitem__(self, index)

    def __iter__(self):
        self._san.note_read(self._label, None)
        return list.__iter__(self)

    def __len__(self):
        self._san.note_read(self._label, None)
        return list.__len__(self)

    def __contains__(self, value):
        self._san.note_read(self._label, None)
        return list.__contains__(self, value)

    def index(self, *args):
        self._san.note_read(self._label, None)
        return list.index(self, *args)

    # commutative accumulation -------------------------------------------
    def append(self, value):
        self._san.note_update(self._label, None, "append")
        list.append(self, value)

    def extend(self, iterable):
        self._san.note_update(self._label, None, "append")
        list.extend(self, iterable)

    # order-sensitive writes ----------------------------------------------
    def __setitem__(self, index, value):
        self._san.note_write(self._label, None)
        list.__setitem__(self, index, value)

    def __delitem__(self, index):
        self._san.note_write(self._label, None)
        list.__delitem__(self, index)

    def insert(self, index, value):
        self._san.note_write(self._label, None)
        list.insert(self, index, value)

    def pop(self, *args):
        self._san.note_write(self._label, None)
        return list.pop(self, *args)

    def remove(self, value):
        self._san.note_write(self._label, None)
        list.remove(self, value)

    def sort(self, **kwargs):
        self._san.note_write(self._label, None)
        list.sort(self, **kwargs)

    def reverse(self):
        self._san.note_write(self._label, None)
        list.reverse(self)

    def clear(self):
        self._san.note_write(self._label, None)
        list.clear(self)


class TrackedSet(set):
    """A set with per-element commutative add/discard tracking."""

    __slots__ = ("_san", "_label")

    def __init__(self, san: "ScheduleSanitizer", label: str,
                 iterable=()) -> None:
        set.__init__(self, iterable)
        self._san = san
        self._label = label

    def __reduce__(self):
        return (set, (set(self),))

    # reads ---------------------------------------------------------------
    def __contains__(self, value):
        self._san.note_read(self._label, _item_key(value))
        return set.__contains__(self, value)

    def __iter__(self):
        self._san.note_read(self._label, None)
        return set.__iter__(self)

    def __len__(self):
        self._san.note_read(self._label, None)
        return set.__len__(self)

    # commutative per-element updates -------------------------------------
    def add(self, value):
        self._san.note_update(self._label, _item_key(value), "add")
        set.add(self, value)

    def discard(self, value):
        self._san.note_update(self._label, _item_key(value), "discard")
        set.discard(self, value)

    def remove(self, value):
        self._san.note_update(self._label, _item_key(value), "discard")
        set.remove(self, value)

    def update(self, *iterables):
        self._san.note_update(self._label, None, "add")
        set.update(self, *iterables)

    # order-sensitive writes ----------------------------------------------
    def pop(self):
        self._san.note_write(self._label, None)
        return set.pop(self)

    def clear(self):
        self._san.note_write(self._label, None)
        set.clear(self)


class TrackedDeque(deque):
    """A deque distinguishing append ends (they do not commute)."""

    __slots__ = ("_san", "_label")

    def __init__(self, san: "ScheduleSanitizer", label: str,
                 iterable=(), maxlen=None) -> None:
        deque.__init__(self, iterable, maxlen)
        self._san = san
        self._label = label

    def __reduce__(self):
        return (deque, (list(self), self.maxlen))

    # reads ---------------------------------------------------------------
    def __getitem__(self, index):
        self._san.note_read(self._label, None)
        return deque.__getitem__(self, index)

    def __iter__(self):
        self._san.note_read(self._label, None)
        return deque.__iter__(self)

    def __len__(self):
        self._san.note_read(self._label, None)
        return deque.__len__(self)

    def __contains__(self, value):
        self._san.note_read(self._label, None)
        return deque.__contains__(self, value)

    # commutative accumulation, one tag per end ---------------------------
    def append(self, value):
        self._san.note_update(self._label, None, "append")
        deque.append(self, value)

    def extend(self, iterable):
        self._san.note_update(self._label, None, "append")
        deque.extend(self, iterable)

    def appendleft(self, value):
        self._san.note_update(self._label, None, "appendleft")
        deque.appendleft(self, value)

    def extendleft(self, iterable):
        self._san.note_update(self._label, None, "appendleft")
        deque.extendleft(self, iterable)

    # order-sensitive writes ----------------------------------------------
    def popleft(self):
        self._san.note_write(self._label, None)
        return deque.popleft(self)

    def pop(self):
        self._san.note_write(self._label, None)
        return deque.pop(self)

    def remove(self, value):
        self._san.note_write(self._label, None)
        deque.remove(self, value)

    def rotate(self, n=1):
        self._san.note_write(self._label, None)
        deque.rotate(self, n)

    def clear(self):
        self._san.note_write(self._label, None)
        deque.clear(self)


class TrackedRandom(random.Random):
    """A substream whose draws count as writes on its stream label.

    Every high-level ``random.Random`` method funnels through
    :meth:`random` or :meth:`getrandbits`, so noting just those two
    covers ``uniform``/``randrange``/``expovariate``/... without
    changing a single drawn value (state is adopted via ``setstate``).
    """

    def __init__(self, san: "ScheduleSanitizer", label: str,
                 state: tuple) -> None:
        random.Random.__init__(self)
        self.setstate(state)
        self._san = san
        self._label = label

    def random(self):
        self._san.note_write(self._label, None)
        return random.Random.random(self)

    def getrandbits(self, k):
        self._san.note_write(self._label, None)
        return random.Random.getrandbits(self, k)


#: Exact container types :meth:`ScheduleSanitizer.track_object` wraps.
_WRAPPABLE = {dict: TrackedDict, list: TrackedList, set: TrackedSet,
              deque: TrackedDeque}


def _event_label(event: Any, callbacks: list) -> str:
    """Human-readable identity of one dispatch: event kind -> waiters."""
    base = type(event).__name__
    generator = getattr(event, "_generator", None)
    if generator is not None:
        name = getattr(generator, "__name__", None)
        if name:
            base = f"Process({name})"
    names = []
    for callback in callbacks:
        owner = getattr(callback, "__self__", None)
        generator = getattr(owner, "_generator", None)
        if generator is not None:
            name = getattr(generator, "__name__", None)
            if name and name not in names:
                names.append(name)
    if names:
        return f"{base}->{','.join(names)}"
    return base


_KIND_NAMES = {"r": "read", "w": "write"}


def _kind_name(kind: str) -> str:
    return _KIND_NAMES.get(kind, "update")


class ScheduleSanitizer:
    """Race detector + schedule permuter for one simulation run.

    Attach to an environment *before* running the workload::

        san = ScheduleSanitizer(SanitizeConfig())
        san.attach(env)
        san.track_object("transfers", transfer_service)
        env.run()
        for race in san.races: ...

    While attached, the kernel dispatches through
    ``_step_batch_sanitized``; with ``permute=False`` the dispatch order
    is bit-identical to the normal hot loop.
    """

    def __init__(self, config: Optional[SanitizeConfig] = None) -> None:
        self.config = config if config is not None else SanitizeConfig()
        self.env = None
        # -- run-level results --------------------------------------------
        self.races: List[ScheduleRace] = []
        #: Distinct races observed, counted past the ``max_races`` cap.
        self.races_total = 0
        self.batches = 0
        #: Batches whose ready pool offered an actual ordering choice.
        self.choice_batches = 0
        self.permuted_batches = 0
        #: States whose access list hit ``max_accesses_per_state`` (the
        #: tail was not conflict-checked — reported, never silent).
        self.truncated_states = 0
        #: Witness capture (``record_choice_batch``): dispatch labels of
        #: the recorded batch, its timestamp, and its races.
        self.recorded_batch: Optional[List[str]] = None
        self.recorded_batch_time: Optional[float] = None
        self.recorded_batch_races: List[ScheduleRace] = []
        # -- internals ----------------------------------------------------
        self._race_keys = set()
        self._wrapped_rngs: Dict[int, TrackedRandom] = {}
        if self.config.permute and self.config.order == "random":
            self._rng = RandomStreams(
                self.config.permute_seed).stream("sanitizer/permutation")
        else:
            self._rng = None
        # -- per-batch state ----------------------------------------------
        self._batch_time = 0.0
        self._labels: List[str] = []
        self._anc: List[frozenset] = []
        self._prio: List[int] = []
        self._pending: Dict[int, Tuple[frozenset, int]] = {}
        self._acc: Dict[str, List[Tuple[Optional[str], str, int]]] = {}
        self._seen_acc = set()
        self._cur: Optional[int] = None
        self._counted = False
        self._permute_this = False
        self._recording = False

    # -- lifecycle --------------------------------------------------------

    def attach(self, env) -> "ScheduleSanitizer":
        """Route ``env``'s dispatch through the sanitizer."""
        if env._sanitizer is not None:
            raise AnalysisError("environment already has a sanitizer attached")
        env._sanitizer = self
        self.env = env
        return self

    def detach(self) -> None:
        """Restore the environment's normal hot loop."""
        if self.env is not None:
            self.env._sanitizer = None
            self.env = None

    # -- state registration ------------------------------------------------

    def track_value(self, label: str, value: Any) -> Any:
        """Wrap one container in its tracked proxy (identity if unknown)."""
        wrapper = _WRAPPABLE.get(type(value))
        if wrapper is None:
            return value
        if wrapper is TrackedDeque:
            return TrackedDeque(self, label, value, value.maxlen)
        return wrapper(self, label, value)

    def track_object(self, name: str, obj: Any,
                     attrs: Optional[Tuple[str, ...]] = None) -> Any:
        """Replace ``obj``'s plain container attributes with proxies.

        Only exact-type ``dict``/``list``/``set``/``deque`` attributes
        are wrapped (subclasses carry their own semantics). ``attrs``
        narrows the sweep to specific attribute names.
        """
        try:
            items = dict(vars(obj))
        except TypeError:
            items = {}
            for cls in type(obj).__mro__:
                for attr in getattr(cls, "__slots__", ()):
                    if attr not in items and hasattr(obj, attr):
                        items[attr] = getattr(obj, attr)
        for attr, value in sorted(items.items()):
            if attrs is not None and attr not in attrs:
                continue
            if type(value) not in _WRAPPABLE:
                continue
            label = f"{name}.{attr.lstrip('_')}"
            setattr(obj, attr, self.track_value(label, value))
        return obj

    def wrap_rng(self, label: str, rng: random.Random) -> random.Random:
        """Adopt ``rng``'s state into a draw-tracking clone."""
        if isinstance(rng, TrackedRandom):
            return rng
        # The memo pins the raw rng alive: keyed by id() alone, a freed
        # rng's address can be recycled by a brand-new stream, silently
        # aliasing two streams onto one wrapper (and one state).
        entry = self._wrapped_rngs.get(id(rng))
        if entry is not None and entry[0] is rng:
            return entry[1]
        wrapped = TrackedRandom(self, label, rng.getstate())
        self._wrapped_rngs[id(rng)] = (rng, wrapped)
        return wrapped

    def track_streams(self, streams: RandomStreams,
                      prefix: str = "stream:") -> RandomStreams:
        """Make every (present and future) substream draw-tracked.

        Call this *before* subsystems pull their streams: a consumer
        that already holds a raw ``random.Random`` keeps it.
        """
        for name, rng in sorted(streams._streams.items()):
            streams._streams[name] = self.wrap_rng(prefix + name, rng)
        original = type(streams).stream
        original_spawn = type(streams).spawn
        sanitizer = self

        def stream(name: str) -> random.Random:
            rng = original(streams, name)
            if not isinstance(rng, TrackedRandom):
                rng = sanitizer.wrap_rng(prefix + name, rng)
                streams._streams[name] = rng
            return rng

        def spawn(name: str) -> RandomStreams:
            # Child families inherit tracking so per-zone recovery
            # streams (streams.spawn("recovery/<zone>")) stay visible.
            child = original_spawn(streams, name)
            return sanitizer.track_streams(child,
                                           prefix=f"{prefix}{name}/")

        streams.stream = stream
        streams.spawn = spawn
        return streams

    # -- kernel hooks ------------------------------------------------------

    def begin_batch(self, now: float, ready_urgent: list,
                    ready_normal: list) -> None:
        """One timestamp's drain is starting; seed the ready pools."""
        self.batches += 1
        self._batch_time = now
        self._labels = []
        self._anc = []
        self._prio = []
        self._pending = {}
        self._acc = {}
        self._seen_acc = set()
        self._cur = None
        self._counted = False
        self._permute_this = False
        root = frozenset()
        for event in ready_urgent:
            self._pending[id(event)] = (root, 0)
        for event in ready_normal:
            self._pending[id(event)] = (root, 1)

    def pick(self, pool: list) -> int:
        """Index of the next event to dispatch from ``pool``."""
        n = len(pool)
        if n <= 1:
            return 0
        if not self._counted:
            self._counted = True
            self.choice_batches += 1
            config = self.config
            if config.permute:
                limit = config.max_permuted_batches
                if limit is None or self.choice_batches <= limit:
                    self._permute_this = True
                    self.permuted_batches += 1
            if (config.record_choice_batch is not None
                    and self.choice_batches == config.record_choice_batch):
                self._recording = True
                self.recorded_batch = []
                self.recorded_batch_time = self._batch_time
        if not self._permute_this:
            return 0
        if self.config.order == "reverse":
            return n - 1
        return self._rng.randrange(n)

    def on_dispatch(self, event: Any, callbacks: list) -> None:
        """``event`` is about to run its callbacks."""
        index = len(self._labels)
        ancestors, priority = self._pending.pop(id(event), (frozenset(), 1))
        label = _event_label(event, callbacks)
        self._labels.append(label)
        self._anc.append(ancestors)
        self._prio.append(priority)
        self._cur = index
        if self._recording:
            self.recorded_batch.append(label)

    def on_spawned(self, children, priority: int) -> None:
        """Events the current dispatch scheduled at this timestamp."""
        current = self._cur
        if current is None:
            return
        ancestors = self._anc[current] | {current}
        for child in children:
            self._pending[id(child)] = (ancestors, priority)

    def after_dispatch(self) -> None:
        """Kernel hook: the current event's cascade is fully absorbed."""
        self._cur = None

    # -- access recording --------------------------------------------------

    def note_read(self, state: str, item: Optional[str]) -> None:
        """Record a read of ``state`` (``item``-granular for dicts/sets)."""
        self._note(state, item, "r")

    def note_write(self, state: str, item: Optional[str]) -> None:
        """Record a write to ``state`` (conflicts with everything)."""
        self._note(state, item, "w")

    def note_update(self, state: str, item: Optional[str], op: str) -> None:
        """A commutative write (conflicts only across ops and with reads)."""
        self._note(state, item, "c:" + op)

    def _note(self, state: str, item: Optional[str], kind: str) -> None:
        current = self._cur
        if current is None:
            return
        key = (state, item, kind, current)
        if key in self._seen_acc:
            return
        self._seen_acc.add(key)
        self._acc.setdefault(state, []).append((item, kind, current))

    # -- batch analysis ----------------------------------------------------

    def end_batch(self) -> None:
        """Close the batch: find conflicts, emit telemetry, reset."""
        new_races: List[ScheduleRace] = []
        anc = self._anc
        prio = self._prio
        labels = self._labels
        cap = self.config.max_accesses_per_state
        for state, accesses in sorted(self._acc.items()):
            if len(accesses) < 2:
                continue
            if len(accesses) > cap:
                self.truncated_states += 1
                accesses = accesses[:cap]
            n = len(accesses)
            for i in range(n - 1):
                item_a, kind_a, index_a = accesses[i]
                for j in range(i + 1, n):
                    item_b, kind_b, index_b = accesses[j]
                    if index_a == index_b:
                        continue
                    if kind_a == "r" and kind_b == "r":
                        continue
                    if kind_a == kind_b and kind_a.startswith("c:"):
                        continue
                    if (item_a is not None and item_b is not None
                            and item_a != item_b):
                        continue
                    if prio[index_a] != prio[index_b]:
                        continue  # cross-priority order is contracted
                    if index_a in anc[index_b] or index_b in anc[index_a]:
                        continue  # scheduled-by chain orders them
                    race = ScheduleRace(
                        time=self._batch_time, state=state,
                        item=item_a if item_a is not None else item_b,
                        a_label=labels[index_a], a_kind=_kind_name(kind_a),
                        b_label=labels[index_b], b_kind=_kind_name(kind_b))
                    key = (state, race.item,
                           *sorted([(race.a_label, race.a_kind),
                                    (race.b_label, race.b_kind)]))
                    if key in self._race_keys:
                        continue
                    self._race_keys.add(key)
                    self.races_total += 1
                    new_races.append(race)
                    if len(self.races) < self.config.max_races:
                        self.races.append(race)
        if self._recording:
            self.recorded_batch_races = new_races
            self._recording = False
        env = self.env
        telemetry = getattr(env, "telemetry", None) if env is not None else None
        if telemetry is not None:
            telemetry.sanitizer_batches.inc()
            for race in new_races:
                telemetry.sanitizer_races.labels(kind=race.kind_pair).inc()
        self._acc = {}
        self._seen_acc = set()
        self._pending = {}

    # -- reporting ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready run summary (embedded in sanitize reports)."""
        return {
            "batches": self.batches,
            "choice_batches": self.choice_batches,
            "permuted_batches": self.permuted_batches,
            "races_total": self.races_total,
            "truncated_states": self.truncated_states,
            "races": [race.to_dict() for race in self.races],
        }


# --------------------------------------------------------------------------
# Order-independence proofs
# --------------------------------------------------------------------------


def signature_digest(signature: Any) -> str:
    """Short stable digest of an arbitrary run signature value."""
    return hashlib.sha256(repr(signature).encode()).hexdigest()[:16]


@dataclass(frozen=True)
class PermutationWitness:
    """A minimized counterexample to order-independence.

    ``choice_batch`` is the first batch whose permutation changes the
    canonical signature; ``baseline_order``/``permuted_order`` list that
    batch's dispatches in both schedules (identical simulation state up
    to the batch, so the pair is directly comparable).
    """

    time: float
    choice_batch: int
    baseline_order: List[str]
    permuted_order: List[str]
    races: List[dict]
    baseline_signature: str
    permuted_signature: str

    def to_dict(self) -> dict:
        """JSON-ready form; inverse of :meth:`from_dict`."""
        return {
            "time": self.time,
            "choice_batch": self.choice_batch,
            "baseline_order": list(self.baseline_order),
            "permuted_order": list(self.permuted_order),
            "races": [dict(race) for race in self.races],
            "baseline_signature": self.baseline_signature,
            "permuted_signature": self.permuted_signature,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PermutationWitness":
        return cls(
            time=float(data["time"]),
            choice_batch=int(data["choice_batch"]),
            baseline_order=list(data["baseline_order"]),
            permuted_order=list(data["permuted_order"]),
            races=[dict(race) for race in data.get("races", [])],
            baseline_signature=data["baseline_signature"],
            permuted_signature=data["permuted_signature"])


@dataclass(frozen=True)
class PermutationProof:
    """Outcome of :func:`prove_order_independence` for one scenario."""

    proved: bool
    runs: int
    choice_batches: int
    races_total: int
    witness: Optional[PermutationWitness] = None

    def to_dict(self) -> dict:
        """JSON-ready form; inverse of :meth:`from_dict`."""
        return {
            "proved": self.proved,
            "runs": self.runs,
            "choice_batches": self.choice_batches,
            "races_total": self.races_total,
            "witness": None if self.witness is None else self.witness.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PermutationProof":
        witness = data.get("witness")
        return cls(
            proved=bool(data["proved"]),
            runs=int(data["runs"]),
            choice_batches=int(data["choice_batches"]),
            races_total=int(data["races_total"]),
            witness=(None if witness is None
                     else PermutationWitness.from_dict(witness)))


def prove_order_independence(
        run_fn: Callable[[SanitizeConfig], Tuple[Any, ScheduleSanitizer]],
        *, order: str = "reverse", permute_seed: int = 0,
        max_runs: int = 40) -> PermutationProof:
    """Prove (or refute, with a minimized witness) order-independence.

    ``run_fn`` executes one *fresh* instance of the workload under the
    given config and returns ``(canonical_signature, sanitizer)``. The
    canonical signature must be insensitive to benign same-timestamp
    reordering of commutative aggregates (sorted completion lists, not
    completion-order lists) — it is the property being proved.

    Protocol: baseline run, then one fully-permuted run per adversary
    schedule — the requested ``order`` plus two seeded shuffles, since
    a single deterministic adversary can cancel itself (reversing the
    batch that *creates* events also reverses their eid order, which
    restores the baseline pairing one batch later). All-equal
    signatures proves the property. On the first divergence,
    binary-search the smallest prefix of choice batches whose
    permutation flips the signature, then replay twice more to capture
    that batch in both orders.
    """
    baseline_config = SanitizeConfig(
        permute=False, order=order, permute_seed=permute_seed)
    baseline_signature, baseline_san = run_fn(baseline_config)
    races_total = baseline_san.races_total
    total_choices = baseline_san.choice_batches
    runs = 1
    if total_choices == 0:
        return PermutationProof(proved=True, runs=runs,
                                choice_batches=0, races_total=races_total)
    probes = [(order, permute_seed)]
    for extra_seed in (permute_seed, permute_seed + 1):
        if ("random", extra_seed) not in probes:
            probes.append(("random", extra_seed))
    permuted_config = None
    for probe_order, probe_seed in probes:
        config = SanitizeConfig(permute=True, order=probe_order,
                                permute_seed=probe_seed)
        full_signature, _ = run_fn(config)
        runs += 1
        if full_signature != baseline_signature:
            permuted_config = config
            break
    divergent = None
    if permuted_config is None:
        # Every full-permutation adversary matched — but two adjacent
        # batches can still cancel (permuting the creation batch
        # re-permutes the next batch's eid order back into the baseline
        # pairing). Prefix schedules permute batches 1..k only, so the
        # boundary batch k+1 runs in its (now reshuffled) natural order
        # and a cancellation pair straddling it diverges. Probe k
        # ascending; the first divergence is already minimal.
        primary = replace(baseline_config, permute=True)
        for limit in range(1, total_choices):
            if runs >= max_runs - 2:   # keep budget for the capture pair
                break
            prefix_signature, _ = run_fn(
                replace(primary, max_permuted_batches=limit))
            runs += 1
            if prefix_signature != baseline_signature:
                divergent = limit
                permuted_config = primary
                break
        if divergent is None:
            return PermutationProof(proved=True, runs=runs,
                                    choice_batches=total_choices,
                                    races_total=races_total)
    else:
        # Smallest N such that permuting choice batches 1..N diverges.
        # Invariant: limit=high diverges, limit=low-1 does not (limit=0
        # is the baseline schedule by construction).
        low, high = 1, total_choices
        while low < high and runs < max_runs:
            mid = (low + high) // 2
            mid_signature, _ = run_fn(
                replace(permuted_config, max_permuted_batches=mid))
            runs += 1
            if mid_signature == baseline_signature:
                low = mid + 1
            else:
                high = mid
        divergent = high
    permuted_signature, permuted_san = run_fn(replace(
        permuted_config, max_permuted_batches=divergent,
        record_choice_batch=divergent))
    runs += 1
    _, ordered_san = run_fn(replace(
        permuted_config, max_permuted_batches=divergent - 1,
        record_choice_batch=divergent))
    runs += 1
    witness = PermutationWitness(
        time=(permuted_san.recorded_batch_time
              if permuted_san.recorded_batch_time is not None else 0.0),
        choice_batch=divergent,
        baseline_order=list(ordered_san.recorded_batch or []),
        permuted_order=list(permuted_san.recorded_batch or []),
        races=[race.to_dict() for race in permuted_san.recorded_batch_races],
        baseline_signature=signature_digest(baseline_signature),
        permuted_signature=signature_digest(permuted_signature))
    return PermutationProof(proved=False, runs=runs,
                            choice_batches=total_choices,
                            races_total=races_total, witness=witness)

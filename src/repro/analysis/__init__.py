"""``dgflint``: the determinism-contract linter.

The reproduction's central invariant — *same inputs + seeds →
bit-identical runs* (see ``docs/simulation-model.md``) — is what makes
years-long provenance, chaos ``run_signature`` fingerprints, and
checkpoint/restart replay trustworthy. This package makes that contract
*mechanical*: a pluggable AST linter whose rule pack encodes the repo's
real conventions (no wall clock in sim code, no unseeded randomness, no
order-sensitive iteration over unordered sets, no exact float comparison
on time/rate quantities, retry-contract hygiene, bounded telemetry
label cardinality).

Entry points:

* :func:`lint_paths` — lint files/trees, returns a :class:`Report`;
* ``repro lint`` / ``datagridflow lint`` — the CLI front-end;
* ``[tool.dgflint]`` in ``pyproject.toml`` — configuration;
* ``# dgf: noqa[DGF0xx]: <reason>`` — inline suppression (a reason is
  mandatory; a bare noqa is itself a finding, DGF090).

See ``docs/static-analysis.md`` for the rule catalog and the policy on
adding rules and suppressions.
"""

from repro.analysis.config import LintConfig, load_config
from repro.analysis.core import Finding, LintContext, Rule, Suppression, lint_paths, lint_source
from repro.analysis.report import Report, render_text
from repro.analysis.rules import RULES, all_rules

__all__ = [
    "Finding",
    "LintConfig",
    "LintContext",
    "Report",
    "Rule",
    "RULES",
    "Suppression",
    "all_rules",
    "lint_paths",
    "lint_source",
    "load_config",
    "render_text",
]

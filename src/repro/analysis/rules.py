"""The shipped rule pack: the determinism contract, rule by rule.

Each class encodes one convention the reproduction's bit-identity
guarantee rests on (see ``docs/simulation-model.md`` and
``docs/static-analysis.md``). Rules are instantiated once per run with
the resolved :class:`~repro.analysis.config.LintConfig` and must stay
stateless across files — all per-file state lives on the
:class:`~repro.analysis.core.LintContext`.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import List, Optional

from repro.analysis.config import LintConfig
from repro.analysis.core import LintContext, Rule, split_tokens

__all__ = ["RULES", "all_rules", "WallClock", "UnseededRandomness",
           "UnorderedIteration", "FloatEquality", "RetryContract",
           "LabelCardinality", "SubstreamLedger", "SharedModuleState"]


# --------------------------------------------------------------------------
# DGF001 — wall clock
# --------------------------------------------------------------------------


class WallClock(Rule):
    """Flag wall-clock reads and sleeps inside simulation code."""

    code = "DGF001"
    name = "no-wall-clock"
    rationale = (
        "Simulated processes live on the kernel's virtual clock "
        "(env.now, env.timeout). A wall-clock read or sleep couples the "
        "run to the host machine, so the same inputs and seeds stop "
        "producing bit-identical trajectories and every replay-based "
        "guarantee (provenance, run_signature, checkpoint restart) "
        "silently breaks.")

    _TIME_FUNCS = frozenset({
        "time", "time_ns", "monotonic", "monotonic_ns",
        "perf_counter", "perf_counter_ns", "process_time",
        "process_time_ns", "sleep",
    })
    _DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        """Flag resolved calls into time/datetime wall-clock APIs."""
        target = ctx.resolve_call_target(node.func)
        if target is None:
            return
        module, attr = target
        if module == "time" and attr in self._TIME_FUNCS:
            ctx.report(self, node,
                       f"wall-clock call time.{attr}(): sim code must use "
                       "env.now / env.timeout so runs stay replayable")
        elif (module in ("datetime", "datetime.datetime", "datetime.date")
              and attr in self._DATETIME_FUNCS):
            ctx.report(self, node,
                       f"wall-clock call {module.split('.')[-1]}.{attr}(): "
                       "derive timestamps from env.now, never the host "
                       "clock")


# --------------------------------------------------------------------------
# DGF002 — unseeded randomness
# --------------------------------------------------------------------------


class UnseededRandomness(Rule):
    """Flag the global ``random`` module, bare ``Random()``, and numpy RNG."""

    code = "DGF002"
    name = "no-unseeded-randomness"
    rationale = (
        "Every stochastic component draws from a named RandomStreams "
        "substream so that changing how much randomness one consumer "
        "uses never perturbs another. The process-global random module "
        "(shared, import-order-sensitive state), an ad-hoc Random() with "
        "a made-up seed, or numpy's global generator all break that "
        "isolation and with it seed-for-seed reproducibility.")

    _MODULE_FUNCS = frozenset({
        "random", "randint", "uniform", "choice", "choices", "shuffle",
        "sample", "randrange", "getrandbits", "seed", "gauss",
        "normalvariate", "expovariate", "lognormvariate", "betavariate",
        "triangular", "vonmisesvariate", "paretovariate",
        "weibullvariate", "binomialvariate", "randbytes",
    })

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        """Flag global-random, bare-Random, and numpy.random calls."""
        target = ctx.resolve_call_target(node.func)
        if target is None:
            return
        module, attr = target
        if module == "random":
            if attr in self._MODULE_FUNCS:
                ctx.report(self, node,
                           f"global random.{attr}(): draw from a named "
                           "RandomStreams substream instead")
            elif attr in ("Random", "SystemRandom"):
                ctx.report(self, node,
                           f"bare random.{attr}() construction: obtain "
                           "streams via RandomStreams.stream(name) so "
                           "substreams stay independent under one seed")
        elif module == "numpy.random" or module.startswith("numpy.random."):
            ctx.report(self, node,
                       f"numpy.random.{attr}(): numpy's global generator "
                       "is process state; seed a dedicated generator from "
                       "a RandomStreams substream")


# --------------------------------------------------------------------------
# DGF003 — iteration order over unordered collections
# --------------------------------------------------------------------------


class UnorderedIteration(Rule):
    """Flag effectful loops whose iteration order a set determines."""

    code = "DGF003"
    name = "no-unordered-effects"
    rationale = (
        "set/frozenset iteration order depends on insertion history and "
        "hash randomization of the values involved. When such a loop "
        "schedules kernel events, emits telemetry, or mutates shared "
        "state, the nondeterministic order leaks into the event heap and "
        "two identically-seeded runs diverge. Iterate a list, a dict "
        "used as an ordered set, or sorted(...) instead.")

    _EFFECT_METHODS = frozenset({
        # kernel scheduling
        "process", "timeout", "event", "schedule", "succeed", "fail",
        "interrupt", "run_process", "reschedule", "cancel",
        # telemetry
        "emit", "inc", "dec", "observe", "record", "labels", "set_value",
        # shared-state mutation / dispatch
        "append", "extend", "add", "remove", "discard", "pop", "push",
        "heappush", "submit", "put", "send", "note", "register",
    })

    def __init__(self, config: LintConfig) -> None:
        super().__init__(config)
        self._effects = self._EFFECT_METHODS | frozenset(
            config.effect_methods)

    def visit_For(self, node: ast.For, ctx: LintContext) -> None:
        """Flag for-loops over sets whose body has effects."""
        if not ctx.is_unordered(node.iter):
            return
        effect = self._first_effect(node, ctx)
        if effect is None:
            return
        ctx.report(self, node,
                   "iterating an unordered set with an effectful body "
                   f"({effect}): order leaks into shared state — iterate "
                   "a list/dict or sorted(...)")

    #: Commutative set mutations: inserting into an unordered target in
    #: any order yields the same value, so no order can leak.
    _COMMUTATIVE = frozenset({"add", "discard", "remove", "update"})

    def _first_effect(self, loop: ast.For,
                      ctx: LintContext) -> Optional[str]:
        """A human-readable description of the first effect in the body."""
        assigned_in_loop = {
            target.id
            for stmt in ast.walk(loop)
            if isinstance(stmt, ast.Assign)
            for target in stmt.targets if isinstance(target, ast.Name)
        }
        for stmt in loop.body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await)):
                    return "yields to the kernel"
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in self._effects):
                    receiver = node.func.value
                    # Calls on names created inside the loop body are
                    # loop-local accumulation, not shared-state effects.
                    if (isinstance(receiver, ast.Name)
                            and receiver.id in assigned_in_loop):
                        continue
                    # Commutative inserts into another unordered
                    # collection cannot leak iteration order.
                    if (node.func.attr in self._COMMUTATIVE
                            and ctx.is_unordered(receiver)):
                        continue
                    return f"calls .{node.func.attr}()"
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (node.targets if isinstance(node, ast.Assign)
                               else [node.target])
                    for target in targets:
                        if isinstance(target, (ast.Attribute, ast.Subscript)):
                            base = target.value
                            if (isinstance(base, ast.Name)
                                    and base.id in assigned_in_loop):
                                continue
                            return "writes through to outer state"
        return None


# --------------------------------------------------------------------------
# DGF004 — float equality on time/rate quantities
# --------------------------------------------------------------------------


class FloatEquality(Rule):
    """Flag ``==`` / ``!=`` between time- or rate-derived floats."""

    code = "DGF004"
    name = "no-float-time-equality"
    rationale = (
        "Simulation times and transfer rates are accumulated floats; "
        "docs/simulation-model.md's tolerance rule says comparisons must "
        "allow a few ulps of clock rounding (see "
        "TransferService._finish_tolerance). Exact ==/!= on such values "
        "is true on one machine and false on another, which is exactly "
        "the drift the bit-identity contract exists to prevent. Compare "
        "with an explicit tolerance, or suppress with a reason when the "
        "comparison is an intentional exact-identity check.")

    _TIME_TOKENS = frozenset({
        "time", "now", "rate", "finish", "when", "deadline", "latency",
        "duration", "makespan", "bandwidth", "timestamp", "elapsed",
    })

    def __init__(self, config: LintConfig) -> None:
        super().__init__(config)
        self._tokens = self._TIME_TOKENS | frozenset(
            token.lower() for token in config.time_tokens)

    def visit_Compare(self, node: ast.Compare, ctx: LintContext) -> None:
        """Flag ==/!= whose operands look time- or rate-derived."""
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        operands = [node.left, *node.comparators]
        # Comparisons against strings, None, or bools are identity /
        # sentinel checks, never float arithmetic.
        for operand in operands:
            if (isinstance(operand, ast.Constant)
                    and isinstance(operand.value, (str, bool, bytes))
                    or isinstance(operand, ast.Constant)
                    and operand.value is None):
                return
        suspect = next((name for operand in operands
                        for name in self._time_names(operand)), None)
        if suspect is not None:
            ctx.report(self, node,
                       f"exact float comparison on {suspect!r}: time/rate "
                       "values need the tolerance rule (or a reasoned "
                       "noqa for intentional identity checks)")

    def _time_names(self, node: ast.AST) -> List[str]:
        names: List[str] = []
        for sub in ast.walk(node):
            identifier = None
            if isinstance(sub, ast.Name):
                identifier = sub.id
            elif isinstance(sub, ast.Attribute):
                identifier = sub.attr
            if identifier and (split_tokens(identifier) & self._tokens):
                names.append(identifier)
        return names


# --------------------------------------------------------------------------
# DGF005 — retry-contract hygiene
# --------------------------------------------------------------------------


class RetryContract(Rule):
    """Keep the Retryable hierarchy and recovery dispatch honest."""

    code = "DGF005"
    name = "retry-contract"
    rationale = (
        "Recovery dispatches strictly on the Retryable marker type — "
        "never on message strings. A transient-sounding error class "
        "outside that hierarchy silently becomes fatal (no retry, no "
        "failover, no restart); and a bare `except Exception` inside a "
        "dispatch path drags logic errors into the retry loop, turning "
        "real bugs into infinite backoff. The whitelist below is audited "
        "against repro.errors by tests/test_retryable_audit.py.")

    _TRANSIENT_TOKENS = ("offline", "outage", "interrupted", "unavailable",
                         "timeout", "transient", "flaky", "throttled",
                         "congested", "degraded", "busy")
    # Suffixes that mark a name as exception-like. Deliberately narrow:
    # a transient-sounding name alone (Timeout, Outage) is not enough —
    # the sim kernel's Timeout is an *event*, a FaultSchedule's Outage
    # is a *record* — it must also read as an error or derive from one.
    _EXCEPTIONISH = ("error", "exception", "failure", "fault")

    def __init__(self, config: LintConfig) -> None:
        super().__init__(config)
        self._retryable = frozenset(config.retryable) | {"Retryable"}
        self._dispatch_paths = tuple(config.dispatch_paths)

    def _in_dispatch_path(self, ctx: LintContext) -> bool:
        return any(fnmatch(ctx.path, pattern)
                   for pattern in self._dispatch_paths)

    @staticmethod
    def _base_names(node: ast.ClassDef) -> List[str]:
        names = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                names.append(base.id)
            elif isinstance(base, ast.Attribute):
                names.append(base.attr)
        return names

    def _looks_transient(self, name: str) -> bool:
        lowered = name.lower()
        return any(token in lowered for token in self._TRANSIENT_TOKENS)

    def _looks_exceptionish(self, name: str) -> bool:
        lowered = name.lower()
        return any(lowered.endswith(suffix) for suffix in self._EXCEPTIONISH)

    def visit_ClassDef(self, node: ast.ClassDef, ctx: LintContext) -> None:
        """Flag transient-sounding error classes outside the hierarchy."""
        if not self._looks_transient(node.name):
            return
        bases = self._base_names(node)
        exception_like = (
            self._looks_exceptionish(node.name)
            or any(self._looks_exceptionish(base) or base in self._retryable
                   for base in bases))
        if not exception_like or not bases:
            return
        if not any(base in self._retryable for base in bases):
            ctx.report(self, node,
                       f"class {node.name} sounds transient but no base is "
                       "in the Retryable hierarchy "
                       f"({', '.join(sorted(self._retryable))}): recovery "
                       "will treat it as fatal")

    def visit_Raise(self, node: ast.Raise, ctx: LintContext) -> None:
        """Flag raises of transient-sounding non-Retryable errors."""
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = None
        if isinstance(exc, ast.Name):
            name = exc.id
        elif isinstance(exc, ast.Attribute):
            name = exc.attr
        if name is None or name in self._retryable:
            return
        if self._looks_transient(name) and self._looks_exceptionish(name):
            ctx.report(self, node,
                       f"raising {name}, which sounds transient but is not "
                       "a known Retryable type: recovery cannot dispatch "
                       "on it")

    def visit_ExceptHandler(self, node: ast.ExceptHandler,
                            ctx: LintContext) -> None:
        """Flag broad catches inside recovery dispatch paths."""
        if not self._in_dispatch_path(ctx):
            return
        names = []
        handler_type = node.type
        if handler_type is None:
            names.append("<bare except>")
        else:
            elements = (handler_type.elts
                        if isinstance(handler_type, ast.Tuple)
                        else [handler_type])
            for element in elements:
                if isinstance(element, ast.Name):
                    names.append(element.id)
        broad = [name for name in names
                 if name in ("Exception", "BaseException", "<bare except>")]
        if broad:
            ctx.report(self, node,
                       f"catching {broad[0]} in a recovery dispatch path: "
                       "dispatch must be by Retryable type only, or logic "
                       "errors end up inside the retry loop")


# --------------------------------------------------------------------------
# DGF006 — telemetry label cardinality
# --------------------------------------------------------------------------


class LabelCardinality(Rule):
    """Flag metric labels whose values are unbounded identifiers."""

    code = "DGF006"
    name = "bounded-metric-labels"
    rationale = (
        "Every distinct label value materializes a new metric series "
        "that lives for the rest of the run. Keying a series on a raw "
        "namespace path, GUID, or URL means series count grows with the "
        "object population — exports balloon, and cross-run comparisons "
        "stop lining up. Put unbounded identifiers in the event log "
        "(log.emit) and keep metric labels to small closed enums.")

    _UNBOUNDED = frozenset({"path", "guid", "oid", "uuid", "url", "uri",
                            "filename", "object"})

    def __init__(self, config: LintConfig) -> None:
        super().__init__(config)
        self._allowed = frozenset(config.allowed_labels)

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        """Flag .labels() keywords carrying unbounded identifiers."""
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "labels"):
            return
        for keyword in node.keywords:
            if keyword.arg is None or keyword.arg in self._allowed:
                continue
            offender = self._unbounded_reason(keyword.arg, keyword.value)
            if offender is not None:
                ctx.report(self, node,
                           f"metric label {keyword.arg!r} {offender}: "
                           "unbounded cardinality — move it to log.emit() "
                           "or label with a closed enum")

    def _unbounded_reason(self, arg: str, value: ast.AST) -> Optional[str]:
        if split_tokens(arg) & self._UNBOUNDED:
            return "is named like a raw identifier"
        for sub in ast.walk(value):
            identifier = None
            if isinstance(sub, ast.Name):
                identifier = sub.id
            elif isinstance(sub, ast.Attribute):
                identifier = sub.attr
            if (identifier is not None and identifier not in self._allowed
                    and split_tokens(identifier) & self._UNBOUNDED):
                return f"is derived from {identifier!r}"
        return None


# --------------------------------------------------------------------------
# DGF007 — whole-program substream ledger
# --------------------------------------------------------------------------


def _module_of(path: str) -> str:
    """Dotted module name for a source path (best-effort, src-layout).

    ``src/repro/faults/recovery.py`` -> ``repro.faults.recovery``. Used
    to join ``from m import CONST`` references with the module that
    defines ``CONST``, so the ledger resolves stream-name constants
    across files.
    """
    parts = path.replace("\\", "/").split("/")
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class SubstreamLedger(Rule):
    """Cross-file ledger of ``RandomStreams.stream(name)`` draw sites.

    A program-scope rule: ``visit_*`` hooks accumulate every draw site
    and every module-level string constant across the shared-rule file
    loop; :meth:`finalize` resolves names (literals, constants,
    cross-file constant imports, f-string patterns) and flags each
    stream name drawn from more than one subsystem scope.
    """

    code = "DGF007"
    name = "substream-ledger"
    rationale = (
        "A named substream is one consumer's private randomness: that "
        "isolation is what lets one component change how much it draws "
        "without perturbing any other. When two subsystems (or two "
        "classes) draw the same stream name, they either share one "
        "Random — so their draw *interleaving* becomes part of the "
        "trajectory and any same-timestamp reordering silently changes "
        "both — or they independently reconstruct it, which silently "
        "correlates randomness that looks independent. Either way the "
        "collision must be explicit: hand the stream over in one place, "
        "derive per-consumer names, or waive with the sharing contract "
        "spelled out.")

    #: Receiver identifier tokens that mark a ``.stream(...)`` call as a
    #: RandomStreams draw (``streams.stream``, ``self._streams.stream``,
    #: ``scenario.rng_streams.stream`` ...).
    _RECEIVER_TOKENS = frozenset({"stream", "streams", "rng"})

    def __init__(self, config: LintConfig) -> None:
        super().__init__(config)
        #: (module, CONST) -> string value, from module-level assigns.
        self._constants: dict = {}
        #: Draw sites: list of (key, path, scope_kind, scope, line, col)
        #: where key is ("lit", value) or ("ref", module, const_name).
        self._sites: list = []

    def visit_Module(self, node: ast.Module, ctx: LintContext) -> None:
        """Collect module-level string constants (stream-name homes)."""
        module = _module_of(ctx.path)
        for stmt in node.body:
            if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)):
                self._constants[(module, stmt.targets[0].id)] = (
                    stmt.value.value)

    def _streamish(self, receiver: ast.AST) -> bool:
        identifier = None
        if isinstance(receiver, ast.Name):
            identifier = receiver.id
        elif isinstance(receiver, ast.Attribute):
            identifier = receiver.attr
        return (identifier is not None
                and bool(split_tokens(identifier) & self._RECEIVER_TOKENS))

    def _name_key(self, arg: ast.AST, ctx: LintContext):
        """Resolve a stream-name argument to a ledger key, or None."""
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return ("lit", arg.value)
        if isinstance(arg, ast.JoinedStr):
            parts = []
            for value in arg.values:
                if isinstance(value, ast.Constant):
                    parts.append(str(value.value))
                else:
                    parts.append("{}")
            return ("lit", "".join(parts))
        if isinstance(arg, ast.Name):
            imported = ctx.from_imports.get(arg.id)
            if imported is not None:
                return ("ref", imported[0], imported[1])
            return ("ref", _module_of(ctx.path), arg.id)
        if (isinstance(arg, ast.BinOp) and isinstance(arg.op, ast.Add)):
            # PREFIX + suffix concatenation: treat like an f-string
            # pattern anchored on whichever side resolves.
            left = self._name_key(arg.left, ctx)
            right = self._name_key(arg.right, ctx)
            left_lit = left[1] if left and left[0] == "lit" else "{}"
            right_lit = right[1] if right and right[0] == "lit" else "{}"
            if left or right:
                return ("concat", left or ("lit", "{}"),
                        right or ("lit", "{}"), left_lit + right_lit)
        return None

    def _scope(self, ctx: LintContext) -> tuple:
        """(kind, name) of the innermost subsystem scope at this site."""
        if ctx.class_stack:
            return ("class", ctx.class_stack[-1].name)
        if ctx.function_stack:
            function = ctx.function_stack[0]
            return ("function", getattr(function, "name", "<lambda>"))
        return ("module", "<module>")

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        """Record every ``<streams>.stream(<name>)`` draw site."""
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "stream"):
            return
        if not self._streamish(func.value):
            return
        if not node.args:
            return
        key = self._name_key(node.args[0], ctx)
        if key is None:
            return
        kind, scope = self._scope(ctx)
        self._sites.append((key, ctx.path, kind, scope,
                            node.lineno, node.col_offset))

    def _resolve(self, key) -> str:
        """Final stream-name (or pattern) text for a ledger key."""
        if key[0] == "lit":
            return key[1]
        if key[0] == "ref":
            return self._constants.get((key[1], key[2]), f"<{key[2]}>")
        # concat
        return self._resolve(key[1]) + self._resolve(key[2])

    def finalize(self) -> List["Finding"]:
        from repro.analysis.core import Finding
        by_name: dict = {}
        for key, path, kind, scope, line, col in self._sites:
            by_name.setdefault(self._resolve(key), []).append(
                (path, kind, scope, line, col))
        findings: List[Finding] = []
        for name, sites in sorted(by_name.items()):
            scopes = {(path, scope) for path, _kind, scope, _l, _c in sites}
            if len(scopes) < 2:
                continue
            paths = {path for path, _scope in scopes}
            class_scopes = {(path, scope)
                            for path, kind, scope, _l, _c in sites
                            if kind == "class"}
            # Within one file, only distinct *classes* collide — separate
            # top-level functions routinely build their own private
            # RandomStreams families (tests, scenario builders).
            if len(paths) < 2 and len(class_scopes) < 2:
                continue
            for path, kind, scope, line, col in sites:
                others = sorted(
                    f"{other_path}:{other_line} ({other_scope})"
                    for other_path, _k, other_scope, other_line, _c2 in sites
                    if (other_path, other_scope) != (path, scope))
                if not others:
                    continue
                shown = ", ".join(others[:3])
                if len(others) > 3:
                    shown += f", +{len(others) - 3} more"
                findings.append(Finding(
                    code=self.code, path=path, line=line, col=col,
                    message=f"substream {name!r} is also drawn at {shown}: "
                            "shared streams couple consumers' draw order — "
                            "derive per-consumer names or hand the stream "
                            "over explicitly"))
        return findings


# --------------------------------------------------------------------------
# DGF008 — module-level mutable state reachable from kernel processes
# --------------------------------------------------------------------------


class SharedModuleState(Rule):
    """Flag module-level mutable containers mutated from functions."""

    code = "DGF008"
    name = "no-shared-module-state"
    rationale = (
        "A module-level dict/list/set mutated from inside functions is "
        "state the kernel cannot see: it outlives every Environment, "
        "leaks between back-to-back runs in one process, and diverges "
        "across the seed-farm's worker processes — three ways for 'same "
        "inputs, same seeds' to stop meaning 'same outputs'. Hang the "
        "state off an object the run owns (the environment, a service, "
        "a scenario), or pass it explicitly. Import-time population of "
        "registries is fine; it is post-import mutation that aliases "
        "runs together.")

    _MUTABLE_CALLS = frozenset({"dict", "list", "set", "deque",
                                "defaultdict", "OrderedDict", "Counter"})
    _MUTATORS = frozenset({"append", "extend", "insert", "add", "discard",
                           "remove", "pop", "popleft", "popitem",
                           "appendleft", "extendleft", "clear", "update",
                           "setdefault"})

    def _mutable_ctor(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            return name in self._MUTABLE_CALLS
        return False

    @staticmethod
    def _subscript_base(node: ast.AST):
        if isinstance(node, ast.Subscript) and isinstance(node.value,
                                                          ast.Name):
            return node.value.id
        return None

    def _mutation_target(self, node: ast.AST):
        """Name of the module global ``node`` mutates, if any."""
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.attr in self._MUTATORS):
            return node.func.value.id
        if isinstance(node, ast.Assign):
            for target in node.targets:
                base = self._subscript_base(target)
                if base is not None:
                    return base
        if isinstance(node, ast.AugAssign):
            return self._subscript_base(node.target)
        if isinstance(node, ast.Delete):
            for target in node.targets:
                base = self._subscript_base(target)
                if base is not None:
                    return base
        return None

    def visit_Module(self, node: ast.Module, ctx: LintContext) -> None:
        """Self-contained per-file pass (runs once, at the module node)."""
        candidates: dict = {}
        for stmt in node.body:
            target = None
            if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)):
                target = stmt.targets[0].id
                value = stmt.value
            elif (isinstance(stmt, ast.AnnAssign)
                  and isinstance(stmt.target, ast.Name)
                  and stmt.value is not None):
                target = stmt.target.id
                value = stmt.value
            if target is not None and self._mutable_ctor(value):
                candidates[target] = stmt
        if not candidates:
            return
        mutators: dict = {}
        for scope in ast.walk(node):
            if not isinstance(scope, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                continue
            # A function that rebinds the name locally (no ``global``)
            # mutates its own copy, not the module state.
            local = {arg.arg for arg in scope.args.args}
            local.update(arg.arg for arg in scope.args.kwonlyargs)
            has_global = set()
            for sub in ast.walk(scope):
                if isinstance(sub, ast.Global):
                    has_global.update(sub.names)
                elif isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if isinstance(target, ast.Name):
                            local.add(target.id)
            local -= has_global
            for sub in ast.walk(scope):
                name = self._mutation_target(sub)
                if (name in candidates and name not in local
                        and name not in mutators):
                    mutators[name] = (scope.name, sub.lineno)
        for name in sorted(mutators):
            function, line = mutators[name]
            stmt = candidates[name]
            ctx.report(self, stmt,
                       f"module-level mutable {name!r} is mutated from "
                       f"{function}() (line {line}): module state outlives "
                       "the environment and aliases runs/processes "
                       "together — own it from the run (env, service, "
                       "scenario) or pass it explicitly")


#: The shipped rule classes, in code order. ``docs/static-analysis.md``
#: renders its catalog from these attributes.
RULES = (WallClock, UnseededRandomness, UnorderedIteration, FloatEquality,
         RetryContract, LabelCardinality, SubstreamLedger,
         SharedModuleState)


def all_rules(config: LintConfig) -> List[Rule]:
    """Instantiate every selected rule under ``config``."""
    return [rule(config) for rule in RULES if config.selects(rule.code)]

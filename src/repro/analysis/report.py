"""Machine-readable lint reports.

The JSON document is the CI artifact: stable keys, counts per rule, the
full finding list, and every suppression with its reason so "zero
unexplained suppressions" can be audited from the artifact alone
without re-reading the tree. :meth:`Report.from_dict` round-trips
:meth:`Report.to_dict` exactly; the schema version guards consumers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.core import Finding, Suppression
from repro.errors import AnalysisError

__all__ = ["Report", "render_text", "SCHEMA_VERSION"]

#: v2 added the optional ``sanitizer`` payload (runtime schedule-
#: sanitizer results embedded next to static findings); v1 documents
#: are still readable — ``from_dict`` accepts both.
SCHEMA_VERSION = 2

_READABLE_VERSIONS = (1, SCHEMA_VERSION)


@dataclass
class Report:
    """Outcome of one lint (or sanitize) run."""

    findings: List[Finding] = field(default_factory=list)
    suppressions: List[Suppression] = field(default_factory=list)
    files_scanned: int = 0
    config_source: Optional[str] = None
    #: Runtime sanitizer payload (``repro sanitize``): a mapping with
    #: per-scenario order-independence proofs, race summaries, and any
    #: permutation witnesses. None for pure lint runs.
    sanitizer: Optional[dict] = None

    @property
    def ok(self) -> bool:
        """True when no live finding remains and no proof was refuted."""
        if self.findings:
            return False
        if self.sanitizer is not None and not self.sanitizer.get(
                "proved", True):
            return False
        return True

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def counts(self) -> Dict[str, int]:
        """Live finding counts per rule code (sorted by code)."""
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.code] = out.get(finding.code, 0) + 1
        return dict(sorted(out.items()))

    def to_dict(self) -> dict:
        """The JSON report document (stable schema, see module docs)."""
        from repro.analysis.rules import RULES
        rationale = {rule.code: {"name": rule.name,
                                 "rationale": rule.rationale}
                     for rule in RULES}
        return {
            "tool": "dgflint",
            "schema_version": SCHEMA_VERSION,
            "config_source": self.config_source,
            "files_scanned": self.files_scanned,
            "summary": self.counts(),
            "ok": self.ok,
            "rules": rationale,
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressions": [s.to_dict() for s in self.suppressions],
            "sanitizer": self.sanitizer,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Report":
        if data.get("tool") != "dgflint":
            raise AnalysisError(
                f"not a dgflint report (tool={data.get('tool')!r})")
        if data.get("schema_version") not in _READABLE_VERSIONS:
            raise AnalysisError(
                f"unsupported report schema_version "
                f"{data.get('schema_version')!r} (expected one of "
                f"{', '.join(str(v) for v in _READABLE_VERSIONS)})")
        return cls(
            findings=[Finding.from_dict(item)
                      for item in data.get("findings", [])],
            suppressions=[Suppression.from_dict(item)
                          for item in data.get("suppressions", [])],
            files_scanned=int(data.get("files_scanned", 0)),
            config_source=data.get("config_source"),
            sanitizer=data.get("sanitizer"),
        )

    def to_json(self, indent: int = 2) -> str:
        """Serialize :meth:`to_dict` as JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "Report":
        return cls.from_dict(json.loads(text))


def render_text(report: Report, verbose_suppressions: bool = False) -> str:
    """Human-readable rendering for terminals."""
    lines: List[str] = []
    for finding in report.findings:
        lines.append(f"{finding.path}:{finding.line}:{finding.col + 1}: "
                     f"{finding.code} {finding.message}")
    if verbose_suppressions:
        for item in report.suppressions:
            lines.append(f"{item.path}:{item.line}: {item.code} suppressed "
                         f"({item.reason})")
    if report.sanitizer is not None:
        lines.extend(_render_sanitizer(report.sanitizer))
    summary = ", ".join(f"{code}×{count}"
                        for code, count in report.counts().items())
    lines.append(
        f"{len(report.findings)} finding(s)"
        + (f" [{summary}]" if summary else "")
        + f", {len(report.suppressions)} reasoned suppression(s), "
        + f"{report.files_scanned} file(s) scanned")
    return "\n".join(lines)


def _render_sanitizer(payload: dict) -> List[str]:
    """Terminal rendering of a ``repro sanitize`` payload."""
    lines: List[str] = []
    for scenario in payload.get("scenarios", []):
        proof = scenario.get("proof", {})
        verdict = "order-independent" if proof.get("proved") else "REFUTED"
        lines.append(
            f"sanitize {scenario.get('kind')} seed={scenario.get('seed')}: "
            f"{verdict} ({proof.get('runs')} run(s), "
            f"{proof.get('choice_batches')} choice batch(es), "
            f"{proof.get('races_total')} race(s))")
        witness = proof.get("witness")
        if witness:
            lines.append(
                f"  witness: choice batch {witness['choice_batch']} at "
                f"t={witness['time']} — signature "
                f"{witness['baseline_signature']} -> "
                f"{witness['permuted_signature']}")
            lines.append("    baseline order: "
                         + " | ".join(witness["baseline_order"]))
            lines.append("    permuted order: "
                         + " | ".join(witness["permuted_order"]))
    verdict = ("proved" if payload.get("proved") else "refuted")
    lines.append(
        f"sanitizer: order-independence {verdict} over "
        f"{len(payload.get('scenarios', []))} scenario(s), "
        f"{payload.get('races_total', 0)} distinct race(s) observed")
    return lines

"""Machine-readable lint reports.

The JSON document is the CI artifact: stable keys, counts per rule, the
full finding list, and every suppression with its reason so "zero
unexplained suppressions" can be audited from the artifact alone
without re-reading the tree. :meth:`Report.from_dict` round-trips
:meth:`Report.to_dict` exactly; the schema version guards consumers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.core import Finding, Suppression
from repro.errors import AnalysisError

__all__ = ["Report", "render_text", "SCHEMA_VERSION"]

SCHEMA_VERSION = 1


@dataclass
class Report:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    suppressions: List[Suppression] = field(default_factory=list)
    files_scanned: int = 0
    config_source: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when no live (non-suppressed) finding remains."""
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def counts(self) -> Dict[str, int]:
        """Live finding counts per rule code (sorted by code)."""
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.code] = out.get(finding.code, 0) + 1
        return dict(sorted(out.items()))

    def to_dict(self) -> dict:
        """The JSON report document (stable schema, see module docs)."""
        from repro.analysis.rules import RULES
        rationale = {rule.code: {"name": rule.name,
                                 "rationale": rule.rationale}
                     for rule in RULES}
        return {
            "tool": "dgflint",
            "schema_version": SCHEMA_VERSION,
            "config_source": self.config_source,
            "files_scanned": self.files_scanned,
            "summary": self.counts(),
            "ok": self.ok,
            "rules": rationale,
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressions": [s.to_dict() for s in self.suppressions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Report":
        if data.get("tool") != "dgflint":
            raise AnalysisError(
                f"not a dgflint report (tool={data.get('tool')!r})")
        if data.get("schema_version") != SCHEMA_VERSION:
            raise AnalysisError(
                f"unsupported report schema_version "
                f"{data.get('schema_version')!r} (expected {SCHEMA_VERSION})")
        return cls(
            findings=[Finding.from_dict(item)
                      for item in data.get("findings", [])],
            suppressions=[Suppression.from_dict(item)
                          for item in data.get("suppressions", [])],
            files_scanned=int(data.get("files_scanned", 0)),
            config_source=data.get("config_source"),
        )

    def to_json(self, indent: int = 2) -> str:
        """Serialize :meth:`to_dict` as JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "Report":
        return cls.from_dict(json.loads(text))


def render_text(report: Report, verbose_suppressions: bool = False) -> str:
    """Human-readable rendering for terminals."""
    lines: List[str] = []
    for finding in report.findings:
        lines.append(f"{finding.path}:{finding.line}:{finding.col + 1}: "
                     f"{finding.code} {finding.message}")
    if verbose_suppressions:
        for item in report.suppressions:
            lines.append(f"{item.path}:{item.line}: {item.code} suppressed "
                         f"({item.reason})")
    summary = ", ".join(f"{code}×{count}"
                        for code, count in report.counts().items())
    lines.append(
        f"{len(report.findings)} finding(s)"
        + (f" [{summary}]" if summary else "")
        + f", {len(report.suppressions)} reasoned suppression(s), "
        + f"{report.files_scanned} file(s) scanned")
    return "\n".join(lines)

"""Linter core: findings, the rule protocol, and the AST driver.

One pass per file: the source is parsed once, a :class:`_Walker` visits
every node and fans each out to the rules that declared a matching
``visit_<NodeType>`` hook. Rules never re-walk the tree themselves; the
:class:`LintContext` gives them the shared cheap-to-derive facts
(import aliases, enclosing class/function, set-typed inference, name
tokens) so each rule stays a small, testable class.

Suppression is inline and *reasoned*::

    projected = when  # dgf: noqa[DGF004]: exact identity check, see docs

A ``dgf: noqa`` whose reason is missing (or whose bracket is empty) is
itself reported as **DGF090** — the contract is that every suppression
explains itself to the next reader, which is what the acceptance gate
"zero unexplained suppressions" means mechanically.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.config import LintConfig

__all__ = ["Finding", "Suppression", "Rule", "LintContext",
           "lint_source", "lint_paths", "SUPPRESSION_CODE",
           "SYNTAX_CODE", "split_tokens"]

#: Meta-code for suppression hygiene (reason-less / empty noqa).
SUPPRESSION_CODE = "DGF090"
#: Meta-code for files that do not parse.
SYNTAX_CODE = "DGF099"

_NOQA_RE = re.compile(
    r"#\s*dgf:\s*noqa\[(?P<codes>[^\]]*)\]\s*(?::\s*(?P<reason>\S.*))?")

_TOKEN_RE = re.compile(r"[A-Za-z][a-z0-9]*")


def split_tokens(name: str) -> frozenset:
    """Lower-cased word tokens of an identifier (snake or camel case).

    >>> sorted(split_tokens("projectedFinish_time"))
    ['finish', 'projected', 'time']
    """
    return frozenset(match.group(0).lower()
                     for match in _TOKEN_RE.finditer(name))


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> dict:
        """JSON-ready mapping; inverse of :meth:`from_dict`."""
        return {"code": self.code, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(code=data["code"], path=data["path"],
                   line=int(data["line"]), col=int(data["col"]),
                   message=data["message"])


@dataclass(frozen=True)
class Suppression:
    """One finding that an inline reasoned noqa absorbed."""

    code: str
    path: str
    line: int
    reason: str
    message: str

    def to_dict(self) -> dict:
        """JSON-ready mapping; inverse of :meth:`from_dict`."""
        return {"code": self.code, "path": self.path, "line": self.line,
                "reason": self.reason, "message": self.message}

    @classmethod
    def from_dict(cls, data: dict) -> "Suppression":
        return cls(code=data["code"], path=data["path"],
                   line=int(data["line"]), reason=data["reason"],
                   message=data["message"])


class Rule:
    """Base class for lint rules.

    A rule declares a ``code`` (``DGF0xx``), a short ``name`` (kebab
    case, used in reports), a ``rationale`` (why the contract exists —
    surfaced in ``docs/static-analysis.md`` and the JSON report), and
    any number of ``visit_<NodeType>(node, ctx)`` hooks. Hooks report
    violations through :meth:`LintContext.report`; they must not mutate
    the tree or assume any particular visit order beyond "parents
    before children".
    """

    code: str = ""
    name: str = ""
    rationale: str = ""

    def __init__(self, config: LintConfig) -> None:
        self.config = config

    def finalize(self) -> List[Finding]:
        """Program-scope findings, emitted after every file was visited.

        Most rules are per-file and keep the default (empty). A
        whole-program rule (the substream ledger) accumulates state in
        its ``visit_*`` hooks across the shared-rule file loop and
        resolves it here; each finding must carry the ``path`` of the
        site it anchors to, so per-file suppressions still apply.
        """
        return []


class LintContext:
    """Per-file facts shared by every rule, plus the finding sink."""

    def __init__(self, path: str, source: str, tree: ast.Module,
                 config: LintConfig) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.config = config
        self.findings: List[Finding] = []
        #: ``import x as y`` aliases: local name -> dotted module.
        self.module_aliases: Dict[str, str] = {}
        #: ``from m import a as b``: local name -> (module, attr).
        self.from_imports: Dict[str, Tuple[str, str]] = {}
        #: Enclosing ClassDef / FunctionDef stacks (innermost last),
        #: maintained by the walker.
        self.class_stack: List[ast.ClassDef] = []
        self.function_stack: List[ast.AST] = []
        self._set_attr_cache: Optional[frozenset] = None
        self._set_local_cache: Dict[int, frozenset] = {}
        self._collect_imports(tree)

    # -- reporting --------------------------------------------------------

    def report(self, rule: Rule, node: ast.AST, message: str) -> None:
        """Record one violation of ``rule`` at ``node``."""
        self.findings.append(Finding(
            code=rule.code, path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0), message=message))

    # -- imports ----------------------------------------------------------

    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or
                                        alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        node.module, alias.name)

    def resolve_call_target(self, func: ast.AST) -> Optional[Tuple[str, str]]:
        """Resolve a call's function to ``(dotted_module, attr)``.

        ``time.monotonic`` with ``import time`` -> ``("time",
        "monotonic")``; ``t()`` after ``from time import time as t`` ->
        ``("time", "time")``; ``np.random.random`` -> ``("numpy.random",
        "random")``. Returns ``None`` for anything not traceable to an
        import.
        """
        if isinstance(func, ast.Name):
            return self.from_imports.get(func.id)
        if isinstance(func, ast.Attribute):
            parts: List[str] = [func.attr]
            node = func.value
            while isinstance(node, ast.Attribute):
                parts.append(node.attr)
                node = node.value
            if not isinstance(node, ast.Name):
                return None
            root = node.id
            if root in self.module_aliases:
                module = self.module_aliases[root]
            elif root in self.from_imports:
                origin, attr = self.from_imports[root]
                module = f"{origin}.{attr}"
            else:
                return None
            parts.reverse()
            return (".".join([module, *parts[:-1]]), parts[-1])
        return None

    # -- set-typed inference (DGF003) -------------------------------------

    def is_unordered(self, node: ast.AST) -> bool:
        """Best-effort: does ``node`` evaluate to a set/frozenset?

        Covers literal sets and comprehensions, ``set()``/``frozenset()``
        calls, set-algebra ``BinOp``s whose operands are sets, names
        assigned a set in the enclosing function, and ``self.x``
        attributes that the enclosing (or any) class annotates or
        initialises as a set.
        """
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, (ast.DictComp, ast.GeneratorExp, ast.ListComp)):
            # A dict/list built by iterating a set inherits the set's
            # nondeterministic order.
            return (bool(node.generators)
                    and self.is_unordered(node.generators[0].iter))
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            # dict.fromkeys(s) / list(s) / tuple(s): order comes from s.
            if (isinstance(func, ast.Name) and func.id in ("list", "tuple")
                    and len(node.args) == 1
                    and self.is_unordered(node.args[0])):
                return True
            if (isinstance(func, ast.Attribute) and func.attr == "fromkeys"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "dict"
                    and node.args and self.is_unordered(node.args[0])):
                return True
            # x.union(y) / x.intersection(...) on a known set
            if (isinstance(func, ast.Attribute)
                    and func.attr in ("union", "intersection", "difference",
                                      "symmetric_difference", "copy")
                    and self.is_unordered(func.value)):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return self.is_unordered(node.left) or self.is_unordered(node.right)
        if isinstance(node, ast.Name):
            return node.id in self._set_locals()
        if isinstance(node, ast.Attribute):
            return (isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in self._set_attrs())
        return False

    @staticmethod
    def _is_set_annotation(annotation: ast.AST) -> bool:
        node = annotation
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute):  # typing.Set / t.FrozenSet
            node = ast.Name(id=node.attr)
        return (isinstance(node, ast.Name)
                and node.id in ("set", "frozenset", "Set", "FrozenSet",
                                "AbstractSet", "MutableSet"))

    def _set_attrs(self) -> frozenset:
        """``self.<attr>`` names any class in the file types as a set."""
        if self._set_attr_cache is None:
            # Guard against re-entry: building the cache consults
            # is_unordered, which may land back here for self-attribute
            # right-hand sides (self.x = self.y | ...).
            self._set_attr_cache = frozenset()
            attrs = set()
            for node in ast.walk(self.tree):
                target = None
                if isinstance(node, ast.AnnAssign):
                    if self._is_set_annotation(node.annotation):
                        target = node.target
                elif isinstance(node, ast.Assign) and self.is_unordered(
                        node.value):
                    target = node.targets[0] if len(node.targets) == 1 else None
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    attrs.add(target.attr)
            self._set_attr_cache = frozenset(attrs)
        return self._set_attr_cache

    def _set_locals(self) -> frozenset:
        """Names the innermost enclosing function assigns a set."""
        if not self.function_stack:
            return frozenset()
        function = self.function_stack[-1]
        cached = self._set_local_cache.get(id(function))
        if cached is not None:
            return cached
        # Guard against re-entry: classifying right-hand sides consults
        # is_unordered, which lands back here for name references
        # (x = y | z). The empty seed makes that inner lookup miss, which
        # only costs one level of transitive inference.
        self._set_local_cache[id(function)] = frozenset()
        names = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and self.is_unordered(
                        node.value):
                    names.add(target.id)
            elif (isinstance(node, ast.AnnAssign)
                  and isinstance(node.target, ast.Name)
                  and self._is_set_annotation(node.annotation)):
                names.add(node.target.id)
            elif isinstance(node, ast.arg) and node.annotation is not None:
                if self._is_set_annotation(node.annotation):
                    names.add(node.arg)
        result = frozenset(names)
        self._set_local_cache[id(function)] = result
        return result


class _Walker(ast.NodeVisitor):
    """Single-pass driver: dispatches each node to every interested rule."""

    def __init__(self, rules: Sequence[Rule], ctx: LintContext) -> None:
        self.ctx = ctx
        #: node-type name -> [bound hooks], built once per file.
        self.hooks: Dict[str, List] = {}
        for rule in rules:
            for attr in dir(rule):
                if attr.startswith("visit_"):
                    self.hooks.setdefault(attr[6:], []).append(
                        getattr(rule, attr))

    def visit(self, node: ast.AST) -> None:
        ctx = self.ctx
        is_class = isinstance(node, ast.ClassDef)
        is_function = isinstance(node, (ast.FunctionDef,
                                        ast.AsyncFunctionDef, ast.Lambda))
        if is_class:
            ctx.class_stack.append(node)
        if is_function:
            ctx.function_stack.append(node)
        try:
            for hook in self.hooks.get(type(node).__name__, ()):
                hook(node, ctx)
            self.generic_visit(node)
        finally:
            if is_class:
                ctx.class_stack.pop()
            if is_function:
                ctx.function_stack.pop()


def _parse_noqa(source: str, path: str) -> Tuple[Dict[int, frozenset],
                                                 Dict[int, str],
                                                 List[Finding]]:
    """Scan for ``dgf: noqa`` comments.

    A trailing comment waives findings on its own line. A *standalone*
    comment line (nothing but the comment) waives findings on the next
    code line instead, which keeps long statements lintable without
    overflowing the line length.

    Returns (line -> suppressed codes, line -> reason, hygiene findings).
    """
    lines = source.splitlines()

    def _anchor_line(lineno: int, col: int) -> int:
        """The line a noqa at (lineno, col) applies to."""
        if lines[lineno - 1][:col].strip():
            return lineno  # trailing comment: this line
        # Standalone comment: the next non-blank, non-comment line.
        for offset in range(lineno, len(lines)):
            text = lines[offset].strip()
            if text and not text.startswith("#"):
                return offset + 1
        return lineno

    suppressed: Dict[int, frozenset] = {}
    reasons: Dict[int, str] = {}
    hygiene: List[Finding] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenizeError, SyntaxError):
        return suppressed, reasons, hygiene
    # Only genuine comment tokens count: the suppression marker inside a
    # string literal or docstring is prose, not a waiver.
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        text = token.string
        lineno = token.start[0]
        col = token.start[1]
        match = _NOQA_RE.search(text)
        if match is None:
            if "dgf: noqa" in text or "dgf:noqa" in text:
                hygiene.append(Finding(
                    code=SUPPRESSION_CODE, path=path, line=lineno,
                    col=col,
                    message="malformed suppression: use "
                            "'# dgf: noqa[DGF0xx]: <reason>'"))
            continue
        codes = frozenset(code.strip() for code in
                          match.group("codes").split(",") if code.strip())
        reason = (match.group("reason") or "").strip()
        if not codes:
            hygiene.append(Finding(
                code=SUPPRESSION_CODE, path=path, line=lineno,
                col=col + match.start(),
                message="suppression lists no rule codes: name the "
                        "DGF0xx being waived"))
            continue
        if not reason:
            hygiene.append(Finding(
                code=SUPPRESSION_CODE, path=path, line=lineno,
                col=col + match.start(),
                message=f"suppression of {', '.join(sorted(codes))} has no "
                        "reason: every waiver must explain itself"))
            continue
        anchor = _anchor_line(lineno, col)
        suppressed[anchor] = suppressed.get(anchor, frozenset()) | codes
        reasons[anchor] = reason
    return suppressed, reasons, hygiene


def _apply_noqa(findings: Sequence[Finding], noqa: Dict[int, frozenset],
                reasons: Dict[int, str], path: str
                ) -> Tuple[List[Finding], List[Suppression]]:
    """Split findings into (kept, suppressed) under one file's noqa map."""
    kept: List[Finding] = []
    suppressions: List[Suppression] = []
    for finding in findings:
        codes = noqa.get(finding.line)
        if codes is not None and finding.code in codes:
            suppressions.append(Suppression(
                code=finding.code, path=path, line=finding.line,
                reason=reasons[finding.line], message=finding.message))
        else:
            kept.append(finding)
    return kept, suppressions


def lint_source(source: str, path: str, config: LintConfig,
                rules: Optional[Sequence[Rule]] = None
                ) -> Tuple[List[Finding], List[Suppression]]:
    """Lint one unit of source text; returns (findings, suppressions).

    With ``rules=None`` a fresh rule set is created *and finalized*, so
    program-scope rules see a one-file program — this is what lets a
    single fixture file exercise the substream ledger. Callers passing a
    shared ``rules`` sequence (the multi-file driver) own finalization.
    """
    from repro.analysis.rules import all_rules
    local_rules = rules is None
    if local_rules:
        rules = all_rules(config)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(code=SYNTAX_CODE, path=path,
                        line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                        message=f"file does not parse: {exc.msg}")], []
    ctx = LintContext(path, source, tree, config)
    _Walker(rules, ctx).visit(tree)
    findings = list(ctx.findings)
    if local_rules:
        for rule in rules:
            findings.extend(rule.finalize())
    noqa, reasons, hygiene = _parse_noqa(source, path)
    kept, suppressions = _apply_noqa(findings, noqa, reasons, path)
    kept.extend(hygiene)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return kept, suppressions


def iter_python_files(paths: Sequence[str],
                      exclude: Sequence[str] = ()) -> Iterable[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(path.rglob("*.py"))
        else:
            out.append(path)
    seen = set()
    for path in sorted(out):
        posix = path.as_posix()
        if posix in seen:
            continue
        seen.add(posix)
        if any(fnmatch(posix, pattern) for pattern in exclude):
            continue
        yield path


def lint_paths(paths: Sequence[str], config: Optional[LintConfig] = None):
    """Lint files and/or directory trees; returns a :class:`Report`.

    One shared rule set visits every file (program-scope rules
    accumulate their cross-file ledgers that way), then each rule's
    :meth:`Rule.finalize` runs once and its findings pass through the
    suppression map of whichever file they anchor to — a reasoned noqa
    on the flagged line waives a program finding exactly like a
    per-file one.
    """
    from repro.analysis.config import load_config
    from repro.analysis.report import Report
    if config is None:
        config = load_config(paths)
    from repro.analysis.rules import all_rules
    rules = all_rules(config)
    findings: List[Finding] = []
    suppressions: List[Suppression] = []
    noqa_maps: Dict[str, Tuple[Dict[int, frozenset], Dict[int, str]]] = {}
    scanned = 0
    for path in iter_python_files(paths, config.exclude):
        scanned += 1
        source = path.read_text(encoding="utf-8")
        posix = path.as_posix()
        try:
            tree = ast.parse(source, filename=posix)
        except SyntaxError as exc:
            findings.append(Finding(
                code=SYNTAX_CODE, path=posix, line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}"))
            continue
        ctx = LintContext(posix, source, tree, config)
        _Walker(rules, ctx).visit(tree)
        noqa, reasons, hygiene = _parse_noqa(source, posix)
        noqa_maps[posix] = (noqa, reasons)
        kept, waived = _apply_noqa(ctx.findings, noqa, reasons, posix)
        kept.extend(hygiene)
        findings.extend(kept)
        suppressions.extend(waived)
    for rule in rules:
        for finding in rule.finalize():
            noqa, reasons = noqa_maps.get(finding.path, ({}, {}))
            kept, waived = _apply_noqa([finding], noqa, reasons,
                                       finding.path)
            findings.extend(kept)
            suppressions.extend(waived)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return Report(findings=findings, suppressions=suppressions,
                  files_scanned=scanned, config_source=config.source)

"""``[tool.dgflint]`` configuration.

Configuration lives in ``pyproject.toml`` next to the code it governs so
the contract travels with the tree (CI and a laptop lint the same way).
Every knob has a default that matches this repository's conventions;
an empty or missing table means "lint with the shipped contract".

Recognized keys (all optional)::

    [tool.dgflint]
    select = ["DGF001", ...]          # rule codes to run (default: all)
    exclude = ["*/generated/*"]       # fnmatch patterns of paths to skip
    dispatch-paths = ["*/faults/*"]   # DGF005: recovery-dispatch modules
    retryable = ["Retryable", ...]    # DGF005: the Retryable hierarchy
    allowed-labels = ["access_path"]  # DGF006: bounded-by-construction
    time-tokens = ["eta"]             # DGF004: extra time/rate name tokens
    effect-methods = ["publish"]      # DGF003: extra effectful method names
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from repro.errors import AnalysisError

__all__ = ["LintConfig", "load_config", "DEFAULT_RETRYABLE"]

#: The transitive :class:`~repro.errors.Retryable` hierarchy as the rule
#: pack knows it. ``tests/test_retryable_audit.py`` walks the real class
#: hierarchy in :mod:`repro.errors` and fails when this list drifts, so
#: a new error type cannot silently fall out of recovery's dispatch.
DEFAULT_RETRYABLE = (
    "Retryable",
    "StorageFailure",
    "ResourceOffline",
    "NetworkError",
    "NoRouteError",
    "TransferInterrupted",
)

#: Modules whose ``except`` clauses are recovery dispatch (DGF005b):
#: catching bare ``Exception`` there swallows non-retryable failures
#: into the retry loop.
DEFAULT_DISPATCH_PATHS = (
    "*/faults/recovery.py",
    "*/faults/model.py",
)

#: Metric label keys that *look* unbounded to DGF006's token heuristic
#: but are bounded by construction in this repo. ``access_path`` is the
#: catalog planner's access-path enum (scan / guid / metadata / size),
#: not a namespace path.
DEFAULT_ALLOWED_LABELS = ("access_path",)


@dataclass(frozen=True)
class LintConfig:
    """Resolved configuration for one lint run."""

    select: Optional[frozenset] = None
    exclude: tuple = ()
    dispatch_paths: tuple = DEFAULT_DISPATCH_PATHS
    retryable: tuple = DEFAULT_RETRYABLE
    allowed_labels: tuple = DEFAULT_ALLOWED_LABELS
    time_tokens: tuple = ()
    effect_methods: tuple = ()
    #: Where the config came from (for the report); None = defaults.
    source: Optional[str] = None

    def selects(self, code: str) -> bool:
        """Is the rule with ``code`` enabled under this config?"""
        return self.select is None or code in self.select


def _string_list(table: dict, key: str, where: str) -> Optional[List[str]]:
    value = table.get(key)
    if value is None:
        return None
    if (not isinstance(value, list)
            or any(not isinstance(item, str) for item in value)):
        raise AnalysisError(
            f"{where}: [tool.dgflint] {key} must be a list of strings")
    return value


def config_from_table(table: dict, source: Optional[str] = None) -> LintConfig:
    """Build a :class:`LintConfig` from a parsed ``[tool.dgflint]`` table."""
    where = source if source is not None else "<defaults>"
    unknown = set(table) - {"select", "exclude", "dispatch-paths",
                            "retryable", "allowed-labels", "time-tokens",
                            "effect-methods"}
    if unknown:
        raise AnalysisError(
            f"{where}: unknown [tool.dgflint] keys: {', '.join(sorted(unknown))}")
    select = _string_list(table, "select", where)
    retryable = _string_list(table, "retryable", where)
    dispatch = _string_list(table, "dispatch-paths", where)
    labels = _string_list(table, "allowed-labels", where)
    return LintConfig(
        select=None if select is None else frozenset(select),
        exclude=tuple(_string_list(table, "exclude", where) or ()),
        dispatch_paths=(DEFAULT_DISPATCH_PATHS if dispatch is None
                        else tuple(dispatch)),
        retryable=(DEFAULT_RETRYABLE if retryable is None
                   else tuple(retryable)),
        allowed_labels=(DEFAULT_ALLOWED_LABELS if labels is None
                        else tuple(labels)),
        time_tokens=tuple(_string_list(table, "time-tokens", where) or ()),
        effect_methods=tuple(
            _string_list(table, "effect-methods", where) or ()),
        source=source,
    )


def find_pyproject(start: Path) -> Optional[Path]:
    """Walk up from ``start`` to the nearest ``pyproject.toml``."""
    node = start.resolve()
    if node.is_file():
        node = node.parent
    for candidate in (node, *node.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(paths: Sequence[str] = (),
                explicit: Optional[str] = None) -> LintConfig:
    """Load the config governing ``paths`` (or the given file).

    With ``explicit`` the file must exist and parse; otherwise the
    nearest ``pyproject.toml`` above the first path (or the working
    directory) is used, and a missing file or missing table falls back
    to the shipped defaults.
    """
    if explicit is not None:
        pyproject = Path(explicit)
        if not pyproject.is_file():
            raise AnalysisError(f"config file not found: {explicit}")
    else:
        anchor = Path(paths[0]) if paths else Path.cwd()
        pyproject = find_pyproject(anchor)
        if pyproject is None:
            return LintConfig()
    try:
        with open(pyproject, "rb") as handle:
            data = tomllib.load(handle)
    except tomllib.TOMLDecodeError as exc:
        raise AnalysisError(f"{pyproject}: not valid TOML: {exc}") from exc
    table = data.get("tool", {}).get("dgflint", {})
    if not isinstance(table, dict):
        raise AnalysisError(f"{pyproject}: [tool.dgflint] must be a table")
    return config_from_table(table, source=str(pyproject))

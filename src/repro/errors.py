"""Exception hierarchy for the datagridflows reproduction.

All library errors derive from :class:`ReproError` so callers can catch one
base class. Each subsystem owns a narrow branch of the hierarchy; modules
raise the most specific class that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# --------------------------------------------------------------------------
# Simulation kernel
# --------------------------------------------------------------------------


class SimError(ReproError):
    """Error inside the discrete-event simulation kernel."""


class SimStopped(SimError):
    """The simulation ran out of events (or was stopped) before a target time."""


class Interrupt(SimError):
    """Raised inside a process that another process interrupted.

    The interrupting party supplies ``cause``, available as ``exc.cause``.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


# --------------------------------------------------------------------------
# Storage / network substrates
# --------------------------------------------------------------------------


class StorageError(ReproError):
    """Error raised by a simulated physical storage resource."""


class CapacityExceeded(StorageError):
    """An allocation would exceed the storage resource's capacity."""


class StorageFailure(StorageError):
    """An injected (simulated) storage fault hit this operation."""


class NetworkError(ReproError):
    """Error raised by the simulated inter-domain network."""


class NoRouteError(NetworkError):
    """No path exists between the requested domains."""


# --------------------------------------------------------------------------
# Datagrid (DGMS)
# --------------------------------------------------------------------------


class GridError(ReproError):
    """Error raised by the datagrid management system."""


class NamespaceError(GridError):
    """Invalid logical path, missing object, or name collision."""


class PermissionDenied(GridError):
    """The acting user lacks the required permission."""


class ReplicaError(GridError):
    """Replica bookkeeping error (e.g. removing the last replica)."""


class LogicalResourceError(GridError):
    """Unknown or misconfigured logical storage resource."""


class MetadataError(GridError):
    """Invalid user-defined metadata operation or query."""


class FederationError(GridError):
    """Error in cross-domain (federated) datagrid operations."""


# --------------------------------------------------------------------------
# DGL
# --------------------------------------------------------------------------


class DGLError(ReproError):
    """Error in the Data Grid Language layer."""


class DGLParseError(DGLError):
    """A DGL XML document could not be parsed into the object model."""


class DGLValidationError(DGLError):
    """A DGL document violates the schema (structure or typing rules)."""


class ExpressionError(DGLError):
    """A DGL expression (tcondition / variable reference) failed to evaluate."""


class UnknownOperationError(DGLError):
    """A Step names an operation that is not in the operation registry."""


# --------------------------------------------------------------------------
# DfMS
# --------------------------------------------------------------------------


class DfMSError(ReproError):
    """Error raised by the Datagridflow Management System."""


class ExecutionError(DfMSError):
    """A flow or step failed during execution."""


class InvalidTransition(DfMSError):
    """An execution-control request (pause/resume/...) is not legal now."""


class UnknownRequestError(DfMSError):
    """A status query referenced an identifier the server does not know."""


class SchedulingError(DfMSError):
    """The scheduler could not produce a feasible placement."""


class MatchmakingError(SchedulingError):
    """No resource satisfies a step's requirements / SLA."""


class CheckpointError(DfMSError):
    """Checkpoint serialization or recovery failed."""


class P2PError(DfMSError):
    """Peer-to-peer DfMS network error (lookup / forwarding)."""


# --------------------------------------------------------------------------
# ILM / triggers / provenance
# --------------------------------------------------------------------------


class ILMError(ReproError):
    """Error in the information-lifecycle-management layer."""


class PolicyError(ILMError):
    """An ILM policy is malformed or cannot be applied."""


class TriggerError(ReproError):
    """Error registering or firing a datagrid trigger."""


class ProvenanceError(ReproError):
    """Error writing to or querying the provenance store."""

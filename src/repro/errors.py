"""Exception hierarchy for the datagridflows reproduction.

All library errors derive from :class:`ReproError` so callers can catch one
base class. Each subsystem owns a narrow branch of the hierarchy; modules
raise the most specific class that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class Retryable:
    """Marker mixin: the failure is transient and retrying may succeed.

    Recovery policies (:mod:`repro.faults.recovery`) dispatch on this type
    — never on message strings — to decide whether an operation is worth
    retrying, failing over, or restarting from a checkpoint. Classify an
    error as retryable only when the underlying condition can clear on its
    own (an outage ends, a flaky window passes, a link comes back); logic
    errors, validation errors, and permission errors must not carry it.
    """


# --------------------------------------------------------------------------
# Simulation kernel
# --------------------------------------------------------------------------


class SimError(ReproError):
    """Error inside the discrete-event simulation kernel."""


class SimStopped(SimError):
    """The simulation ran out of events (or was stopped) before a target time."""


class Interrupt(SimError):
    """Raised inside a process that another process interrupted.

    The interrupting party supplies ``cause``, available as ``exc.cause``.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


# --------------------------------------------------------------------------
# Storage / network substrates
# --------------------------------------------------------------------------


class StorageError(ReproError):
    """Error raised by a simulated physical storage resource."""


class CapacityExceeded(StorageError):
    """An allocation would exceed the storage resource's capacity."""


class StorageFailure(StorageError, Retryable):
    """An injected (simulated) storage fault hit this operation."""


class ResourceOffline(StorageError, Retryable):
    """The storage resource is down (an outage window is open)."""


class NetworkError(ReproError, Retryable):
    """Error raised by the simulated inter-domain network.

    Network conditions in a datagrid are churn by definition — links drop
    and come back, routes reappear — so the whole branch is
    :class:`Retryable`.
    """


class NoRouteError(NetworkError):
    """No path exists between the requested domains."""


class TransferInterrupted(NetworkError):
    """A link carrying this transfer dropped mid-flight.

    Carries the progress made before the drop so recovery can resume from
    the byte offset instead of re-sending the whole object.
    """

    def __init__(self, message: str, src: str = "", dst: str = "",
                 nbytes: float = 0.0, transferred: float = 0.0) -> None:
        super().__init__(message)
        self.src = src
        self.dst = dst
        self.nbytes = nbytes
        #: Bytes that arrived before the interruption (the resume offset).
        self.transferred = transferred


# --------------------------------------------------------------------------
# Datagrid (DGMS)
# --------------------------------------------------------------------------


class GridError(ReproError):
    """Error raised by the datagrid management system."""


class NamespaceError(GridError):
    """Invalid logical path, missing object, or name collision."""


class PermissionDenied(GridError):
    """The acting user lacks the required permission."""


class ReplicaError(GridError):
    """Replica bookkeeping error (e.g. removing the last replica)."""


class LogicalResourceError(GridError):
    """Unknown or misconfigured logical storage resource."""


class MetadataError(GridError):
    """Invalid user-defined metadata operation or query."""


class FederationError(GridError):
    """Error in cross-domain (federated) datagrid operations."""


# --------------------------------------------------------------------------
# DGL
# --------------------------------------------------------------------------


class DGLError(ReproError):
    """Error in the Data Grid Language layer."""


class DGLParseError(DGLError):
    """A DGL XML document could not be parsed into the object model."""


class DGLValidationError(DGLError):
    """A DGL document violates the schema (structure or typing rules)."""


class ExpressionError(DGLError):
    """A DGL expression (tcondition / variable reference) failed to evaluate."""


class UnknownOperationError(DGLError):
    """A Step names an operation that is not in the operation registry."""


# --------------------------------------------------------------------------
# DfMS
# --------------------------------------------------------------------------


class DfMSError(ReproError):
    """Error raised by the Datagridflow Management System."""


class ExecutionError(DfMSError):
    """A flow or step failed during execution."""


class InvalidTransition(DfMSError):
    """An execution-control request (pause/resume/...) is not legal now."""


class UnknownRequestError(DfMSError):
    """A status query referenced an identifier the server does not know."""


class SchedulingError(DfMSError):
    """The scheduler could not produce a feasible placement."""


class MatchmakingError(SchedulingError):
    """No resource satisfies a step's requirements / SLA."""


class CheckpointError(DfMSError):
    """Checkpoint serialization or recovery failed."""


class P2PError(DfMSError):
    """Peer-to-peer DfMS network error (lookup / forwarding)."""


# --------------------------------------------------------------------------
# ILM / triggers / provenance
# --------------------------------------------------------------------------


class ILMError(ReproError):
    """Error in the information-lifecycle-management layer."""


class PolicyError(ILMError):
    """An ILM policy is malformed or cannot be applied."""


class TriggerError(ReproError):
    """Error registering or firing a datagrid trigger."""


class ProvenanceError(ReproError):
    """Error writing to or querying the provenance store."""


# --------------------------------------------------------------------------
# Faults & recovery
# --------------------------------------------------------------------------


class FaultError(ReproError):
    """A fault schedule or recovery policy is malformed or misapplied."""


# --------------------------------------------------------------------------
# Static analysis (dgflint)
# --------------------------------------------------------------------------


class AnalysisError(ReproError):
    """The linter's configuration or a report document is malformed."""

"""Telemetry exporters: Prometheus text format and JSONL.

Two renderings of one :class:`~repro.telemetry.core.Telemetry` session:

* :func:`prometheus_text` — the Prometheus exposition format (text
  version 0.0.4): ``# HELP`` / ``# TYPE`` headers, one line per series,
  histograms as cumulative ``_bucket`` / ``_sum`` / ``_count`` series.
  Scrape-ready if a run is served over HTTP, diff-able on disk.
* :func:`jsonl_lines` — one JSON object per line covering all three
  surfaces: every event-log record, every finished span (``span_id`` /
  ``parent_id`` allow full tree reconstruction), every histogram sample,
  and the final value of every series. Sorted by sim timestamp so the
  file reads as the run's narrative.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Optional, Tuple

from repro.telemetry.core import Telemetry
from repro.telemetry.metrics import Histogram, MetricsRegistry
from repro.telemetry.slo import quantile

__all__ = ["prometheus_text", "jsonl_lines", "write_prometheus",
           "write_jsonl", "histogram_summaries", "merge_jsonl"]


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace(
        "\n", r"\n")


def _labels_text(names, values) -> str:
    if not names:
        return ""
    inner = ",".join(f'{name}="{_escape_label(str(value))}"'
                     for name, value in zip(names, values))
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == int(value):
        return str(int(value))
    return repr(value)


def prometheus_text(telemetry: Telemetry) -> str:
    """Render the session's metrics in Prometheus exposition format."""
    registry: MetricsRegistry = telemetry.collect()
    lines: List[str] = []
    for metric in registry.metrics():
        lines.append(f"# HELP {metric.name} {metric.help_text}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for label_values, series in metric.series():
            labels = _labels_text(metric.labelnames, label_values)
            if isinstance(series, Histogram):
                cumulative = 0
                for bound, count in zip(series.buckets,
                                        series.bucket_counts):
                    cumulative += count
                    bucket_labels = _labels_text(
                        metric.labelnames + ("le",),
                        label_values + (_format_value(bound),))
                    lines.append(f"{metric.name}_bucket{bucket_labels} "
                                 f"{cumulative}")
                total = cumulative + series.bucket_counts[-1]
                inf_labels = _labels_text(metric.labelnames + ("le",),
                                          label_values + ("+Inf",))
                lines.append(f"{metric.name}_bucket{inf_labels} {total}")
                lines.append(f"{metric.name}_sum{labels} "
                             f"{_format_value(series.sum)}")
                lines.append(f"{metric.name}_count{labels} {series.count}")
            else:
                lines.append(f"{metric.name}{labels} "
                             f"{_format_value(series.value)}")
    return "\n".join(lines) + "\n"


def jsonl_lines(telemetry: Telemetry,
                window: Optional[Tuple[float, float]] = None) -> List[str]:
    """The session as JSONL: events, spans, samples, final metric values.

    ``window=(start, end)`` keeps only timed entries whose sim timestamp
    (a span's *end*) lies in the closed interval — the CLI's
    ``--window`` filter. Final metric values are cumulative over the
    whole run, so a windowed export omits them rather than mislabel
    run-total numbers as window-local ones.
    """
    registry = telemetry.collect()
    entries: List[tuple] = []
    for record in telemetry.log.records:
        entries.append((record.time, 0, {
            "type": "event", "time": record.time, "kind": record.kind,
            **record.fields}))
    for span in telemetry.tracer.finished:
        # Ids are minted as ints on the hot path; format them here.
        parent = span.parent_id
        entries.append((span.end, 1, {
            "type": "span", "span_id": f"s{span.span_id:06d}",
            "parent_id": None if parent is None else f"s{parent:06d}",
            "name": span.name,
            "start": span.start, "end": span.end, "status": span.status,
            "attrs": span.attrs}))
    for metric in registry.metrics():
        for label_values, series in metric.series():
            labels = dict(zip(metric.labelnames,
                              label_values)) if metric.labelnames else {}
            if isinstance(series, Histogram):
                for when, value in series.samples:
                    entries.append((when, 2, {
                        "type": "sample", "metric": metric.name,
                        "time": when, "value": value, "labels": labels}))
                final = {"sum": series.sum, "count": series.count}
            else:
                final = {"value": series.value}
            if window is None:
                entries.append((float("inf"), 3, {
                    "type": "metric", "metric": metric.name,
                    "metric_kind": metric.kind, "labels": labels, **final}))
    if window is not None:
        start, end = window
        entries = [entry for entry in entries if start <= entry[0] <= end]
    entries.sort(key=lambda entry: (entry[0], entry[1]))
    return [json.dumps(entry[2], sort_keys=True, default=str)
            for entry in entries]


def histogram_summaries(telemetry: Telemetry,
                        window: Optional[Tuple[float, float]] = None
                        ) -> List[dict]:
    """p50/p95/p99 summaries of every histogram series, from raw samples.

    Quantiles are nearest-rank over the exact sample list (optionally
    restricted to a sim-time ``window``) — real observed values, not
    bucket-boundary interpolations. Series with no samples in range are
    omitted.
    """
    telemetry.collect()
    summaries: List[dict] = []
    for metric in telemetry.metrics.metrics():
        if metric.kind != "histogram":
            continue
        for label_values, series in metric.series():
            values = [value for when, value in series.samples
                      if window is None or window[0] <= when <= window[1]]
            if not values:
                continue
            summaries.append({
                "metric": metric.name,
                "labels": dict(zip(metric.labelnames, label_values)),
                "count": len(values),
                "p50": quantile(values, 0.50),
                "p95": quantile(values, 0.95),
                "p99": quantile(values, 0.99),
                "max": max(values),
            })
    return summaries


def merge_jsonl(parts: Iterable[Tuple[str, Iterable[str]]]) -> List[str]:
    """Deterministically merge per-worker JSONL exports into one stream.

    ``parts`` is an ordered iterable of ``(run_tag, lines)`` — e.g. one
    entry per seed of a :func:`repro.farm.run_farm` sweep. Each line
    gains a ``"run"`` field naming its origin; part order and line order
    are preserved, and re-dumping with sorted keys makes the output a
    pure function of the inputs — merging the same parts in the same
    order is byte-identical wherever it runs, so a farmed sweep's merged
    telemetry equals the serial run's.
    """
    merged: List[str] = []
    for tag, lines in parts:
        for line in lines:
            entry = json.loads(line)
            entry["run"] = tag
            merged.append(json.dumps(entry, sort_keys=True, default=str))
    return merged


def write_prometheus(telemetry: Telemetry, path: str) -> None:
    """Write :func:`prometheus_text` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(telemetry))


def write_jsonl(telemetry: Telemetry, path: str,
                window: Optional[Tuple[float, float]] = None) -> None:
    """Write :func:`jsonl_lines` to ``path``, one object per line."""
    with open(path, "w", encoding="utf-8") as handle:
        for line in jsonl_lines(telemetry, window=window):
            handle.write(line + "\n")

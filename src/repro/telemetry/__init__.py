"""Unified telemetry: sim-time metrics, tracing spans, structured events.

§2.1 requires a "programmatic API to query and monitor any step in the
datagrid ILM process". This package is that axis for the whole
reproduction: a label-aware metrics registry, hierarchical tracing spans
that nest across simulation processes (flow → step → transfer), and a
structured event log — all clocked on the simulation's virtual time so
telemetry is exactly as deterministic as the run it observes — plus
Prometheus-text and JSONL exporters.

Telemetry is opt-in: nothing is recorded until
:func:`attach_telemetry` (or :func:`instrument_scenario`) hangs a
:class:`Telemetry` session off the environment. Instrumented subsystems —
the sim kernel, DfMS engine, ILM manager, trigger manager, network
transfer service, and catalog query planner — each guard on the session's
absence, so the disabled mode costs one branch per instrumentation point.
"""

from repro.telemetry.core import Telemetry
from repro.telemetry.events import EventLog, TelemetryRecord
from repro.telemetry.exporters import (
    jsonl_lines,
    prometheus_text,
    write_jsonl,
    write_prometheus,
)
from repro.telemetry.instrument import attach_telemetry, instrument_scenario
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.tracing import Span, Tracer

__all__ = [
    "Telemetry",
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "Tracer", "Span",
    "EventLog", "TelemetryRecord",
    "prometheus_text", "jsonl_lines", "write_prometheus", "write_jsonl",
    "attach_telemetry", "instrument_scenario",
]

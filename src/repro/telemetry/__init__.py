"""Unified telemetry: sim-time metrics, tracing spans, structured events.

§2.1 requires a "programmatic API to query and monitor any step in the
datagrid ILM process". This package is that axis for the whole
reproduction: a label-aware metrics registry, hierarchical tracing spans
that nest across simulation processes (flow → step → transfer), and a
structured event log — all clocked on the simulation's virtual time so
telemetry is exactly as deterministic as the run it observes — plus
Prometheus-text and JSONL exporters.

Telemetry is opt-in: nothing is recorded until
:func:`attach_telemetry` (or :func:`instrument_scenario`) hangs a
:class:`Telemetry` session off the environment. Instrumented subsystems —
the sim kernel, DfMS engine, ILM manager, trigger manager, network
transfer service, and catalog query planner — each guard on the session's
absence, so the disabled mode costs one branch per instrumentation point.

On top of the session, :func:`attach_observability` adds the operator
layer (``docs/observability.md``): a :class:`FlightRecorder` — a bounded
ring of causally-annotated recent records that auto-dumps deterministic
JSONL on kernel deadlock, chaos invariant violation, or demand — and an
:class:`SLOEngine` evaluating declarative probes (fault windows,
windowed p99 transfer latency, recovery pressure, queue depth,
execution stalls) on sim-time windows. Both are strictly read-only:
``benchmarks/test_e23_observability.py`` holds the 20-seed chaos sweep
bit-identical with the stack attached. :mod:`repro.telemetry.trace` is
the read side — parse any export or dump and reconstruct one
execution's causal story (``repro trace``).
"""

from repro.telemetry.core import Telemetry
from repro.telemetry.events import EventLog, TelemetryRecord
from repro.telemetry.exporters import (
    histogram_summaries,
    jsonl_lines,
    merge_jsonl,
    prometheus_text,
    write_jsonl,
    write_prometheus,
)
from repro.telemetry.instrument import (
    Observability,
    attach_observability,
    attach_telemetry,
    instrument_scenario,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.recorder import FlightRecord, FlightRecorder
from repro.telemetry.slo import (
    Alert,
    SLOEngine,
    default_probes,
    fault_coverage,
)
from repro.telemetry.tracing import Span, Tracer

__all__ = [
    "Telemetry",
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "Tracer", "Span",
    "EventLog", "TelemetryRecord",
    "FlightRecorder", "FlightRecord",
    "SLOEngine", "Alert", "default_probes", "fault_coverage",
    "prometheus_text", "jsonl_lines", "write_prometheus", "write_jsonl",
    "histogram_summaries", "merge_jsonl",
    "attach_telemetry", "instrument_scenario",
    "attach_observability", "Observability",
]

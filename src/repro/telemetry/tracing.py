"""Hierarchical tracing spans over simulation processes.

A span is one timed piece of work — a flow, a step, a transfer — with a
parent, so a whole execution reconstructs as a tree: the *flow → step →
transfer* chain §2.1's monitoring requirement implies. Start/end stamps
are **simulation time**, and span ids are minted from a deterministic
counter, so traces are reproducible run to run.

The subtlety is context: the sim kernel interleaves many generator-based
processes, so a single global "current span" stack would attribute a
transfer started by process B to whatever span process A happened to have
open. Two propagation schemes coexist:

* **Explicit parents** (:meth:`Tracer.begin` / :meth:`Tracer.finish`) —
  the caller passes the parent span as an argument and the tracer does
  no context bookkeeping at all. The engine threads its span down the
  ``_run_*`` call chain this way, and pins it on each
  :class:`~repro.sim.kernel.Process` it spawns (``Process._tspan``) so
  cross-process work — a transfer inside an operation handler — finds
  its parent on the *active process*. This is the hot path.
* **Context stacks** (:meth:`Tracer.start_span` / :meth:`end_span`) —
  spans nest implicitly per active process, crossing boundaries via
  :meth:`current_span` / :meth:`activate` or :meth:`wrap_process`.
  Convenient for ad-hoc instrumentation and tests.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Generator, List, Optional

__all__ = ["Span", "Tracer"]


class Span:
    """One timed, attributed piece of work in the span tree.

    A hand-written ``__slots__`` class, not a dataclass: one is created
    per flow, step, and transfer, so construction cost and per-instance
    footprint both matter. Ids are small ints minted from a deterministic
    counter; exporters format them for display.
    """

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "status",
                 "attrs", "context_key")

    def __init__(self, span_id: int, parent_id: Optional[int], name: str,
                 start: float, attrs: Dict[str, object],
                 context_key: int) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.status = "ok"
        self.attrs = attrs
        #: Context key (active process identity) the span was opened under.
        self.context_key = context_key

    def __repr__(self) -> str:
        return (f"Span(id={self.span_id}, parent={self.parent_id}, "
                f"name={self.name!r}, status={self.status!r})")

    @property
    def duration(self) -> float:
        """Span length in virtual seconds (0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start


class Tracer:
    """Creates, nests, and collects spans for one telemetry session."""

    def __init__(self, clock: Callable[[], float], env=None) -> None:
        self._clock = clock
        self._env = env
        self._next_id = 1
        #: context key -> stack of open spans (innermost last).
        self._stacks: Dict[int, List[Span]] = {}
        #: Every ended span, in end order (the export surface).
        self.finished: List[Span] = []

    # -- context -----------------------------------------------------------

    def _context_key(self) -> int:
        # Hot path: callers inline this logic; kept as a method for tests.
        env = self._env
        if env is not None:
            active = env.active_process
            if active is not None:
                return id(active)
        return 0

    def current_span(self) -> Optional[Span]:
        """The innermost open span of the calling process context."""
        env = self._env
        # _active_process, not the property: this path runs per span.
        active = None if env is None else env._active_process
        stack = self._stacks.get(0 if active is None else id(active))
        return stack[-1] if stack else None

    def activate(self, span: Span) -> int:
        """Make ``span`` the current span of *this* process context.

        Used to propagate a parent captured in one simulation process into
        another (the engine does this for operation handlers and parallel
        branches). Returns the context key to pass to :meth:`deactivate`.
        """
        env = self._env
        active = None if env is None else env._active_process
        key = 0 if active is None else id(active)
        self._stacks.setdefault(key, []).append(span)
        return key

    def deactivate(self, span: Span, key: int) -> None:
        """Undo :meth:`activate` for ``span`` in context ``key``."""
        stack = self._stacks.get(key)
        if stack is None:
            return
        try:
            stack.remove(span)
        except ValueError:
            pass
        if not stack:
            del self._stacks[key]

    # -- spans, explicit-parent fast path ------------------------------------

    def begin(self, name: str, parent: Optional[Span],
              attrs: Dict[str, object]) -> Span:
        """Open a span under an explicit ``parent`` (may be None).

        The no-bookkeeping path: nothing is pushed on any context stack,
        so close with :meth:`finish`, not :meth:`end_span`. Callers that
        hold their parent span in hand (the engine's ``_run_*`` chain,
        the transfer service reading ``Process._tspan``) use this; the
        positional-dict signature keeps call overhead minimal.
        """
        span_id = self._next_id
        self._next_id = span_id + 1
        return Span(span_id, None if parent is None else parent.span_id,
                    name, self._clock(), attrs, 0)

    def finish(self, span: Span, status: str = "ok") -> None:
        """Close a :meth:`begin` span and collect it. Twice is a no-op."""
        if span.end is None:
            span.end = self._clock()
            span.status = status
            self.finished.append(span)

    # -- spans, context-stack path -------------------------------------------

    def start_span(self, name: str, parent: Optional[Span] = None,
                   **attrs: object) -> Span:
        """Open a span; the parent defaults to the context's current span."""
        env = self._env
        active = None if env is None else env._active_process
        key = 0 if active is None else id(active)
        stack = self._stacks.get(key)
        if parent is None and stack:
            parent = stack[-1]
        span_id = self._next_id
        self._next_id = span_id + 1
        span = Span(span_id,
                    None if parent is None else parent.span_id,
                    name, self._clock(), attrs, key)
        if stack is None:
            self._stacks[key] = [span]
        else:
            stack.append(span)
        return span

    def end_span(self, span: Span, status: str = "ok") -> Span:
        """Close ``span`` at the current sim time and collect it.

        The span is removed from whatever context stack it was opened
        under (ending from a different process — a transfer finishing in
        the service's wake process — is fine). Ending twice is a no-op.
        """
        if span.end is not None:
            return span
        span.end = self._clock()
        span.status = status
        stack = self._stacks.get(span.context_key)
        if stack:
            if stack[-1] is span:
                stack.pop()
            else:
                try:
                    stack.remove(span)
                except ValueError:
                    pass
            if not stack:
                del self._stacks[span.context_key]
        self.finished.append(span)
        return span

    @contextmanager
    def span(self, name: str, parent: Optional[Span] = None,
             **attrs: object):
        """Context manager: open a span, close it on exit (error-aware)."""
        opened = self.start_span(name, parent=parent, **attrs)
        try:
            yield opened
        except BaseException:
            self.end_span(opened, status="error")
            raise
        self.end_span(opened)

    # -- cross-process propagation ------------------------------------------

    def wrap_process(self, generator: Generator) -> Generator:
        """Carry the caller's current span into a new sim process.

        Captures the current span *now* (in the caller's context) and
        returns a generator that activates it inside the process the
        kernel later runs, so spans opened there nest under the caller's.
        For stack-based spans only; explicit-parent (:meth:`begin`)
        callers pin the span on ``Process._tspan`` instead.
        """
        parent = self.current_span()
        if parent is None:
            return generator

        def _carried():
            key = self.activate(parent)
            try:
                result = yield from generator
                return result
            finally:
                self.deactivate(parent, key)

        return _carried()

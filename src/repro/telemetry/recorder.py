"""The flight recorder: a bounded ring buffer of causally-linked records.

A long-run datagrid process that dies months in leaves the operator one
question — *what happened right before?* — and an unbounded event log is
the wrong tool: it grows with the run, and most of it is irrelevant to
the crash. The flight recorder is the black box instead: a fixed-size
ring of the most recent :class:`FlightRecord` entries, each stamped with
a monotonic sequence number, the sim time, the span context of the
process that produced it (so records link back into the trace tree), and
the producing process's name. It is fed from three taps:

* the structured :class:`~repro.telemetry.events.EventLog` — every
  ``emit`` (faults, recovery actions, interrupted transfers, ILM and
  trigger decisions) tees one record into the ring;
* the engine listener bus — execution/flow/step progress events, which
  the telemetry session otherwise defers to export time;
* the transfer service — completed transfers, recorded at completion.

Recording is append-to-a-``deque(maxlen=N)`` plus one span-context read:
near-zero overhead, no allocation beyond the record tuple, no kernel
events, no RNG — attaching a recorder cannot move a single float of the
simulation (``benchmarks/test_e23_observability.py`` holds the 20-seed
chaos fingerprint bit-identical with it attached).

Dumps happen on demand (:meth:`FlightRecorder.dump`), on a chaos
invariant violation (the chaos harness calls :meth:`dump`), or on a
kernel deadlock (:meth:`on_deadlock`, invoked duck-typed from
``Environment.run_process`` so the kernel imports nothing from here).
The dump is deterministic JSONL: a header line naming the reason, then
one line per surviving record in sequence order.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, List, NamedTuple, Optional

__all__ = ["FlightRecord", "FlightRecorder"]

#: Default ring capacity: enough to hold the full causal tail of a chaos
#: run (faults, retries, restarts) while staying a few hundred KB.
DEFAULT_CAPACITY = 4096


class FlightRecord(NamedTuple):
    """One ring entry: who did what, when, under which span."""

    seq: int
    time: float
    kind: str
    #: Span id of the producing process's current span (None outside any).
    span_id: Optional[int]
    #: ``__name__`` of the producing process's generator ('' if none).
    process: str
    fields: Dict[str, object]


class FlightRecorder:
    """Bounded, causally-annotated recent-history buffer for one session.

    Construct via
    :func:`~repro.telemetry.instrument.attach_observability`, which wires
    the event-log tee and the engine listener; the recorder itself only
    needs the :class:`~repro.telemetry.core.Telemetry` session.
    """

    def __init__(self, telemetry, capacity: int = DEFAULT_CAPACITY,
                 dump_path: Optional[str] = None) -> None:
        self.telemetry = telemetry
        self.env = telemetry.env
        self.capacity = capacity
        self.dump_path = dump_path
        self.ring: deque = deque(maxlen=capacity)
        self._seq = 0
        #: Set by the last :meth:`dump`; tests and the chaos harness read
        #: these instead of re-parsing the written file.
        self.last_dump: List[str] = []
        self.last_dump_reason: Optional[str] = None
        self.dump_count = 0

    # -- context -----------------------------------------------------------

    def _span_context(self):
        """(span_id, process_name) of the currently active sim process.

        Reads the engine-pinned ``Process._tspan`` first (the explicit-
        parent fast path), falling back to the tracer's context stack, so
        records produced inside an operation handler link to the step
        span that spawned it.
        """
        active = self.env._active_process
        if active is None:
            return None, ""
        span = active._tspan
        if span is None:
            stack = self.telemetry.tracer._stacks.get(id(active))
            if stack:
                span = stack[-1]
        name = getattr(active._generator, "__name__", "") or ""
        return (None if span is None else span.span_id), name

    # -- taps --------------------------------------------------------------

    def record(self, kind: str, fields: Dict[str, object]) -> None:
        """Append one record at the current sim time."""
        span_id, process = self._span_context()
        seq = self._seq
        self._seq = seq + 1
        self.ring.append(tuple.__new__(FlightRecord, (
            seq, self.env._now, kind, span_id, process, fields)))

    def capture(self, record) -> None:
        """EventLog tee: mirror one already-built telemetry record."""
        span_id, process = self._span_context()
        seq = self._seq
        self._seq = seq + 1
        self.ring.append(tuple.__new__(FlightRecord, (
            seq, record.time, record.kind, span_id, process,
            record.fields)))

    def engine_listener(self, kind, execution, instance_key, time,
                        detail) -> None:
        """`FlowEngine.listeners` subscriber: engine progress records.

        The telemetry session defers these to export time; the recorder
        cannot (a crash dump must already hold them), so it appends live.
        """
        fields = {"request_id": execution.request_id, "key": instance_key}
        if detail:
            fields.update(detail)
        span_id, process = self._span_context()
        seq = self._seq
        self._seq = seq + 1
        self.ring.append(tuple.__new__(FlightRecord, (
            seq, time, f"engine.{kind}", span_id, process, fields)))

    def record_transfer(self, stats) -> None:
        """Transfer-service tee: one record per completed transfer."""
        self.record("net.transfer", {
            "src": stats.src, "dst": stats.dst, "nbytes": stats.nbytes,
            "hops": stats.hops, "links": list(stats.route),
            "duration": stats.duration})

    # -- dumping -----------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Records evicted from the ring since attach."""
        return self._seq - len(self.ring)

    def dump(self, reason: str, path: Optional[str] = None) -> List[str]:
        """Serialize the ring as JSONL (header line + one per record).

        Writes to ``path`` (or the recorder's ``dump_path``) when one is
        set; always returns the lines and remembers them on
        :attr:`last_dump` / :attr:`last_dump_reason`.
        """
        lines = [json.dumps({
            "type": "recorder", "reason": reason, "time": self.env.now,
            "records": len(self.ring), "dropped": self.dropped,
            "capacity": self.capacity}, sort_keys=True)]
        for seq, time, kind, span_id, process, fields in self.ring:
            lines.append(json.dumps({
                "type": "record", "seq": seq, "time": time, "kind": kind,
                "span_id": None if span_id is None else f"s{span_id:06d}",
                "process": process, **fields},
                sort_keys=True, default=str))
        target = path if path is not None else self.dump_path
        if target is not None:
            with open(target, "w", encoding="utf-8") as handle:
                for line in lines:
                    handle.write(line + "\n")
        self.last_dump = lines
        self.last_dump_reason = reason
        self.dump_count += 1
        return lines

    def on_deadlock(self, process_name: str, target: str) -> None:
        """Kernel hook: a ``run_process`` deadlock is about to raise.

        Called duck-typed from the kernel (which imports no telemetry),
        records the stuck process, and auto-dumps the ring so the causal
        tail of the hang survives the exception.
        """
        self.record("sim.deadlock",
                    {"process": process_name, "waiting_on": target})
        self.dump("deadlock")

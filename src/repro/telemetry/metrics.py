"""Label-aware metrics clocked on virtual time.

§2.1 demands a "programmatic API to query and monitor any step in the
datagrid ILM process"; the operational half of that requirement is a
metrics surface. This module provides the three classic instrument kinds —
:class:`Counter`, :class:`Gauge`, :class:`Histogram` — registered in a
:class:`MetricsRegistry` and stamped with **simulation time**
(:attr:`~repro.sim.kernel.Environment.now`), never wall time, so a run's
telemetry is as deterministic as the run itself.

Each instrument is label-aware in the Prometheus style: ``counter.labels
(policy="archive").inc()`` tracks one time series per label combination.
Label-less instruments are their own single series, so hot paths can hold
a direct reference and call ``inc()`` / ``observe()`` with no dict work.
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKETS"]

#: Default histogram bucket upper bounds (seconds-ish scale; virtual time
#: in this reproduction spans milliseconds to months).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 600.0, 3600.0, 86400.0, 604800.0)


class _Instrument:
    """Shared base: name, help text, label plumbing, child management."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 labelnames: Tuple[str, ...],
                 clock: Callable[[], float]) -> None:
        self.name = name
        self.help_text = help_text
        self.labelnames = labelnames
        self._clock = clock
        self._children: Dict[Tuple[str, ...], "_Instrument"] = {}
        #: Sim time of the most recent update to *any* series.
        self.last_updated: Optional[float] = None

    def labels(self, **labels: object) -> "_Instrument":
        """The child series for one label combination (created on demand).

        Label values are stringified; the combination must bind exactly
        the registered label names.
        """
        try:
            key = tuple(str(labels[name]) for name in self.labelnames)
        except KeyError:
            key = None
        if key is None or len(labels) != len(self.labelnames):
            raise ReproError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}")
        child = self._children.get(key)
        if child is None:
            child = type(self)(self.name, self.help_text, (), self._clock)
            self._children[key] = child
        return child

    def series(self) -> Iterable[Tuple[Tuple[str, ...], "_Instrument"]]:
        """All (label values, series) pairs; label-less = one empty key."""
        if self.labelnames:
            return list(self._children.items())
        return [((), self)]

    def _touch(self) -> None:
        self.last_updated = self._clock()


class Counter(_Instrument):
    """A monotonically increasing count (events, bytes, retries)."""

    kind = "counter"

    def __init__(self, name, help_text="", labelnames=(),
                 clock=lambda: 0.0) -> None:
        super().__init__(name, help_text, tuple(labelnames), clock)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the label-less series."""
        if amount < 0:
            raise ReproError(f"counter {self.name!r} cannot decrease")
        self.value += amount
        self.last_updated = self._clock()


class Gauge(_Instrument):
    """A value that can go up and down (queue depth, utilization)."""

    kind = "gauge"

    def __init__(self, name, help_text="", labelnames=(),
                 clock=lambda: 0.0) -> None:
        super().__init__(name, help_text, tuple(labelnames), clock)
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value`` at the current sim time."""
        self.value = float(value)
        self._touch()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        self.value += amount
        self._touch()

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.inc(-amount)


class Histogram(_Instrument):
    """A distribution with cumulative buckets plus raw stamped samples.

    Besides the Prometheus-style bucket counts / sum / count, every
    observation is kept as a ``(sim_time, value)`` pair so exports can
    replay the full sample stream (the JSONL exporter does).
    """

    kind = "histogram"

    def __init__(self, name, help_text="", labelnames=(),
                 clock=lambda: 0.0, buckets=DEFAULT_BUCKETS) -> None:
        super().__init__(name, help_text, tuple(labelnames), clock)
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        self.bucket_counts: List[int] = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0
        #: Raw (sim_time, value) observations, in observation order.
        #: Hot paths append here directly and leave the bucket work to
        #: :meth:`_fold` (run by ``Telemetry.collect`` at export time).
        self.samples: List[Tuple[float, float]] = []
        self._folded = 0

    def labels(self, **labels: object) -> "Histogram":
        """Child series; inherits this histogram's bucket boundaries."""
        child = super().labels(**labels)
        child.buckets = self.buckets
        if len(child.bucket_counts) != len(self.buckets) + 1:
            child.bucket_counts = [0] * (len(self.buckets) + 1)
        return child  # type: ignore[return-value]

    def observe(self, value: float, at: Optional[float] = None) -> None:
        """Record one observation, at sim time ``at`` (default: now).

        Buckets, sum, and count update immediately. Hot paths skip this
        method and append ``(at, value)`` to :attr:`samples` directly;
        :meth:`_fold` catches the buckets up at export time.
        """
        self.samples.append((self._clock() if at is None else at, value))
        self._fold()

    def _fold(self) -> None:
        """Fold samples not yet in the buckets into them (idempotent)."""
        samples = self.samples
        folded = self._folded
        total = len(samples)
        if folded == total:
            return
        buckets = self.buckets
        counts = self.bucket_counts
        for when, value in samples[folded:]:
            counts[bisect.bisect_left(buckets, value)] += 1
            self.sum += value
        self.count = total
        self._folded = total
        self.last_updated = samples[-1][0]


class MetricsRegistry:
    """Owns every instrument of one telemetry session.

    ``clock`` supplies the timestamp for every sample — wire it to
    ``lambda: env.now`` so all series share the simulation clock.
    Registering the same name twice returns the existing instrument
    (names are the identity, as in Prometheus).
    """

    def __init__(self, clock: Callable[[], float]) -> None:
        self.clock = clock
        self._metrics: Dict[str, _Instrument] = {}

    def _register(self, cls, name: str, help_text: str,
                  labelnames, **kwargs) -> _Instrument:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ReproError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}")
            return existing
        metric = cls(name, help_text, tuple(labelnames), self.clock,
                     **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help_text: str = "",
                labelnames: Iterable[str] = ()) -> Counter:
        """Get or create a counter."""
        return self._register(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Iterable[str] = ()) -> Gauge:
        """Get or create a gauge."""
        return self._register(Gauge, name, help_text, labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Iterable[str] = (),
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        """Get or create a histogram."""
        return self._register(Histogram, name, help_text, labelnames,
                              buckets=tuple(buckets))

    def get(self, name: str) -> Optional[_Instrument]:
        """The instrument called ``name``, if registered."""
        return self._metrics.get(name)

    def metrics(self) -> List[_Instrument]:
        """All instruments, in registration order."""
        return list(self._metrics.values())

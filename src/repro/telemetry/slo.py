"""Sim-time SLO probes and the alerting engine that evaluates them.

§2.1's management requirement is not satisfied by raw telemetry — an
operator of a months-long datagrid process needs *judgements*: is the
grid healthy, which windows were degraded, which execution is stuck. An
:class:`SLOEngine` holds a set of declarative probes and evaluates them
over the structured telemetry a run already produces, on **sim-time
windows**, emitting structured ``slo.alert`` events and a
``slo_alerts_total`` counter labelled by probe.

Evaluation is demand-driven (call :meth:`SLOEngine.evaluate` at any
instant, typically at the end of a run or from a monitoring process) and
strictly read-only over the simulation: probes inspect the event log,
histogram samples, and kernel queue lanes, schedule nothing, and draw no
randomness — so an attached engine cannot perturb a run's
``run_signature``. Repeat evaluations are idempotent: each (probe,
window, labels) breach alerts exactly once.

The stock probe set (:func:`default_probes`):

* :class:`FaultWindowProbe` — one critical alert per injected fault
  window (component availability is the hardest SLO there is); this is
  the probe the chaos acceptance gate holds to 100% recall.
* :class:`TransferLatencyProbe` — windowed p99 of WAN transfer duration,
  per link, against a threshold; the symptom-side view of degradation.
* :class:`RecoveryPressureProbe` — recovery actions (retries, resumes,
  failovers, restarts) per window; any recovery activity above the
  budget means the grid is burning resilience headroom.
* :class:`QueueDepthProbe` — kernel scheduling-lane depth (and any
  published gateway backlog) at the evaluation instant; a runaway
  workload shows up here first.
* :class:`StallProbe` — execution-stall watchdog: a live (non-terminal)
  execution with no engine event for longer than the quiet budget is
  stuck *right now*.

The windowed per-link latency history :class:`TransferLatencyProbe`
computes is exactly the substrate ROADMAP item 4's predictive replica
selection needs; :func:`window_series` is exported for that reuse.
"""

from __future__ import annotations

from math import ceil
from typing import Dict, Iterable, List, NamedTuple, Optional, Tuple

__all__ = [
    "Alert", "SLOEngine", "default_probes", "fault_coverage",
    "quantile", "window_series",
    "FaultWindowProbe", "TransferLatencyProbe", "RecoveryPressureProbe",
    "QueueDepthProbe", "StallProbe",
]


class Alert(NamedTuple):
    """One SLO breach: a probe, the window it judged, and the numbers."""

    probe: str
    severity: str
    time: float                    # sim instant the alert refers to
    window: Tuple[float, float]    # (start, end); instant probes use (t, t)
    value: float
    threshold: float
    labels: Tuple[Tuple[str, str], ...]   # sorted, hashable label pairs
    message: str


def _labels(**labels: object) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def quantile(values: List[float], q: float) -> float:
    """Nearest-rank quantile of ``values`` (exact, deterministic).

    Computed from the full sample list, not bucket boundaries, so p99 of
    a window is a real observed value.
    """
    if not values:
        raise ValueError("quantile of an empty sample set")
    ordered = sorted(values)
    rank = max(0, ceil(q * len(ordered)) - 1)
    return ordered[min(rank, len(ordered) - 1)]


def window_series(points: Iterable[Tuple[float, float]],
                  window_s: float) -> Dict[int, List[float]]:
    """Bucket ``(time, value)`` points into fixed sim-time windows.

    Window ``i`` covers ``[i*window_s, (i+1)*window_s)``. Returns
    window-index -> values, insertion-ordered by first occurrence.
    """
    series: Dict[int, List[float]] = {}
    for when, value in points:
        index = int(when // window_s)
        bucket = series.get(index)
        if bucket is None:
            series[index] = [value]
        else:
            bucket.append(value)
    return series


# --------------------------------------------------------------------------
# Probes
# --------------------------------------------------------------------------


class FaultWindowProbe:
    """One alert per injected fault window (availability SLO).

    Pairs ``fault.begin`` / ``fault.end`` log records FIFO per
    (kind, target); a window still open at evaluation alerts with the
    evaluation instant as its provisional end.
    """

    name = "fault-window"

    def evaluate(self, engine, now: float) -> List[Alert]:
        """Pair begin/end records into windows; one alert each."""
        open_windows: Dict[Tuple[str, str], List[float]] = {}
        windows: List[Tuple[str, str, float, float]] = []
        for record in engine.telemetry.log.records:
            if record.kind == "fault.begin":
                key = (record.fields["fault"], record.fields["target"])
                open_windows.setdefault(key, []).append(record.time)
            elif record.kind == "fault.end":
                key = (record.fields["fault"], record.fields["target"])
                starts = open_windows.get(key)
                if starts:
                    windows.append((*key, starts.pop(0), record.time))
        for (kind, target), starts in sorted(open_windows.items()):
            for start in starts:
                windows.append((kind, target, start, now))
        alerts = []
        for kind, target, start, end in sorted(windows,
                                               key=lambda w: (w[2], w[0],
                                                              w[1])):
            alerts.append(Alert(
                probe=self.name, severity="critical", time=start,
                window=(start, end), value=end - start, threshold=0.0,
                labels=_labels(fault=kind, target=target),
                message=f"{kind} on {target} open "
                        f"t={start:.2f}..{end:.2f}"))
        return alerts


class TransferLatencyProbe:
    """Windowed p99 WAN transfer duration per link vs a threshold."""

    name = "transfer-latency"

    def __init__(self, p99_threshold_s: float = 20.0,
                 window_s: float = 5.0) -> None:
        self.p99_threshold_s = p99_threshold_s
        self.window_s = window_s

    def evaluate(self, engine, now: float) -> List[Alert]:
        """Alert on every (link, window) whose p99 breaches the SLO."""
        per_link: Dict[str, List[Tuple[float, float]]] = {}
        for record in engine.telemetry.log.records:
            if record.kind != "net.transfer":
                continue
            fields = record.fields
            for link in fields.get("links", ()):
                per_link.setdefault(link, []).append(
                    (record.time, fields["duration"]))
        alerts = []
        for link in sorted(per_link):
            for index, values in window_series(per_link[link],
                                               self.window_s).items():
                p99 = quantile(values, 0.99)
                if p99 <= self.p99_threshold_s:
                    continue
                window = (index * self.window_s,
                          (index + 1) * self.window_s)
                alerts.append(Alert(
                    probe=self.name, severity="warning", time=window[1],
                    window=window, value=p99,
                    threshold=self.p99_threshold_s,
                    labels=_labels(link=link),
                    message=f"p99 transfer latency {p99:.2f}s on {link} "
                            f"in t={window[0]:.0f}..{window[1]:.0f} "
                            f"(threshold {self.p99_threshold_s:.0f}s)"))
        return alerts


class RecoveryPressureProbe:
    """Recovery actions per window against an action budget.

    The default budget is zero: on a healthy grid *any* retry, resume,
    failover, or restart means something broke and resilience headroom
    is being spent — exactly the signal an operator wants windowed.
    """

    name = "recovery-pressure"

    def __init__(self, max_actions: int = 0, window_s: float = 5.0) -> None:
        self.max_actions = max_actions
        self.window_s = window_s

    def evaluate(self, engine, now: float) -> List[Alert]:
        """Alert on every window whose action count exceeds the budget."""
        points = [(record.time, 1.0)
                  for record in engine.telemetry.log.records
                  if record.kind.startswith("recovery.")]
        alerts = []
        for index, values in sorted(window_series(points,
                                                  self.window_s).items()):
            count = len(values)
            if count <= self.max_actions:
                continue
            window = (index * self.window_s, (index + 1) * self.window_s)
            alerts.append(Alert(
                probe=self.name, severity="warning", time=window[1],
                window=window, value=float(count),
                threshold=float(self.max_actions), labels=(),
                message=f"{count} recovery actions in "
                        f"t={window[0]:.0f}..{window[1]:.0f} "
                        f"(budget {self.max_actions})"))
        return alerts


class QueueDepthProbe:
    """Kernel scheduling-lane — and gateway backlog — depth right now.

    Two depth surfaces, one probe: the kernel's scheduling lanes (a
    runaway workload shows up here first) and, when a
    :class:`~repro.dfms.gateway.DfMSGateway` is publishing its
    ``gateway_queue_depth`` gauge, each gateway's admission backlog
    against ``max_gateway_depth``. A gateway pinned at its bound means
    requests are being shed — the operator-side view of saturation.
    """

    name = "queue-depth"

    def __init__(self, max_depth: int = 100_000,
                 max_gateway_depth: int = 1_000) -> None:
        self.max_depth = max_depth
        self.max_gateway_depth = max_gateway_depth

    def evaluate(self, engine, now: float) -> List[Alert]:
        """Alert when any watched queue exceeds its depth cap right now."""
        alerts = []
        depth = engine.telemetry._queued()
        if depth > self.max_depth:
            alerts.append(Alert(
                probe=self.name, severity="warning", time=now,
                window=(now, now), value=float(depth),
                threshold=float(self.max_depth), labels=(),
                message=f"{depth} events queued on the kernel lanes at "
                        f"t={now:.2f} (max {self.max_depth})"))
        family = engine.telemetry.metrics.get("gateway_queue_depth")
        if family is not None:
            for values, series in sorted(family.series()):
                backlog = series.value
                if backlog <= self.max_gateway_depth:
                    continue
                gateway = values[0] if values else "?"
                alerts.append(Alert(
                    probe=self.name, severity="warning", time=now,
                    window=(now, now), value=float(backlog),
                    threshold=float(self.max_gateway_depth),
                    labels=_labels(gateway=gateway),
                    message=f"{backlog:.0f} requests backlogged at "
                            f"{gateway} at t={now:.2f} "
                            f"(max {self.max_gateway_depth})"))
        return alerts


class StallProbe:
    """Execution-stall watchdog: live executions quiet for too long.

    Judges *now*, not history: an execution that went quiet mid-run but
    finished is fine; one that is still non-terminal with no engine
    event for ``max_quiet_s`` of sim time is stuck. Needs the engine's
    server handle (``SLOEngine(server=...)``); without one it is inert.
    """

    name = "execution-stall"

    def __init__(self, max_quiet_s: float = 30.0) -> None:
        self.max_quiet_s = max_quiet_s

    def evaluate(self, engine, now: float) -> List[Alert]:
        """Alert per live execution quiet for longer than the budget."""
        server = engine.server
        if server is None:
            return []
        last_seen: Dict[str, float] = {}
        for record in engine.telemetry.log.records:
            if record.kind.startswith("engine."):
                last_seen[record.fields["request_id"]] = record.time
        alerts = []
        for execution in server.executions():
            if execution.state.is_terminal:
                continue
            last = last_seen.get(execution.request_id,
                                 execution.submitted_at)
            quiet = now - last
            if quiet <= self.max_quiet_s:
                continue
            alerts.append(Alert(
                probe=self.name, severity="critical", time=now,
                window=(last, now), value=quiet,
                threshold=self.max_quiet_s,
                labels=_labels(request_id=execution.request_id),
                message=f"execution {execution.request_id} "
                        f"({execution.state.value}) quiet for "
                        f"{quiet:.1f}s at t={now:.2f}"))
        return alerts


def default_probes(p99_threshold_s: float = 20.0, window_s: float = 5.0,
                   max_recovery_actions: int = 0,
                   max_queue_depth: int = 100_000,
                   max_gateway_depth: int = 1_000,
                   stall_quiet_s: float = 30.0) -> List[object]:
    """The stock probe set, thresholds overridable per deployment."""
    return [
        FaultWindowProbe(),
        TransferLatencyProbe(p99_threshold_s, window_s),
        RecoveryPressureProbe(max_recovery_actions, window_s),
        QueueDepthProbe(max_queue_depth, max_gateway_depth),
        StallProbe(stall_quiet_s),
    ]


# --------------------------------------------------------------------------
# The engine
# --------------------------------------------------------------------------


class SLOEngine:
    """Evaluates a probe set over one telemetry session, idempotently."""

    def __init__(self, telemetry, probes: Optional[List[object]] = None,
                 server=None) -> None:
        self.telemetry = telemetry
        self.server = server
        self.probes = list(probes) if probes is not None else default_probes()
        #: Every alert ever raised, in raise order (the export surface).
        self.alerts: List[Alert] = []
        self._seen = set()
        # Lazily registered so sessions without an SLO engine attached
        # expose exactly the same metric families as before.
        self.counter = telemetry.metrics.counter(
            "slo_alerts_total", "SLO alert events raised, by probe",
            ["probe"])

    def evaluate(self, now: Optional[float] = None) -> List[Alert]:
        """Run every probe; returns (and remembers) the *new* alerts.

        Folds the telemetry session first so probes see materialized
        engine events and transfer completions. A breach already alerted
        on (same probe, window, labels) is not re-raised, so calling this
        every N sim-seconds from a watchdog process is safe.
        """
        telemetry = self.telemetry
        telemetry.collect()
        instant = telemetry.env.now if now is None else now
        fresh: List[Alert] = []
        for probe in self.probes:
            for alert in probe.evaluate(self, instant):
                key = (alert.probe, alert.window, alert.labels)
                if key in self._seen:
                    continue
                self._seen.add(key)
                fresh.append(alert)
                self.alerts.append(alert)
                self.counter.labels(probe=alert.probe).inc()
                telemetry.log.emit(
                    "slo.alert", probe=alert.probe,
                    severity=alert.severity,
                    window_start=alert.window[0],
                    window_end=alert.window[1], value=alert.value,
                    threshold=alert.threshold, message=alert.message,
                    **dict(alert.labels))
        return fresh


def fault_coverage(engine: SLOEngine):
    """Recall check: did every injected fault window raise its alert?

    Returns ``(windows, uncovered)`` where ``windows`` is every
    (kind, target, start) fault window the telemetry log holds and
    ``uncovered`` the subset no ``fault-window`` alert matches. The
    chaos acceptance gate asserts ``uncovered`` is empty.
    """
    windows = [(record.fields["fault"], record.fields["target"], record.time)
               for record in engine.telemetry.log.records
               if record.kind == "fault.begin"]
    alerted = {(dict(alert.labels)["fault"], dict(alert.labels)["target"],
                alert.window[0])
               for alert in engine.alerts if alert.probe == "fault-window"}
    uncovered = [window for window in windows if window not in alerted]
    return windows, uncovered

"""The structured telemetry event log.

Every instrumented subsystem appends :class:`TelemetryRecord` entries —
engine progress, ILM decisions, trigger firings, transfer completions —
to one append-only, sim-time-ordered log. It is the third telemetry
surface next to metrics (aggregates) and spans (timed trees): the raw
narrative of a run, exported verbatim as JSONL and durable enough to be
the provenance-grade record §2.1 wants "retained for years".
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple

__all__ = ["TelemetryRecord", "EventLog"]


class TelemetryRecord(NamedTuple):
    """One structured log entry: a kind, a sim timestamp, and fields.

    A ``NamedTuple`` (not a dataclass) deliberately: records are created
    on hot instrumentation paths, and tuple construction is the cheapest
    immutable carrier Python has. The hottest emitters skip even the
    generated ``__new__`` and build records with
    ``tuple.__new__(TelemetryRecord, (time, kind, fields))``.
    """

    time: float
    kind: str
    fields: Dict[str, object]


class EventLog:
    """Append-only structured log stamped with simulation time."""

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self.records: List[TelemetryRecord] = []
        #: Attached :class:`~repro.telemetry.recorder.FlightRecorder`, or
        #: None (the default). When set, every emit tees one ring entry —
        #: a single attribute load and branch on the emit path otherwise.
        self.recorder = None

    def emit(self, kind: str, **fields: object) -> TelemetryRecord:
        """Append one record at the current sim time and return it."""
        record = TelemetryRecord(self._clock(), kind, fields)
        self.records.append(record)
        recorder = self.recorder
        if recorder is not None:
            recorder.capture(record)
        return record

    def of_kind(self, kind: str) -> List[TelemetryRecord]:
        """All records of one kind, in emission order."""
        return [record for record in self.records if record.kind == kind]

    def __len__(self) -> int:
        return len(self.records)

"""The telemetry session facade.

One :class:`Telemetry` object bundles the three surfaces — metrics,
tracing spans, structured event log — behind a single handle that hangs
off the simulation :class:`~repro.sim.kernel.Environment` as
``env.telemetry``. Instrumented subsystems read that attribute and guard
on ``None``, so a run without telemetry pays one attribute load and a
branch per instrumentation point (measured in
``benchmarks/test_e19_telemetry.py``) and nothing else.

The sim kernel is the one subsystem too hot for *any* per-event
instrumentation, so its event loop carries none: scheduled/fired counts
are derived at export time from bookkeeping the kernel already does
(its monotonic event id and the heap length — see
:attr:`Telemetry.sim_scheduled`). Only process *completion* records
anything (a single lifetime sample).
"""

from __future__ import annotations

from functools import partial
from typing import List, Tuple

from repro.telemetry.events import EventLog, TelemetryRecord
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import Tracer

__all__ = ["Telemetry"]


class Telemetry:
    """Metrics + tracer + event log, all clocked on one environment."""

    def __init__(self, env) -> None:
        self.env = env
        # The one shared clock. partial(getattr, ...) stays in C — no
        # Python frame per timestamp, unlike a lambda.
        clock = partial(getattr, env, "_now")
        self.metrics = MetricsRegistry(clock)
        self.tracer = Tracer(clock, env)
        self.log = EventLog(clock)

        # -- sim kernel: derived from its own bookkeeping at collect() ----
        #: Kernel event id and heap length at attach time; collect()
        #: subtracts these so counts start at zero per session.
        self._eid_at_attach = env._eid
        self._queued_at_attach = self._queued()
        metric = self.metrics
        #: Completed process (sim_time, lifetime_seconds) pairs. This IS
        #: the lifetime histogram's raw sample list: the kernel appends
        #: pairs here and collect() folds them into buckets (Histogram
        #: defers bucket work to export for exactly this reason).
        self.sim_process_lifetimes: List[Tuple[float, float]] = (
            metric.histogram(
                "sim_process_lifetime_seconds",
                "Virtual lifetime of completed simulation processes")
            .samples)
        # -- DfMS engine ---------------------------------------------------
        self.dfms_engine_events = metric.counter(
            "dfms_engine_events_total",
            "Engine progress events, by kind", ["kind"])
        self.dfms_step_retries = metric.counter(
            "dfms_step_retries_total",
            "Step operation retries taken by onError fault handling")
        self.dfms_step_duration = metric.histogram(
            "dfms_step_duration_seconds",
            "Virtual-time duration of completed steps")
        # -- ILM engine ----------------------------------------------------
        self.ilm_passes = metric.counter(
            "ilm_passes_total", "Policy passes submitted", ["policy"])
        self.ilm_apply = metric.counter(
            "ilm_apply_total",
            "Per-object policy evaluations, by outcome",
            ["policy", "outcome"])
        self.ilm_actions = metric.counter(
            "ilm_actions_total",
            "Placement actions performed, by rule and outcome",
            ["policy", "rule", "outcome"])
        # -- trigger manager -----------------------------------------------
        self.trigger_events = metric.counter(
            "trigger_events_total", "Namespace events seen by the manager")
        self.trigger_evals = metric.counter(
            "trigger_condition_evals_total",
            "Trigger condition evaluations")
        self.trigger_firings = metric.counter(
            "trigger_firings_total",
            "Condition-met trigger activations", ["trigger"])
        self.trigger_conflicts = metric.counter(
            "trigger_ordering_conflicts_total",
            "Events matched by more than one trigger (order-dependent)")
        # -- network transfers ---------------------------------------------
        self.net_transfers = metric.counter(
            "net_transfers_total", "Completed transfers", ["scope"])
        self.net_transfers_wan = self.net_transfers.labels(scope="wan")
        self.net_transfers_local = self.net_transfers.labels(scope="local")
        self.net_bytes = metric.counter(
            "net_bytes_moved_total", "Bytes moved across WAN links")
        self.net_transfer_duration = metric.histogram(
            "net_transfer_duration_seconds",
            "Virtual-time duration of completed WAN transfers")
        self.net_link_utilization = metric.gauge(
            "net_link_utilization_ratio",
            "Fraction of a link's bandwidth in use", ["link"])
        # -- faults & recovery ---------------------------------------------
        self.fault_events = metric.counter(
            "fault_events_total",
            "Fault-window transitions driven by a fault schedule",
            ["kind", "phase"])
        self.recovery_actions = metric.counter(
            "recovery_actions_total",
            "Recovery actions (retry / resume / failover / restart)",
            ["kind"])
        # -- schedule sanitizer (dgfsan) -----------------------------------
        self.sanitizer_batches = metric.counter(
            "sanitizer_batches_total",
            "Same-timestamp batches inspected by the schedule sanitizer")
        self.sanitizer_races = metric.counter(
            "sanitizer_races_total",
            "Schedule races reported, by conflict class", ["kind"])
        # -- catalog query planner -----------------------------------------
        self.catalog_queries = metric.counter(
            "catalog_queries_total",
            "Datagrid queries, by planner access path", ["access_path"])
        self.catalog_candidates = metric.counter(
            "catalog_candidates_examined_total",
            "Candidate objects examined while answering queries")
        # -- DfMS gateway (admission + queueing) ---------------------------
        self.gateway_queue_depth = metric.gauge(
            "gateway_queue_depth",
            "Requests admitted but not yet dequeued by a worker",
            ["gateway"])
        self.gateway_admitted = metric.counter(
            "gateway_admitted_total",
            "Requests admitted into the gateway queue", ["gateway"])
        self.gateway_shed = metric.counter(
            "gateway_shed_total",
            "Requests refused before admission, by reason",
            ["gateway", "reason"])
        self.gateway_queue_wait = metric.histogram(
            "gateway_queue_wait_seconds",
            "Virtual time from admission to dequeue", ["gateway"])
        self.gateway_coalesced = metric.counter(
            "gateway_coalesced_total",
            "Duplicate same-instant status polls answered from one "
            "server call", ["gateway"])
        # -- DGMS cache tier -----------------------------------------------
        self.cache_requests = metric.counter(
            "dgms_cache_requests_total",
            "Cache-tier lookups, by surface and outcome",
            ["surface", "outcome"])
        self.cache_invalidations = metric.counter(
            "dgms_cache_invalidations_total",
            "Cache entries dropped by precise invalidation, by cause",
            ["cause"])
        # -- federation (RLS + cross-zone copies) --------------------------
        self.rls_lookups = metric.counter(
            "rls_lookups_total",
            "Replica location lookups, by outcome", ["outcome"])
        self.rls_shards_touched = metric.counter(
            "rls_shards_touched_total",
            "Index shards consulted across all lookups")
        self.rls_digest_checks = metric.counter(
            "rls_digest_checks_total",
            "Zone-digest membership tests, by outcome", ["outcome"])
        self.rls_staleness = metric.histogram(
            "rls_digest_staleness_seconds",
            "Age of the oldest digest consulted per lookup")
        self.federation_copies = metric.counter(
            "federation_copies_total",
            "Cross-zone copies, by outcome", ["outcome"])
        self.federation_bridge_bytes = metric.counter(
            "federation_bridge_bytes_total",
            "Bytes carried across inter-zone bridges")
        # Per-kind engine counter cache: the deferred engine events fold
        # (collect) skips the labels() keyword plumbing on repeat kinds.
        self._engine_kind_counters = {}
        #: Engine bus events not yet materialized into counters and log
        #: records — engine_listener only appends raw tuples here.
        self._engine_pending = []
        #: Completed TransferStats not yet materialized — the transfer
        #: service appends the stats object it already built and
        #: collect() derives counters, samples, and log records.
        self.net_pending = []
        #: Callbacks run by :meth:`collect` — subsystems whose state is
        #: only worth gauging at export time (e.g. link utilization)
        #: register one instead of updating gauges on their hot path.
        self.collectors = []
        #: Attached :class:`~repro.telemetry.recorder.FlightRecorder`
        #: (None by default; set by ``attach_observability``). The kernel
        #: reaches it duck-typed via ``getattr`` on deadlock, and the
        #: transfer service tees completions into it when present.
        self.recorder = None
        #: Attached :class:`~repro.telemetry.slo.SLOEngine`, or None.
        self.slo = None

    # -- sim kernel (derived) ------------------------------------------------

    def _queued(self) -> int:
        """Events waiting in any of the kernel's three scheduling lanes
        (future heap, current-timestamp FIFO, urgent FIFO)."""
        env = self.env
        return (len(env._queue) + len(env._current) + len(env._urgent))

    @property
    def sim_scheduled(self) -> int:
        """Events scheduled onto the kernel's lanes since attach.

        The kernel's monotonic event id *is* a push counter, so this
        costs the kernel nothing per event.
        """
        return self.env._eid - self._eid_at_attach

    @property
    def sim_fired(self) -> int:
        """Events popped and processed since attach.

        Pops = pushes minus what is still queued (events queued before
        attach and fired after count as fired, hence the baseline).
        """
        return self.sim_scheduled - (self._queued() - self._queued_at_attach)

    # -- engine event bus ----------------------------------------------------

    def engine_listener(self, kind, execution, instance_key, time,
                        detail) -> None:
        """`FlowEngine.listeners` subscriber: one emission path for all.

        Attached by :func:`~repro.telemetry.instrument.attach_telemetry`
        next to any :class:`~repro.dfms.monitoring.ExecutionMonitor`, so
        push-watchers, metrics, and the event log all observe the same
        stream. Runs twice per step, so it only stashes the raw event;
        counters and log records are materialized by :meth:`collect`.
        """
        self._engine_pending.append(
            (time, kind, execution.request_id, instance_key, detail))

    def _fold_engine_events(self) -> None:
        """Materialize pending engine bus events (counters + log)."""
        pending = self._engine_pending
        if not pending:
            return
        records = self.log.records
        kind_counters = self._engine_kind_counters
        for time, kind, request_id, instance_key, detail in pending:
            cached = kind_counters.get(kind)
            if cached is None:
                cached = (self.dfms_engine_events.labels(kind=kind),
                          f"engine.{kind}")
                kind_counters[kind] = cached
            counter, log_kind = cached
            counter.value += 1.0
            counter.last_updated = time
            fields = {"request_id": request_id, "key": instance_key}
            if detail:
                fields.update(detail)
            records.append(
                tuple.__new__(TelemetryRecord, (time, log_kind, fields)))
        del pending[:]

    def _fold_net_transfers(self) -> None:
        """Materialize pending transfer completions (counters + log)."""
        pending = self.net_pending
        if not pending:
            return
        records = self.log.records
        wan = self.net_transfers_wan
        local = self.net_transfers_local
        moved = self.net_bytes
        samples = self.net_transfer_duration.samples
        for stats in pending:
            now = stats.end_time
            duration = stats.duration
            if stats.hops:
                wan.value += 1.0
                wan.last_updated = now
                moved.value += stats.nbytes
                moved.last_updated = now
                samples.append((now, duration))
            else:
                local.value += 1.0
                local.last_updated = now
            records.append(tuple.__new__(TelemetryRecord, (
                now, "net.transfer",
                {"src": stats.src, "dst": stats.dst,
                 "nbytes": stats.nbytes, "hops": stats.hops,
                 "links": list(stats.route),
                 "duration": duration})))
        del pending[:]

    # -- export-time folding -------------------------------------------------

    def collect(self) -> MetricsRegistry:
        """Fold every deferred surface and return the metrics registry.

        Runs collectors, derives the kernel's counters, materializes
        pending engine events, and folds histogram samples (process
        lifetimes included) into their buckets. Idempotent — exporters
        call it every time they render.
        """
        for collector in self.collectors:
            collector()
        self._fold_engine_events()
        self._fold_net_transfers()
        # Live emitters (ILM, triggers) interleave with the deferred
        # folds above; restore sim-time order (stable, so same-time
        # records keep their emission order).
        self.log.records.sort(key=lambda record: record[0])
        metric = self.metrics
        metric.counter(
            "sim_events_scheduled_total",
            "Events scheduled onto the kernel's lanes").value = float(
                self.sim_scheduled)
        metric.counter(
            "sim_events_fired_total",
            "Events popped and processed").value = float(self.sim_fired)
        metric.gauge(
            "sim_queue_depth",
            "Events waiting on the kernel's lanes right now").value = float(
                self._queued())
        for instrument in metric.metrics():
            if instrument.kind == "histogram":
                for _, series in instrument.series():
                    series._fold()
        return metric

"""Causal trace reconstruction from JSONL telemetry exports.

The JSONL exporter writes a run's full narrative — events, spans,
samples, final metric values — one object per line. This module is the
read side: parse a dump (tolerating truncation — a crashed writer's
half-line is counted, not fatal), rebuild the span forest from
``span_id`` / ``parent_id`` references (orphaned spans, whose parent
never made it into the file, are promoted to marked roots rather than
dropped), and reconstruct the *causal story* of a single execution: the
faults that opened around it, the transfers that were interrupted, the
retries/backoffs/failovers/resumes the recovery layer took, checkpoint
restarts, monitor-visible transitions, SLO alerts, and the terminal
state — ordered on sim time. ``repro trace <execution-id>`` renders it
for operators.
"""

from __future__ import annotations

import json
from typing import Dict, List, NamedTuple, Optional, Tuple

__all__ = ["ParsedDump", "SpanNode", "TraceMoment", "parse_jsonl",
           "build_span_forest", "reexport", "causal_trace", "render_trace"]


class ParsedDump(NamedTuple):
    """One parsed JSONL export, split by entry type."""

    entries: List[dict]            # every valid entry, file order
    spans: Dict[str, dict]         # span_id -> span entry
    events: List[dict]             # event entries, file order
    skipped: List[Tuple[int, str]]  # (1-based line number, why)


class SpanNode(NamedTuple):
    """One node of the reconstructed span forest."""

    span: dict
    children: List["SpanNode"]
    #: True when the span's parent_id resolves to no span in the dump
    #: (export truncated mid-run, or the parent never finished).
    orphaned: bool


class TraceMoment(NamedTuple):
    """One line of a causal story: when, which subsystem, what."""

    time: float
    source: str      # engine / fault / network / recovery / monitor / slo
    summary: str
    fields: dict


def parse_jsonl(lines) -> ParsedDump:
    """Parse exported JSONL lines, skipping (and counting) broken ones.

    A dump written by a dying process may end mid-line; anything that is
    not valid JSON or not a dict is recorded in ``skipped`` with its line
    number instead of raising, so a partial dump still reconstructs.
    """
    entries: List[dict] = []
    spans: Dict[str, dict] = {}
    events: List[dict] = []
    skipped: List[Tuple[int, str]] = []
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError as exc:
            skipped.append((number, f"invalid JSON: {exc}"))
            continue
        if not isinstance(entry, dict) or "type" not in entry:
            skipped.append((number, "not a telemetry entry"))
            continue
        entries.append(entry)
        kind = entry["type"]
        if kind == "span":
            spans[entry["span_id"]] = entry
        elif kind in ("event", "record"):
            events.append(entry)
    return ParsedDump(entries, spans, events, skipped)


def build_span_forest(spans: Dict[str, dict]) -> List[SpanNode]:
    """Rebuild the span tree(s) from parent references.

    Roots are spans with no parent; spans whose parent is missing from
    the dump become roots too, flagged ``orphaned`` — a truncated export
    loses ancestors first (they finish last), so orphan promotion keeps
    the surviving subtrees intact. Siblings sort on (start, span_id).
    """
    nodes = {span_id: SpanNode(span, [], False)
             for span_id, span in spans.items()}
    roots: List[SpanNode] = []
    for span_id in spans:
        node = nodes[span_id]
        parent_id = node.span.get("parent_id")
        if parent_id is None:
            roots.append(node)
        elif parent_id in nodes:
            nodes[parent_id].children.append(node)
        else:
            roots.append(SpanNode(node.span, node.children, True))
            nodes[span_id] = roots[-1]
    order = lambda n: (n.span.get("start", 0.0), n.span["span_id"])
    for node in nodes.values():
        node.children.sort(key=order)
    roots.sort(key=order)
    return roots


def reexport(dump: ParsedDump) -> List[str]:
    """Re-serialize a parsed dump, byte-identical to its valid input.

    The exporter writes ``json.dumps(entry, sort_keys=True)``; floats
    round-trip exactly through ``json.loads``, so export → parse →
    reexport is the identity on every line that parsed.
    """
    return [json.dumps(entry, sort_keys=True, default=str)
            for entry in dump.entries]


# --------------------------------------------------------------------------
# Causal reconstruction
# --------------------------------------------------------------------------


def _execution_span(dump: ParsedDump, request_id: str) -> Optional[dict]:
    for span in dump.spans.values():
        if (span.get("name") == "execution"
                and span.get("attrs", {}).get("request_id") == request_id):
            return span
    return None


def execution_ids(dump: ParsedDump) -> List[str]:
    """Every execution request id the dump mentions, first-seen order."""
    seen: Dict[str, None] = {}
    for event in dump.events:
        if event.get("kind", "").startswith("engine."):
            rid = event.get("request_id")
            if rid is not None:
                seen[rid] = None
    for span in dump.spans.values():
        if span.get("name") == "execution":
            rid = span.get("attrs", {}).get("request_id")
            if rid is not None:
                seen[rid] = None
    return list(seen)


def _summarize(event: dict) -> Tuple[str, str]:
    """(source, one-line summary) for one event entry."""
    kind = event.get("kind", "?")
    if kind.startswith("engine."):
        what = kind[len("engine."):]
        key = event.get("key") or ""
        extra = ""
        if event.get("error"):
            error_type = event.get("error_type")
            prefix = f"{error_type}: " if error_type else ""
            extra = f" — {prefix}{event['error']}"
        return "engine", (f"{what} {key}".rstrip() + extra)
    if kind.startswith("fault."):
        phase = kind[len("fault."):]
        return "fault", (f"{phase} {event.get('fault', '?')} on "
                         f"{event.get('target', '?')}")
    if kind == "net.interrupted":
        return "network", (
            f"transfer {event.get('src')}->{event.get('dst')} interrupted "
            f"on {event.get('link')} "
            f"({event.get('transferred', 0):.0f}/"
            f"{event.get('nbytes', 0):.0f} B moved)")
    if kind == "net.transfer":
        return "network", (f"transfer {event.get('src')}->"
                           f"{event.get('dst')} completed "
                           f"({event.get('nbytes', 0):.0f} B in "
                           f"{event.get('duration', 0.0):.2f}s)")
    if kind.startswith("recovery."):
        action = kind[len("recovery."):]
        detail = {key: value for key, value in event.items()
                  if key not in ("type", "time", "kind", "seq", "span_id",
                                 "process")}
        parts = " ".join(f"{key}={value}"
                         for key, value in sorted(detail.items()))
        return "recovery", f"{action} {parts}".rstrip()
    if kind.startswith("monitor."):
        return "monitor", (f"{kind[len('monitor.'):]} "
                           f"{event.get('state', '')}".rstrip())
    if kind == "slo.alert":
        return "slo", (f"[{event.get('severity')}] "
                       f"{event.get('message', event.get('probe'))}")
    if kind == "sim.deadlock":
        return "kernel", (f"deadlock: {event.get('process')} waiting on "
                          f"{event.get('waiting_on')}")
    return "event", kind


#: Ambient kinds: not tagged with a request id, but part of any
#: overlapping execution's causal story.
_AMBIENT_PREFIXES = ("fault.", "recovery.", "slo.")
_AMBIENT_KINDS = ("net.interrupted", "sim.deadlock")


def causal_trace(dump: ParsedDump, request_id: str) -> List[TraceMoment]:
    """The ordered causal story of one execution's terminal state.

    Combines the execution's own engine/monitor events with the ambient
    fault, recovery, network-interruption, and SLO context that overlaps
    its active window — concurrent executions share that context, which
    is the truth of a shared grid, not an attribution error.
    """
    span = _execution_span(dump, request_id)
    own: List[Tuple[float, int, dict]] = []
    times: List[float] = []
    for index, event in enumerate(dump.events):
        if event.get("request_id") == request_id:
            own.append((event.get("time", 0.0), index, event))
            times.append(event.get("time", 0.0))
    if span is not None:
        start, end = span.get("start", 0.0), span.get("end", 0.0)
    elif times:
        start, end = min(times), max(times)
    else:
        return []
    moments = list(own)
    for index, event in enumerate(dump.events):
        if event.get("request_id") == request_id:
            continue
        kind = event.get("kind", "")
        if not (kind.startswith(_AMBIENT_PREFIXES)
                or kind in _AMBIENT_KINDS):
            continue
        when = event.get("time", 0.0)
        if start <= when <= end:
            moments.append((when, index, event))
    moments.sort(key=lambda moment: (moment[0], moment[1]))
    return [TraceMoment(when, *_summarize(event), event)
            for when, _, event in moments]


def render_trace(dump: ParsedDump, request_id: str) -> str:
    """Text rendering of :func:`causal_trace` for the CLI."""
    moments = causal_trace(dump, request_id)
    if not moments:
        known = execution_ids(dump)
        listing = ", ".join(known) if known else "none found"
        return (f"no trace for execution {request_id!r} "
                f"(executions in this dump: {listing})")
    terminal = "unknown"
    for moment in reversed(moments):
        kind = moment.fields.get("kind", "")
        if (kind.startswith("engine.execution_")
                and moment.fields.get("request_id") == request_id):
            terminal = kind[len("engine.execution_"):]
            break
    lines = [f"execution {request_id}: {terminal} "
             f"({len(moments)} causal moments)"]
    if dump.skipped:
        lines.append(f"  [dump truncated: {len(dump.skipped)} "
                     f"unparseable line(s) skipped]")
    width = max(len(moment.source) for moment in moments)
    for moment in moments:
        lines.append(f"  t={moment.time:8.2f}  "
                     f"{moment.source.ljust(width)}  {moment.summary}")
    return "\n".join(lines)

"""Wiring telemetry into a deployment.

Instrumentation points live inside each subsystem, guarded on
``env.telemetry is None`` — this module is only the attach surface:

* :func:`attach_telemetry` — create a session on one environment and
  (optionally) subscribe it to a DfMS server's engine event bus and a
  DGMS's namespace, covering all six instrumented subsystems.
* :func:`instrument_scenario` — one-call convenience for the workload
  scenario builders.

Nothing here (or anywhere) turns telemetry on implicitly: the default is
no session at all, and the instrumentation guards keep that default
effectively free (``benchmarks/test_e19_telemetry.py`` measures both
modes).
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from repro.telemetry.core import Telemetry

__all__ = ["attach_telemetry", "instrument_scenario",
           "attach_observability", "Observability"]


def attach_telemetry(env, server=None, dgms=None) -> Telemetry:
    """Create a telemetry session and wire it to a deployment.

    ``env`` gains a ``telemetry`` attribute the sim kernel, DfMS engine,
    ILM manager, trigger manager, and transfer service all read. When a
    ``server`` is given, the session subscribes to its engine's listener
    bus — the same emission path :class:`~repro.dfms.monitoring.
    ExecutionMonitor` uses — and its DGMS's namespace is tagged so the
    catalog query planner can report access-path metrics. Attaching twice
    returns the existing session.
    """
    existing: Optional[Telemetry] = getattr(env, "telemetry", None)
    telemetry = existing if existing is not None else Telemetry(env)
    env.telemetry = telemetry
    if server is not None and dgms is None:
        dgms = server.dgms
    if server is not None:
        if telemetry.engine_listener not in server.engine.listeners:
            server.engine.listeners.append(telemetry.engine_listener)
    if dgms is not None:
        dgms.namespace.telemetry = telemetry
    return telemetry


def instrument_scenario(scenario) -> Telemetry:
    """Attach telemetry to a :class:`~repro.workloads.scenarios.Scenario`."""
    return attach_telemetry(scenario.env, server=scenario.server,
                            dgms=scenario.dgms)


class Observability(NamedTuple):
    """The full observability stack attached to one environment."""

    telemetry: Telemetry
    recorder: object   # FlightRecorder
    slo: object        # SLOEngine


def attach_observability(env, server=None, dgms=None,
                         capacity: Optional[int] = None,
                         probes=None,
                         dump_path: Optional[str] = None) -> Observability:
    """Attach telemetry plus the flight recorder and SLO engine.

    Builds (or reuses) the telemetry session, hangs a
    :class:`~repro.telemetry.recorder.FlightRecorder` off it (teeing the
    event log and, when a ``server`` is given, the engine listener bus),
    and constructs an :class:`~repro.telemetry.slo.SLOEngine` over the
    same session. Both are strictly read-only over the simulation —
    attaching them cannot move a float (the E23 benchmark pins the
    20-seed chaos fingerprint with and without). Idempotent: a second
    call returns the existing stack (``probes`` and ``capacity`` are
    ignored then).
    """
    from repro.telemetry.recorder import DEFAULT_CAPACITY, FlightRecorder
    from repro.telemetry.slo import SLOEngine

    telemetry = attach_telemetry(env, server=server, dgms=dgms)
    recorder = telemetry.recorder
    if recorder is None:
        recorder = FlightRecorder(
            telemetry,
            capacity=DEFAULT_CAPACITY if capacity is None else capacity,
            dump_path=dump_path)
        telemetry.recorder = recorder
        telemetry.log.recorder = recorder
        if server is not None:
            server.engine.listeners.append(recorder.engine_listener)
    slo = telemetry.slo
    if slo is None:
        slo = SLOEngine(telemetry, probes=probes, server=server)
        telemetry.slo = slo
    return Observability(telemetry, recorder, slo)

"""Wiring telemetry into a deployment.

Instrumentation points live inside each subsystem, guarded on
``env.telemetry is None`` — this module is only the attach surface:

* :func:`attach_telemetry` — create a session on one environment and
  (optionally) subscribe it to a DfMS server's engine event bus and a
  DGMS's namespace, covering all six instrumented subsystems.
* :func:`instrument_scenario` — one-call convenience for the workload
  scenario builders.

Nothing here (or anywhere) turns telemetry on implicitly: the default is
no session at all, and the instrumentation guards keep that default
effectively free (``benchmarks/test_e19_telemetry.py`` measures both
modes).
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.core import Telemetry

__all__ = ["attach_telemetry", "instrument_scenario"]


def attach_telemetry(env, server=None, dgms=None) -> Telemetry:
    """Create a telemetry session and wire it to a deployment.

    ``env`` gains a ``telemetry`` attribute the sim kernel, DfMS engine,
    ILM manager, trigger manager, and transfer service all read. When a
    ``server`` is given, the session subscribes to its engine's listener
    bus — the same emission path :class:`~repro.dfms.monitoring.
    ExecutionMonitor` uses — and its DGMS's namespace is tagged so the
    catalog query planner can report access-path metrics. Attaching twice
    returns the existing session.
    """
    existing: Optional[Telemetry] = getattr(env, "telemetry", None)
    telemetry = existing if existing is not None else Telemetry(env)
    env.telemetry = telemetry
    if server is not None and dgms is None:
        dgms = server.dgms
    if server is not None:
        if telemetry.engine_listener not in server.engine.listeners:
            server.engine.listeners.append(telemetry.engine_listener)
    if dgms is not None:
        dgms.namespace.telemetry = telemetry
    return telemetry


def instrument_scenario(scenario) -> Telemetry:
    """Attach telemetry to a :class:`~repro.workloads.scenarios.Scenario`."""
    return attach_telemetry(scenario.env, server=scenario.server,
                            dgms=scenario.dgms)

"""The ``datagridflow`` command-line tool.

Operator-facing utilities over DGL documents and the simulated grid:

* ``validate``  — parse + schema-check a DGL request document;
* ``render``    — draw a document's flow as a text tree;
* ``structure`` — print a model class's schema structure (the paper's
  Figs. 1–4, regenerated on demand);
* ``moml2dgl`` / ``dgl2moml`` — convert between the IDE's MoML models and
  DGL requests;
* ``demo``      — run a named scenario end to end and print its summary;
* ``telemetry`` — same scenarios, with the telemetry layer attached:
  prints a run summary with histogram quantiles (p50/p95/p99, optionally
  restricted to a ``--window`` of sim time) and exports
  metrics/spans/events (Prometheus text and/or JSONL);
* ``trace``     — reconstruct the causal story of one execution from a
  JSONL export / flight-recorder dump (``--jsonl``) or a live observed
  chaos run (``--chaos-seed``);
* ``lint``      — run dgflint, the determinism-contract linter
  (:mod:`repro.analysis`), over a source tree and emit a text or JSON
  report;
* ``farm``      — fan the seeded chaos sweep across all cores with the
  :mod:`repro.farm` runner and print per-seed invariant results,
  signatures, and sweep throughput;
* ``federation`` — run the multi-zone federation chaos sweep
  (:mod:`repro.federation.chaos`): cross-zone copies under zone outages
  and bridge degradations, with per-seed survival invariants and the
  sweep fingerprint.

Exposed as the ``datagridflow`` and ``repro`` console scripts (see
``pyproject.toml``) and runnable as ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.dgl import (
    DataGridRequest,
    Flow,
    flow_to_moml,
    moml_to_flow,
    render_flow,
    request_from_xml,
    request_to_xml,
    structure_of,
    validate_request,
)

__all__ = ["main"]

def _structure_classes():
    # Built fresh per call (a handful of name lookups on an interactive
    # path) rather than memoized in module state, which DGF008 forbids.
    from repro.dgl.model import (
        DataGridRequest as Request,
        DataGridResponse,
        Flow as FlowModel,
        FlowLogic,
        Step,
    )
    return {
        "Flow": FlowModel,
        "FlowLogic": FlowLogic,
        "Step": Step,
        "DataGridRequest": Request,
        "DataGridResponse": DataGridResponse,
    }


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def _write(path: Optional[str], text: str) -> None:
    if path is None or path == "-":
        print(text)
        return
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
        if not text.endswith("\n"):
            handle.write("\n")


# -- commands ------------------------------------------------------------


def _cmd_validate(args) -> int:
    request = request_from_xml(_read(args.document))
    validate_request(request)
    body = request.body
    if isinstance(body, Flow):
        print(f"OK: flow {body.name!r} with {body.count_steps()} steps, "
              f"depth {body.depth()}, user {request.user}")
    else:
        print(f"OK: status query for {body.request_id}")
    return 0


def _cmd_render(args) -> int:
    request = request_from_xml(_read(args.document))
    if not isinstance(request.body, Flow):
        print("document is a status query; nothing to render",
              file=sys.stderr)
        return 1
    print(render_flow(request.body))
    return 0


def _cmd_structure(args) -> int:
    classes = _structure_classes()
    if args.model not in classes:
        print(f"unknown model {args.model!r}; choose from "
              f"{', '.join(sorted(classes))}", file=sys.stderr)
        return 1
    print(structure_of(classes[args.model], max_depth=args.depth))
    return 0


def _cmd_moml2dgl(args) -> int:
    flow = moml_to_flow(_read(args.model))
    request = DataGridRequest(user=args.user,
                              virtual_organization=args.vo, body=flow,
                              asynchronous=True)
    _write(args.output, request_to_xml(request))
    return 0


def _cmd_dgl2moml(args) -> int:
    request = request_from_xml(_read(args.document))
    if not isinstance(request.body, Flow):
        print("document is a status query; nothing to convert",
              file=sys.stderr)
        return 1
    _write(args.output, flow_to_moml(request.body))
    return 0


def _demo_deployment(scenario_name: str, files: int):
    """Build a named demo: returns ``(scenario, user, flow)``.

    Shared between ``demo`` and ``telemetry`` so both commands run the
    exact same workloads.
    """
    from repro.baselines import dgl_integrity_flow
    from repro.workloads import (
        bbsrc_scenario,
        cms_scenario,
        ucsd_library_scenario,
    )

    if scenario_name == "library":
        scenario = ucsd_library_scenario(n_files=files)
        user = scenario.users["librarian"]
        flow = dgl_integrity_flow("/library/ingest", "library-tape")
    elif scenario_name == "bbsrc":
        from repro.ilm import ILMManager, imploding_star_policy
        scenario = bbsrc_scenario(n_hospitals=3,
                                  files_per_hospital=files)
        manager = ILMManager(scenario.server)
        manager.add_policy(imploding_star_policy(
            name="pull", collection="/bbsrc", archiver_domain="ral",
            archive_resource="ral-tape"))
        user = scenario.users["archivist"]
        flow = manager.policy("pull").compile_to_flow()
    else:
        from repro.ilm import exploding_star_flow
        scenario = cms_scenario(n_events=files)
        user = scenario.users["physicist"]
        flow = exploding_star_flow(
            "stage-out", "/cms/run1",
            tier_resources=[scenario.extras["tier1_resources"],
                            scenario.extras["tier2_resources"]])
    return scenario, user, flow


def _cmd_demo(args) -> int:
    scenario, user, flow = _demo_deployment(args.scenario, args.files)

    def go():
        response = yield scenario.env.process(scenario.server.submit_sync(
            DataGridRequest(user=user.qualified_name,
                            virtual_organization="demo", body=flow)))
        return response

    response = scenario.run(go())
    state = response.body.state.value
    print(f"scenario {args.scenario!r}: {state} at virtual "
          f"t={scenario.env.now:.1f} s")
    print(f"  provenance records: {len(scenario.provenance)}")
    print(f"  WAN bytes moved:    "
          f"{scenario.dgms.transfers.total_bytes_moved / 1e6:.1f} MB")
    return 0 if state == "completed" else 1


def _parse_window(raw: Optional[str]):
    """Parse ``start:end`` (either side blank = open) into a float pair."""
    if raw is None:
        return None
    parts = raw.split(":")
    if len(parts) != 2:
        raise ReproError(
            f"bad --window {raw!r}: expected start:end sim times")
    try:
        start = float(parts[0]) if parts[0].strip() else 0.0
        end = float(parts[1]) if parts[1].strip() else float("inf")
    except ValueError:
        raise ReproError(
            f"bad --window {raw!r}: expected start:end sim times")
    if end < start:
        raise ReproError(f"bad --window {raw!r}: end precedes start")
    return (start, end)


def _cmd_telemetry(args) -> int:
    from repro.grid.events import EventKind
    from repro.dgl.model import Operation
    from repro.telemetry import (
        histogram_summaries,
        instrument_scenario,
        write_jsonl,
        write_prometheus,
    )
    from repro.triggers import DatagridTrigger, TriggerManager

    scenario, user, flow = _demo_deployment(args.scenario, args.files)
    telemetry = instrument_scenario(scenario)
    # An audit trigger so the run exercises the trigger manager too: note
    # every replica change (the action is a no-op log flow).
    manager = TriggerManager(scenario.dgms, server=scenario.server)
    manager.register(DatagridTrigger(
        name="audit-replicas", owner=user,
        kinds=frozenset({EventKind.REPLICATE, EventKind.MIGRATE}),
        action=Operation(name="dgl.log",
                         parameters={"message":
                                     "replica change at ${event_path}"})))

    def go():
        response = yield scenario.env.process(scenario.server.submit_sync(
            DataGridRequest(user=user.qualified_name,
                            virtual_organization="demo", body=flow)))
        return response

    response = scenario.run(go())
    state = response.body.state.value
    telemetry.collect()
    window = _parse_window(args.window)

    print(f"scenario {args.scenario!r}: {state} at virtual "
          f"t={scenario.env.now:.1f} s")
    series = sum(len(list(m.series()))
                 for m in telemetry.metrics.metrics())
    print(f"  metric series:  {series}")
    print(f"  spans recorded: {len(telemetry.tracer.finished)}")
    print(f"  event records:  {len(telemetry.log)}")
    print(f"  trigger firings: {len(manager.firing_log)}")
    # Histograms as operator-facing quantiles (exact, from raw samples),
    # not raw bucket dumps; --window restricts to a sim-time interval.
    scope = (f" in t={window[0]:g}..{window[1]:g}" if window else "")
    print(f"  histogram quantiles{scope}:")
    summaries = histogram_summaries(telemetry, window=window)
    if not summaries:
        print("    (no samples in range)")
    for summary in summaries:
        labels = "".join(f" {key}={value}" for key, value
                         in sorted(summary["labels"].items()))
        print(f"    {summary['metric']}{labels}: n={summary['count']} "
              f"p50={summary['p50']:.3f} p95={summary['p95']:.3f} "
              f"p99={summary['p99']:.3f} max={summary['max']:.3f}")
    if args.prom is not None:
        write_prometheus(telemetry, args.prom)
        print(f"  wrote Prometheus text to {args.prom}")
    if args.jsonl is not None:
        write_jsonl(telemetry, args.jsonl, window=window)
        print(f"  wrote JSONL export to {args.jsonl}")
    return 0 if state == "completed" else 1


def _cmd_trace(args) -> int:
    from repro.telemetry.trace import (
        execution_ids,
        parse_jsonl,
        render_trace,
    )

    if (args.jsonl is None) == (args.chaos_seed is None):
        print("trace: give exactly one of --jsonl FILE or --chaos-seed N",
              file=sys.stderr)
        return 2
    if args.jsonl is not None:
        with open(args.jsonl, encoding="utf-8") as handle:
            lines = [line.rstrip("\n") for line in handle]
    else:
        from repro.workloads.chaos import run_chaos
        report = run_chaos(args.chaos_seed, observe=True,
                           observe_export=True)
        lines = report.observe.jsonl
    dump = parse_jsonl(lines)
    if args.execution is None:
        known = execution_ids(dump)
        if not known:
            print("no executions found in the telemetry stream",
                  file=sys.stderr)
            return 1
        print("executions in this telemetry stream "
              "(re-run with one to reconstruct its causal story):")
        for rid in known:
            print(f"  {rid}")
        return 0
    text = render_trace(dump, args.execution)
    print(text)
    return 0 if not text.startswith("no trace") else 1


def _cmd_lint(args) -> int:
    from repro.analysis import lint_paths, load_config, render_text
    from repro.analysis.config import LintConfig
    from repro.analysis.core import SUPPRESSION_CODE, SYNTAX_CODE
    from repro.analysis.rules import RULES
    from repro.errors import AnalysisError

    config = load_config(args.paths, explicit=args.config)
    if args.select:
        selected = frozenset(code.strip()
                             for code in args.select.split(",")
                             if code.strip())
        # An unknown code would silently select an empty rule set and
        # report a clean tree; fail loudly instead (exit 2 via main).
        known = ({rule.code for rule in RULES}
                 | {SUPPRESSION_CODE, SYNTAX_CODE})
        unknown = sorted(selected - known)
        if unknown:
            raise AnalysisError(
                f"unknown rule code(s) in --select: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})")
        if not selected:
            raise AnalysisError(
                "--select named no rule codes (use e.g. "
                "--select DGF001,DGF003)")
        config = LintConfig(
            select=selected, exclude=config.exclude,
            dispatch_paths=config.dispatch_paths,
            retryable=config.retryable,
            allowed_labels=config.allowed_labels,
            time_tokens=config.time_tokens,
            effect_methods=config.effect_methods, source=config.source)
    report = lint_paths(args.paths, config=config)
    if args.format == "json":
        _write(args.output, report.to_json())
    else:
        text = render_text(report, verbose_suppressions=args.show_suppressed)
        _write(args.output, text)
    return report.exit_code


def _parse_seeds(raw: str) -> list:
    """``"20"`` means seeds 0..19; ``"3,7,11"`` means exactly those."""
    if "," in raw:
        return [int(part) for part in raw.split(",") if part.strip()]
    return list(range(int(raw)))


def _cmd_sanitize(args) -> int:
    from repro.analysis.report import Report, render_text
    from repro.federation.chaos import (
        default_federation_seeds,
        prove_federation_order_independence,
    )
    from repro.workloads.chaos import (
        default_chaos_seeds,
        prove_chaos_order_independence,
    )

    chaos_seeds = (_parse_seeds(args.chaos_seeds)
                   if args.chaos_seeds else default_chaos_seeds())
    federation_seeds = (_parse_seeds(args.federation_seeds)
                        if args.federation_seeds
                        else default_federation_seeds())
    scenarios = []
    races_total = 0
    proved = True
    for kind, seeds, prove in (
            ("chaos", chaos_seeds, prove_chaos_order_independence),
            ("federation", federation_seeds,
             prove_federation_order_independence)):
        for seed in seeds:
            proof = prove(seed, order=args.order,
                          permute_seed=args.permute_seed,
                          max_runs=args.max_runs)
            proved = proved and proof.proved
            races_total += proof.races_total
            scenarios.append({"kind": kind, "seed": seed,
                              "proof": proof.to_dict()})
    report = Report(sanitizer={"proved": proved,
                               "races_total": races_total,
                               "scenarios": scenarios})
    if args.format == "json":
        _write(args.output, report.to_json())
    else:
        _write(args.output, render_text(report))
    return report.exit_code


def _cmd_farm(args) -> int:
    import hashlib
    import json
    import time

    from repro.farm import default_jobs, run_farm
    from repro.workloads.chaos import run_chaos

    seeds = _parse_seeds(args.seeds)
    jobs = args.jobs if args.jobs else default_jobs()
    # Wall clock, deliberately: the farm is host-side tooling reporting
    # real sweep throughput; nothing below feeds back into any simulation.
    started = time.perf_counter()  # dgf: noqa[DGF001]: farm orchestration is host-side, not sim code — this measures real seeds/sec and never touches a kernel clock
    reports = run_farm(run_chaos, seeds, jobs=jobs)
    elapsed = time.perf_counter() - started  # dgf: noqa[DGF001]: same wall-clock throughput measurement as above

    rows = []
    failures = 0
    for report in reports:
        digest = hashlib.sha256(
            repr(report.signature).encode()).hexdigest()[:12]
        if not report.ok:
            failures += 1
        rows.append((report.seed, f"{report.makespan:.2f}",
                     report.faults_begun, report.restarts,
                     sum(report.recovery_actions.values()),
                     "ok" if report.ok else "VIOLATED", digest))
    header = ("seed", "makespan_s", "faults", "restarts", "actions",
              "invariants", "signature")
    widths = [max(len(str(header[i])), *(len(str(row[i])) for row in rows))
              for i in range(len(header))] if rows else [len(h) for h in header]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    rate = len(seeds) / elapsed if elapsed else float("inf")
    print(f"{len(seeds)} seeds on {jobs} worker(s) in {elapsed:.2f} s "
          f"({rate:.2f} seeds/s); {failures} invariant failure(s)")
    for report in reports:
        for violation in report.violations:
            print(f"  seed {report.seed}: {violation}", file=sys.stderr)
    if args.json is not None:
        payload = {
            "seeds": seeds, "jobs": jobs, "elapsed_s": round(elapsed, 3),
            "seeds_per_s": round(rate, 3),
            "reports": [{
                "seed": report.seed, "ok": report.ok,
                "makespan_s": report.makespan,
                "faults_begun": report.faults_begun,
                "restarts": report.restarts,
                "recovery_actions": report.recovery_actions,
                "signature_sha256": hashlib.sha256(
                    repr(report.signature).encode()).hexdigest(),
                "violations": report.violations,
            } for report in reports],
        }
        _write(args.json, json.dumps(payload, indent=2))
    return 1 if failures else 0


def _cmd_gateway(args) -> int:
    import json

    from repro.workloads.traffic import run_saturation_curve

    rates = [float(part) for part in args.loads.split(",") if part.strip()]
    if not rates:
        print("gateway: --loads needs at least one arrival rate",
              file=sys.stderr)
        return 2
    points = run_saturation_curve(
        rates, seed=args.seed, horizon_s=args.horizon,
        workers=args.workers, queue_limit=args.queue_limit,
        cache=not args.no_cache, jobs=args.jobs)
    header = ("offered/s", "goodput/s", "p50_soj_s", "p99_soj_s",
              "shed", "peak_q", "cache_hit")
    rows = [(f"{p['offered_rate']:.2f}", f"{p['goodput_rate']:.3f}",
             f"{p['p50_sojourn_s']:.2f}", f"{p['p99_sojourn_s']:.2f}",
             p["shed_total"], p["peak_queue_depth"],
             "-" if p["cache_hit_rate"] is None
             else f"{p['cache_hit_rate']:.2f}")
            for p in points]
    widths = [max(len(str(header[i])), *(len(str(row[i])) for row in rows))
              for i in range(len(header))]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    if args.json is not None:
        _write(args.json, json.dumps({
            "seed": args.seed, "horizon_s": args.horizon,
            "workers": args.workers, "queue_limit": args.queue_limit,
            "cache": not args.no_cache, "points": points,
        }, indent=2))
    return 0


def _cmd_federation(args) -> int:
    import hashlib
    import json

    from repro.federation import run_federation_sweep, sweep_fingerprint

    seeds = _parse_seeds(args.seeds)
    reports = run_federation_sweep(
        seeds=seeds, jobs=args.jobs or None,
        faults=not args.no_faults, recovery=not args.no_recovery,
        n_zones=args.zones, placement_policy=args.policy)
    rows = []
    failures = 0
    for report in reports:
        digest = hashlib.sha256(
            repr(report.signature).encode()).hexdigest()[:12]
        if not report.ok:
            failures += 1
        rows.append((report.seed, f"{report.makespan:.2f}",
                     f"{report.copies_completed}/{report.copies_attempted}",
                     report.faults_begun, report.stale_misses,
                     report.wrong_answers,
                     "ok" if report.ok else "VIOLATED", digest))
    header = ("seed", "makespan_s", "copies", "faults", "stale", "wrong",
              "invariants", "signature")
    widths = [max(len(str(header[i])), *(len(str(row[i])) for row in rows))
              for i in range(len(header))] if rows else [len(h)
                                                         for h in header]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    print(f"{len(seeds)} seed(s), {args.zones} zones, "
          f"policy {args.policy}; {failures} invariant failure(s); "
          f"fingerprint {sweep_fingerprint(reports)[:12]}")
    for report in reports:
        for violation in report.violations:
            print(f"  seed {report.seed}: {violation}", file=sys.stderr)
    if args.json is not None:
        _write(args.json, json.dumps({
            "seeds": seeds, "zones": args.zones, "policy": args.policy,
            "faults": not args.no_faults, "recovery": not args.no_recovery,
            "fingerprint_sha256": sweep_fingerprint(reports),
            "reports": [{
                "seed": report.seed, "ok": report.ok,
                "makespan_s": report.makespan,
                "copies_attempted": report.copies_attempted,
                "copies_completed": report.copies_completed,
                "copies_failed": report.copies_failed,
                "faults_begun": report.faults_begun,
                "stale_misses": report.stale_misses,
                "wrong_answers": report.wrong_answers,
                "rls": report.rls_stats,
                "recovery_actions": report.recovery_actions,
                "violations": report.violations,
            } for report in reports],
        }, indent=2))
    return 1 if failures else 0


# -- entry point ------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="datagridflow",
        description="Datagridflow utilities (DGL documents and demos).")
    commands = parser.add_subparsers(dest="command", required=True)

    validate = commands.add_parser("validate",
                                   help="schema-check a DGL document")
    validate.add_argument("document", help="path to the XML ('-' = stdin)")
    validate.set_defaults(handler=_cmd_validate)

    render = commands.add_parser("render",
                                 help="draw a DGL flow as a text tree")
    render.add_argument("document", help="path to the XML ('-' = stdin)")
    render.set_defaults(handler=_cmd_render)

    structure = commands.add_parser(
        "structure", help="print a DGL model class structure (Figs. 1-4)")
    structure.add_argument("model",
                           help="Flow | FlowLogic | Step | DataGridRequest "
                                "| DataGridResponse")
    structure.add_argument("--depth", type=int, default=3)
    structure.set_defaults(handler=_cmd_structure)

    moml2dgl = commands.add_parser("moml2dgl",
                                   help="convert a MoML model to a DGL "
                                        "request")
    moml2dgl.add_argument("model", help="path to the MoML ('-' = stdin)")
    moml2dgl.add_argument("--user", default="user@domain")
    moml2dgl.add_argument("--vo", default="default")
    moml2dgl.add_argument("-o", "--output", default=None)
    moml2dgl.set_defaults(handler=_cmd_moml2dgl)

    dgl2moml = commands.add_parser("dgl2moml",
                                   help="convert a DGL request to MoML")
    dgl2moml.add_argument("document", help="path to the XML ('-' = stdin)")
    dgl2moml.add_argument("-o", "--output", default=None)
    dgl2moml.set_defaults(handler=_cmd_dgl2moml)

    demo = commands.add_parser("demo", help="run a named scenario")
    demo.add_argument("scenario", choices=("library", "bbsrc", "cms"))
    demo.add_argument("--files", type=int, default=6)
    demo.set_defaults(handler=_cmd_demo)

    telemetry = commands.add_parser(
        "telemetry",
        help="run a scenario with telemetry attached and export a report")
    telemetry.add_argument("scenario", choices=("library", "bbsrc", "cms"))
    telemetry.add_argument("--files", type=int, default=6)
    telemetry.add_argument("--prom", default=None,
                           help="write Prometheus text exposition here")
    telemetry.add_argument("--jsonl", default=None,
                           help="write the JSONL event/span/sample "
                                "export here")
    telemetry.add_argument(
        "--window", default=None, metavar="START:END",
        help="restrict histogram quantiles and the JSONL export to a "
             "sim-time interval; either side may be blank (open)")
    telemetry.set_defaults(handler=_cmd_telemetry)

    trace = commands.add_parser(
        "trace",
        help="reconstruct the causal story of one execution from "
             "telemetry (flight-recorder dump, JSONL export, or a live "
             "chaos run)")
    trace.add_argument("execution", nargs="?", default=None,
                       help="execution request id; omit to list the ids "
                            "present in the stream")
    trace.add_argument("--jsonl", default=None,
                       help="read a JSONL telemetry export or "
                            "flight-recorder dump from this file")
    trace.add_argument("--chaos-seed", type=int, default=None,
                       help="run the seeded chaos workload with "
                            "observability attached and trace it live")
    trace.set_defaults(handler=_cmd_trace)

    lint = commands.add_parser(
        "lint",
        help="run dgflint (the determinism-contract linter) over a tree")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("-o", "--output", default=None,
                      help="write the report here instead of stdout")
    lint.add_argument("--config", default=None,
                      help="explicit pyproject.toml (default: nearest one "
                           "above the first path)")
    lint.add_argument("--select", default=None,
                      help="comma-separated rule codes to run "
                           "(default: [tool.dgflint] select, or all)")
    lint.add_argument("--show-suppressed", action="store_true",
                      help="also list reasoned suppressions (text format)")
    lint.set_defaults(handler=_cmd_lint)

    sanitize = commands.add_parser(
        "sanitize",
        help="prove (or refute with a minimized witness) that every "
             "seeded chaos/federation scenario is independent of legal "
             "same-timestamp dispatch order")
    sanitize.add_argument("--chaos-seeds", default=None,
                          help="a count ('20' = seeds 0..19) or a "
                               "comma-separated seed list (default: the "
                               "pinned sweep, CHAOS_SEEDS-overridable)")
    sanitize.add_argument("--federation-seeds", default=None,
                          help="federation seeds, same syntax (default: "
                               "the pinned sweep, "
                               "FEDERATION_CHAOS_SEEDS-overridable)")
    sanitize.add_argument("--order", choices=("reverse", "random"),
                          default="reverse",
                          help="how permuted runs reorder each "
                               "same-timestamp choice batch")
    sanitize.add_argument("--permute-seed", type=int, default=0,
                          help="seed for --order random draws")
    sanitize.add_argument("--max-runs", type=int, default=40,
                          help="cap on reruns spent minimizing a witness")
    sanitize.add_argument("--format", choices=("text", "json"),
                          default="text")
    sanitize.add_argument("-o", "--output", default=None,
                          help="write the report here instead of stdout")
    sanitize.set_defaults(handler=_cmd_sanitize)

    farm = commands.add_parser(
        "farm",
        help="fan the seeded chaos sweep across cores (repro.farm)")
    farm.add_argument("--seeds", default="20",
                      help="a count ('20' = seeds 0..19) or an explicit "
                           "comma-separated seed list (default: 20)")
    farm.add_argument("--jobs", type=int, default=0,
                      help="worker processes (default: all usable cores; "
                           "1 = run serially in-process)")
    farm.add_argument("--json", default=None,
                      help="also write a JSON report here ('-' = stdout)")
    farm.set_defaults(handler=_cmd_farm)

    gateway = commands.add_parser(
        "gateway",
        help="run a gateway traffic profile and print the saturation curve")
    gateway.add_argument("--loads", default="0.5,1,2,4,8",
                         help="comma-separated session arrival rates per "
                              "sim second (default: 0.5,1,2,4,8)")
    gateway.add_argument("--seed", type=int, default=0,
                         help="traffic/scenario seed (default: 0)")
    gateway.add_argument("--horizon", type=float, default=60.0,
                         help="sim seconds of offered traffic (default: 60)")
    gateway.add_argument("--workers", type=int, default=4,
                         help="gateway worker processes (default: 4)")
    gateway.add_argument("--queue-limit", type=int, default=32,
                         help="bounded queue size (default: 32)")
    gateway.add_argument("--no-cache", action="store_true",
                         help="run without the DGMS cache tier")
    gateway.add_argument("--jobs", type=int, default=None,
                         help="worker processes for the sweep "
                              "(default: all usable cores)")
    gateway.add_argument("--json", default=None,
                         help="also write the curve as JSON ('-' = stdout)")
    gateway.set_defaults(handler=_cmd_gateway)

    federation = commands.add_parser(
        "federation",
        help="run the multi-zone chaos sweep and print per-seed survival")
    federation.add_argument("--seeds", default="10",
                            help="a count ('10' = seeds 0..9) or an "
                                 "explicit comma-separated seed list "
                                 "(default: 10)")
    federation.add_argument("--jobs", type=int, default=0,
                            help="worker processes (default: all usable "
                                 "cores; 1 = run serially in-process)")
    federation.add_argument("--zones", type=int, default=3,
                            help="federated zones per run (default: 3)")
    federation.add_argument("--policy", default="bridge-cost-aware",
                            help="cross-zone placement policy (default: "
                                 "bridge-cost-aware)")
    federation.add_argument("--no-faults", action="store_true",
                            help="run the workload without zone chaos")
    federation.add_argument("--no-recovery", action="store_true",
                            help="run without per-zone recovery services")
    federation.add_argument("--json", default=None,
                            help="also write a JSON report here "
                                 "('-' = stdout)")
    federation.set_defaults(handler=_cmd_federation)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

"""Datagridflows: managing long-run processes on datagrids.

A from-scratch reproduction of Jagatheesan et al. (VLDB DMG 2005):

* :mod:`repro.sim` — deterministic virtual-time kernel;
* :mod:`repro.storage` / :mod:`repro.network` — simulated physical
  substrates;
* :mod:`repro.grid` — the datagrid management system (SRB-like);
* :mod:`repro.dgl` — the Data Grid Language;
* :mod:`repro.dfms` — the datagridflow management system (engine, server,
  scheduling, virtual data, P2P);
* :mod:`repro.ilm` / :mod:`repro.triggers` / :mod:`repro.provenance` —
  the long-run process classes the paper motivates;
* :mod:`repro.baselines` / :mod:`repro.workloads` — comparison points and
  scenario generators for the experiments in EXPERIMENTS.md.

Quick start::

    from repro.sim import Environment
    from repro.grid import DataGridManagementSystem
    from repro.dfms import DfMSServer
    from repro.dgl import DataGridRequest, flow_builder

See ``examples/quickstart.py`` for a complete end-to-end run.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

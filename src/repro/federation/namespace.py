"""The federated namespace router: one logical tree over many zones.

The paper's federation story (§2.1) is that a user at one zone addresses
any peer zone's data with the same logical-name syntax they use at home.
:class:`FederatedNamespace` is that front door: it owns nothing — each
zone keeps its autonomous namespace and catalog — and only *routes*
``zone:/path`` names (plain paths go to the caller's default zone),
plus guid-level location through the federation's replica location
service.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import FederationError
from repro.grid.federation import Federation, qualify, split_zone_path

__all__ = ["FederatedNamespace"]


class FederatedNamespace:
    """``zone:/path`` resolution over a :class:`Federation`.

    One router per *vantage zone*: plain paths resolve in
    ``default_zone``, qualified names anywhere. Mirrors the
    :class:`~repro.grid.namespace.LogicalNamespace` query surface
    (resolve / resolve_object / resolve_collection / exists) so
    call-sites can switch from a single grid to a federation without
    changing shape.
    """

    def __init__(self, federation: Federation, default_zone: str) -> None:
        self.federation = federation
        federation.zone(default_zone)   # raises on unknown zones
        self.default_zone = default_zone

    # -- name plumbing --------------------------------------------------------

    def split(self, name: str) -> Tuple[str, str]:
        """``name`` as an explicit (zone, path) pair."""
        zone_name, path = split_zone_path(name)
        return zone_name or self.default_zone, path

    def qualify(self, name: str) -> str:
        """``name`` in fully-qualified ``zone:/path`` form."""
        zone_name, path = self.split(name)
        return qualify(zone_name, path)

    def zone_of(self, name: str):
        """The datagrid ``name`` routes to."""
        return self.federation.zone(self.split(name)[0])

    # -- resolution -----------------------------------------------------------

    def resolve(self, name: str):
        """The node at ``name`` (collection or object), routed to its zone."""
        zone_name, path = self.split(name)
        return self.federation.zone(zone_name).namespace.resolve(path)

    def resolve_object(self, name: str):
        """The data object at ``name``, routed to its zone."""
        zone_name, path = self.split(name)
        return self.federation.zone(zone_name).namespace.resolve_object(path)

    def resolve_collection(self, name: str):
        """The collection at ``name``, routed to its zone."""
        zone_name, path = self.split(name)
        return self.federation.zone(zone_name).namespace.resolve_collection(
            path)

    def exists(self, name: str) -> bool:
        """True when ``name`` resolves in its zone (False for unknown
        zones: an unreachable name does not exist from this vantage)."""
        try:
            zone_name, path = self.split(name)
            dgms = self.federation.zone(zone_name)
        except FederationError:
            return False
        return dgms.namespace.exists(path)

    # -- guid-level location --------------------------------------------------

    def locate(self, guid: str):
        """Federation-wide replica locations for ``guid`` (through the
        attached RLS; see :meth:`Federation.locate`)."""
        return self.federation.locate(guid)

    def zones_holding(self, guid: str) -> List[str]:
        """Zones the RLS currently locates ``guid`` in, sorted."""
        result = self.federation.locate(guid)
        zones = {location.zone: None for location in result.locations}
        return sorted(zones)

"""Cross-zone replica placement policies.

"A Taxonomy of Data Grids" (PAPERS.md) frames replica placement as a
trade between locality, dispersion, and transport cost; these are the
three policies the federation ships, all deterministic (ties break on
zone name) so placement decisions replay bit-identically:

* ``local-first`` — serve from the destination zone when it already
  holds the object, otherwise prefer zone-name order: the cheapest
  answer when bridges are uniform and the reader cares only about
  avoiding the WAN;
* ``bridge-cost-aware`` — rank candidate source zones by what the hop
  would cost *right now* (`Federation.bridge_cost`, which sees open
  :class:`~repro.faults.model.BridgeDegradation` windows), so a degraded
  bridge loses its preference for exactly its degradation window;
* ``k-zones-spread`` — pick the ``k`` zones an object should fan out to
  for survivability, preferring zones that do not yet hold it and, among
  those, the emptiest (then name order) — the dispersion side of the
  taxonomy.

The source-selection policies feed
:meth:`~repro.grid.federation.Federation.cross_zone_copy` through
:func:`cross_zone_copy_by_guid`; within the chosen zone the copy still
goes through :meth:`~repro.grid.dgms.DataGridManagementSystem.
select_replica`, so intra-zone choice (and failover) stays the DGMS's.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import FederationError
from repro.grid.federation import Federation
from repro.sim.kernel import Process

__all__ = [
    "PLACEMENT_POLICIES",
    "cross_zone_copy_by_guid",
    "rank_source_zones",
    "select_source_zone",
    "spread_zones",
]

PLACEMENT_POLICIES = ("local-first", "bridge-cost-aware", "k-zones-spread")


def _holder_zones(locations: Iterable) -> List[str]:
    """Distinct zones out of RLS locations, first-seen order."""
    zones: Dict[str, None] = {}
    for location in locations:
        zones[location.zone] = None
    return list(zones)


def rank_source_zones(federation: Federation, locations: Sequence,
                      dst_zone: str, nbytes: float = 0.0,
                      policy: str = "bridge-cost-aware") -> List[str]:
    """Holder zones ordered best-source-first for a copy into ``dst_zone``.

    ``locations`` is an RLS answer (:attr:`LocateResult.locations` or any
    sequence with ``.zone``). The destination zone itself, when it holds
    the object, always ranks first — a copy from yourself is free.
    """
    holders = _holder_zones(locations)
    if policy == "local-first":
        return sorted(holders,
                      key=lambda zone: (0 if zone == dst_zone else 1, zone))
    if policy == "bridge-cost-aware":
        return sorted(holders,
                      key=lambda zone: (federation.bridge_cost(
                          zone, dst_zone, nbytes), zone))
    raise FederationError(
        f"unknown source-selection policy {policy!r} "
        f"(expected one of {PLACEMENT_POLICIES[:2]})")


def select_source_zone(federation: Federation, guid: str, dst_zone: str,
                       nbytes: float = 0.0,
                       policy: str = "bridge-cost-aware") -> Optional[str]:
    """The zone a copy of ``guid`` into ``dst_zone`` should read from.

    Resolves holders through the federation's RLS and ranks them; the
    destination zone is excluded (nothing to copy). ``None`` when the
    RLS knows no other holder — possibly staleness, possibly loss; the
    caller decides whether to wait out the sync bound or fail.
    """
    result = federation.locate(guid)
    ranked = rank_source_zones(federation, result.locations, dst_zone,
                               nbytes=nbytes, policy=policy)
    for zone in ranked:
        if zone != dst_zone:
            return zone
    return None


def spread_zones(federation: Federation, guid: str, k: int) -> List[str]:
    """The ``k-zones-spread`` targets for ``guid``: zones to copy into.

    Prefers zones that (per the RLS) do not hold the object yet; among
    them the emptiest first (live zones by namespace size), names
    breaking ties. Zones already holding the object fill the tail when
    fewer than ``k`` non-holders exist, so the answer always has
    ``min(k, zones)`` entries.
    """
    if k < 0:
        raise FederationError(f"k cannot be negative: {k}")
    result = federation.locate(guid)
    holding = {zone: None for zone in _holder_zones(result.locations)}

    def load(zone_name: str) -> int:
        return len(federation.zone(zone_name).namespace.catalog)

    ranked = sorted(
        federation.zones(),
        key=lambda zone: (1 if zone in holding else 0, load(zone), zone))
    return ranked[:k]


def cross_zone_copy_by_guid(federation: Federation, user, guid: str,
                            dst_zone: str, dst_path: str,
                            dst_logical_resource: str,
                            policy: str = "bridge-cost-aware",
                            replica_policy: str = "nearest") -> Process:
    """Placement-driven copy: locate ``guid``, pick the source zone by
    ``policy``, and run the federation's resilient cross-zone copy.

    This is the read path that replaces hand-picked source zones: the
    RLS says who holds the object, the placement policy says who to read
    from, and :meth:`Federation.cross_zone_copy` says how (select_replica
    within the zone + recovery-aware retries).
    """
    result = federation.locate(guid)
    # Size matters to the cost ranking; take it from the first holder
    # that still has the object (RLS answers are verified at answer
    # time, but a holder can vanish between locate and here).
    obj_size = 0.0
    for zone in _holder_zones(result.locations):
        candidate = federation.zone(zone).namespace.lookup_guid(guid)
        if candidate is not None:
            obj_size = candidate.size
            break
    ranked = rank_source_zones(federation, result.locations, dst_zone,
                               nbytes=obj_size, policy=policy)
    for src_zone in ranked:
        if src_zone == dst_zone:
            continue
        obj = federation.zone(src_zone).namespace.lookup_guid(guid)
        if obj is not None:
            return federation.cross_zone_copy(
                user, src_zone, obj.path, dst_zone, dst_path,
                dst_logical_resource, replica_policy=replica_policy)
    raise FederationError(
        f"no zone other than {dst_zone!r} is known to hold {guid!r} "
        "(replica location may be stale; retry after the sync bound)")

"""Federated multi-zone datagrids.

The paper's federation story (§2.1, the SRB zone model) is autonomous
zones — each a full datagrid — joined so any user addresses any zone's
data. This package is that layer:

* :mod:`repro.federation.namespace` — the ``zone:/path`` router over a
  :class:`~repro.grid.federation.Federation`;
* :mod:`repro.federation.rls` — the two-tier replica location service:
  authoritative per-zone Local Replica Catalogs under a sharded,
  bloom-digest Replica Location Index ("stale but never wrong");
* :mod:`repro.federation.sync` — seeded, bounded-staleness digest
  propagation as sim-time machinery;
* :mod:`repro.federation.placement` — cross-zone source-selection and
  spread policies feeding the federation's resilient copy path;
* :mod:`repro.federation.scenario` — a deterministic multi-zone
  deployment builder;
* :mod:`repro.federation.chaos` — zone-scoped fault schedules
  (:class:`~repro.faults.model.ZoneOutage`,
  :class:`~repro.faults.model.BridgeDegradation`) and the federation
  survival invariants.

The core :class:`~repro.grid.federation.Federation` (zones, bridges,
cross-zone copy) stays in :mod:`repro.grid` so the grid layer never
imports upward; everything here attaches to it duck-typed.
"""

from repro.federation.chaos import (
    FederationChaosReport,
    FederationFaultDriver,
    attach_federation_faults,
    default_federation_seeds,
    federation_fault_schedule,
    federation_run_signature,
    run_federation_chaos,
    run_federation_sweep,
    sweep_fingerprint,
)
from repro.federation.namespace import FederatedNamespace
from repro.federation.placement import (
    PLACEMENT_POLICIES,
    cross_zone_copy_by_guid,
    rank_source_zones,
    select_source_zone,
    spread_zones,
)
from repro.federation.rls import (
    BloomDigest,
    FlatReplicaDirectory,
    LocalReplicaCatalog,
    LocateResult,
    ReplicaLocation,
    ReplicaLocationIndex,
    ReplicaLocationService,
    attach_rls,
    shard_of,
)
from repro.federation.scenario import (
    FederationScenario,
    federation_scenario,
    zone_name,
)
from repro.federation.sync import DigestSyncer

__all__ = [
    "BloomDigest",
    "DigestSyncer",
    "FederatedNamespace",
    "FederationChaosReport",
    "FederationFaultDriver",
    "FederationScenario",
    "FlatReplicaDirectory",
    "LocalReplicaCatalog",
    "LocateResult",
    "PLACEMENT_POLICIES",
    "ReplicaLocation",
    "ReplicaLocationIndex",
    "ReplicaLocationService",
    "attach_federation_faults",
    "attach_rls",
    "cross_zone_copy_by_guid",
    "default_federation_seeds",
    "federation_fault_schedule",
    "federation_run_signature",
    "federation_scenario",
    "rank_source_zones",
    "run_federation_chaos",
    "run_federation_sweep",
    "select_source_zone",
    "shard_of",
    "spread_zones",
    "sweep_fingerprint",
    "zone_name",
]

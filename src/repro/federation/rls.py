"""Two-tier replica location service (RLS) for federated zones.

This follows the EU DataGrid RLS split ("Next-Generation EU DataGrid
Data Management Services", PAPERS.md): the *authoritative* tier is one
:class:`LocalReplicaCatalog` (LRC) per zone, answering "where does this
zone hold guid X" from the zone's own catalog; the *index* tier is a
sharded :class:`ReplicaLocationIndex` (RLI) holding only **compressed
digests** — one bloom filter per (shard, zone) — so the federation-wide
index stays a small constant factor of the namespace no matter how many
zones publish into it.

A :meth:`ReplicaLocationService.locate` therefore touches exactly one
shard (``crc32(guid) % n_shards``), tests each zone's digest in that
shard, and queries only the LRCs whose digest matched. Every match is
re-verified against the authoritative LRC, which yields the service's
consistency contract, **stale but never wrong**:

* a digest published before a replica appeared can make the service
  *miss* that replica (bounded by the sync period — see
  :mod:`repro.federation.sync`);
* a digest false positive or a since-deleted replica costs one wasted
  LRC query, never a wrong answer — :meth:`locate` returns only
  locations the owning zone vouches for at answer time.

Per-lookup accounting (shards touched, digests checked, LRC queries,
false positives, digest staleness) is first-class: the E25 benchmark
asserts a 1M-object locate touches only its one shard's digests, and
telemetry mirrors the counters when attached.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

from repro.errors import FederationError

__all__ = [
    "BloomDigest",
    "FlatReplicaDirectory",
    "LocalReplicaCatalog",
    "LocateResult",
    "ReplicaLocation",
    "ReplicaLocationIndex",
    "ReplicaLocationService",
    "attach_rls",
    "shard_of",
]

#: Default index shard count (guid-hash partitions of the RLI).
DEFAULT_SHARDS = 64

#: Bits a digest budgets per expected entry (~1–2 % false positives at
#: the 4 probes below).
BITS_PER_ENTRY = 10

#: Hash probes per digest membership test.
_PROBES = 4


def shard_of(guid: str, n_shards: int) -> int:
    """The RLI shard responsible for ``guid`` (stable guid-hash)."""
    return zlib.crc32(guid.encode()) % n_shards


def _mix(h: int) -> int:
    """32-bit avalanche finalizer (murmur3's), applied to the salted
    CRCs the digest probes derive from. CRC32 is affine over GF(2), so
    without this every same-length guid in one shard (fixed
    ``crc32 % n_shards``) would land its probes on the *same* bit
    positions — a 100% false-positive digest. The multiplies are
    carry-propagating, which breaks the affinity."""
    h &= 0xFFFFFFFF
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & 0xFFFFFFFF
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & 0xFFFFFFFF
    h ^= h >> 16
    return h


class ReplicaLocation(NamedTuple):
    """One zone-qualified replica location, as the RLS reports it."""

    zone: str
    domain: str
    logical_resource: str
    physical_name: str


class BloomDigest:
    """A compressed membership summary of one LRC shard.

    Plain bloom filter over a ``bytearray`` bit set: :attr:`_PROBES`
    probe positions per key derived by double hashing two salted,
    :func:`_mix`-finalized CRC32s (deterministic across runs and
    processes — no :func:`hash`, which randomizes per interpreter; and
    decorrelated from the CRC-based shard partition, which raw salted
    CRCs are not). False positives at the configured load are ~1–2 %;
    false negatives are impossible, which is what lets the index tier
    promise "stale but never wrong" after LRC verification.
    """

    __slots__ = ("n_bits", "bits", "count")

    def __init__(self, n_bits: int) -> None:
        if n_bits < 8:
            n_bits = 8
        self.n_bits = n_bits
        self.bits = bytearray((n_bits + 7) // 8)
        self.count = 0

    @classmethod
    def for_capacity(cls, n_entries: int,
                     bits_per_entry: int = BITS_PER_ENTRY) -> "BloomDigest":
        """A digest sized for ``n_entries`` keys."""
        return cls(max(64, n_entries * bits_per_entry))

    def _probes(self, guid: str) -> Iterable[int]:
        data = guid.encode()
        h1 = _mix(zlib.crc32(b"rls-a:" + data))
        h2 = _mix(zlib.crc32(b"rls-b:" + data)) | 1
        n_bits = self.n_bits
        for i in range(_PROBES):
            yield (h1 + i * h2) % n_bits

    def add(self, guid: str) -> None:
        """Set ``guid``'s probe bits (irreversible, as blooms are)."""
        bits = self.bits
        for position in self._probes(guid):
            bits[position >> 3] |= 1 << (position & 7)
        self.count += 1

    def might_contain(self, guid: str) -> bool:
        """Membership test: False is definitive, True may be a false
        positive (the caller verifies against the authoritative LRC)."""
        bits = self.bits
        for position in self._probes(guid):
            if not bits[position >> 3] & (1 << (position & 7)):
                return False
        return True

    @property
    def size_bytes(self) -> int:
        """Digest wire size — what a zone actually ships to the index."""
        return len(self.bits)


class LocalReplicaCatalog:
    """Tier 1: one zone's authoritative guid → locations catalog.

    Two modes share one surface:

    * **live** (``dgms`` given): membership mirrors the zone's
      :class:`~repro.grid.catalog.GridCatalog` through its change-listener
      feed, and :meth:`locations` resolves through the live namespace —
      answers are authoritative by construction. Registration/deregistration
      notifies :attr:`listeners` (the digest syncer's dirty feed).
    * **synthetic** (``dgms`` None): entries are added directly with
      :meth:`add` — the benchmark path, where millions of locations would
      be too heavy to back with real namespace objects.
    """

    def __init__(self, zone_name: str, dgms=None) -> None:
        self.zone_name = zone_name
        self.dgms = dgms
        #: Membership-change listeners: ``listener(guid)`` after a guid
        #: joins or leaves this catalog.
        self.listeners = []
        self._static: Dict[str, Tuple[ReplicaLocation, ...]] = {}
        #: Authoritative queries answered (the "wasted query" accounting
        #: for digest false positives lives at the service level).
        self.queries = 0
        if dgms is not None:
            dgms.namespace.catalog.listeners.append(self._on_catalog_change)

    # -- live mode ------------------------------------------------------------

    def _on_catalog_change(self, kind: str, obj, attribute) -> None:
        if kind in ("register", "deregister"):
            for listener in self.listeners:
                listener(obj.guid)

    # -- synthetic mode -------------------------------------------------------

    def add(self, guid: str,
            locations: Sequence[ReplicaLocation] = ()) -> None:
        """Record ``guid`` with static ``locations`` (synthetic mode)."""
        if self.dgms is not None:
            raise FederationError(
                f"LRC {self.zone_name!r} mirrors a live datagrid; "
                "synthetic entries would shadow it")
        self._static[guid] = tuple(locations)
        for listener in self.listeners:
            listener(guid)

    def discard(self, guid: str) -> None:
        """Drop a synthetic entry (no-op when absent)."""
        if self._static.pop(guid, None) is not None:
            for listener in self.listeners:
                listener(guid)

    # -- the shared surface ---------------------------------------------------

    def guids(self) -> List[str]:
        """Every guid this zone holds, in registration order."""
        if self.dgms is not None:
            return self.dgms.namespace.guids()
        return list(self._static)

    def __len__(self) -> int:
        if self.dgms is not None:
            return len(self.dgms.namespace.catalog)
        return len(self._static)

    def locations(self, guid: str) -> Tuple[ReplicaLocation, ...]:
        """Authoritative locations for ``guid`` here, now (may be empty).

        This is the verification step of every index hit: whatever the
        digest claimed, only what the zone actually holds is returned.
        """
        self.queries += 1
        if self.dgms is not None:
            obj = self.dgms.namespace.lookup_guid(guid)
            if obj is None:
                return ()
            return tuple(
                ReplicaLocation(self.zone_name, replica.domain,
                                replica.logical_resource,
                                replica.physical_name)
                for replica in obj.good_replicas())
        return self._static.get(guid, ())


class _ZoneDigest:
    """One (shard, zone) cell of the index: a digest plus its publish time."""

    __slots__ = ("digest", "published_at")

    def __init__(self, digest: BloomDigest, published_at: float) -> None:
        self.digest = digest
        self.published_at = published_at


class ReplicaLocationIndex:
    """Tier 2: the sharded index of zone digests.

    ``n_shards`` hash-partitions of the guid space; each shard holds one
    digest per publishing zone. The index never stores a guid or a
    location — membership claims come compressed, answers come from the
    authoritative tier.
    """

    def __init__(self, n_shards: int = DEFAULT_SHARDS) -> None:
        if n_shards < 1:
            raise FederationError(f"need at least 1 shard, got {n_shards}")
        self.n_shards = n_shards
        self._shards: List[Dict[str, _ZoneDigest]] = [
            {} for _ in range(n_shards)]

    def shard_of(self, guid: str) -> int:
        """The shard responsible for ``guid`` under this index's count."""
        return shard_of(guid, self.n_shards)

    def publish(self, zone_name: str, shard_index: int,
                digest: BloomDigest, published_at: float) -> None:
        """Replace ``zone_name``'s digest for one shard."""
        self._shards[shard_index][zone_name] = _ZoneDigest(digest,
                                                           published_at)

    def withdraw(self, zone_name: str) -> None:
        """Drop every digest a (decommissioned) zone published."""
        for shard in self._shards:
            shard.pop(zone_name, None)

    def candidates(self, guid: str) -> Tuple[int, List[Tuple[str, float]]]:
        """The shard index and the ``(zone, published_at)`` pairs whose
        digest claims ``guid`` — the only zones worth querying."""
        index = self.shard_of(guid)
        shard = self._shards[index]
        matched = [(zone_name, cell.published_at)
                   for zone_name, cell in shard.items()
                   if cell.digest.might_contain(guid)]
        return index, matched

    def digests_in_shard(self, shard_index: int) -> int:
        """How many zones currently publish a digest into this shard."""
        return len(self._shards[shard_index])

    @property
    def size_bytes(self) -> int:
        """Total compressed index size across all shards and zones."""
        return sum(cell.digest.size_bytes
                   for shard in self._shards for cell in shard.values())


class LocateResult(NamedTuple):
    """One :meth:`ReplicaLocationService.locate` answer plus its receipts."""

    guid: str
    locations: Tuple[ReplicaLocation, ...]
    shard: int
    shards_touched: int
    digests_checked: int
    lrc_queries: int
    false_positives: int
    #: Age (sim seconds) of the *oldest* digest consulted; 0.0 when no
    #: digest matched or no clock is attached.
    max_staleness_s: float

    @property
    def found(self) -> bool:
        return bool(self.locations)


class ReplicaLocationService:
    """The federation-facing face of both tiers.

    Holds the LRC registry and the sharded index, answers
    :meth:`locate`, and keeps the service-level accounting. ``env`` is
    optional so the index scaling benchmark can run the service as a
    plain data structure; with an environment attached, digest staleness
    is measured in sim time and telemetry counters are mirrored.
    """

    def __init__(self, env=None, n_shards: int = DEFAULT_SHARDS) -> None:
        self.env = env
        self.index = ReplicaLocationIndex(n_shards)
        self._lrcs: Dict[str, LocalReplicaCatalog] = {}
        #: Zone name → :class:`~repro.federation.sync.DigestSyncer`, when
        #: :func:`attach_rls` wires eventually-consistent publication.
        self.syncers: Dict[str, object] = {}
        #: Service counters (telemetry mirrors them when attached).
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.false_positives = 0
        self.lrc_queries = 0
        self.shards_touched = 0

    @property
    def now(self) -> float:
        return self.env.now if self.env is not None else 0.0

    # -- zone membership ------------------------------------------------------

    def add_zone(self, lrc: LocalReplicaCatalog,
                 publish: bool = True) -> LocalReplicaCatalog:
        """Register a zone's LRC (publishing its current digests unless
        a syncer will — see :func:`repro.federation.sync.attach_rls`)."""
        if lrc.zone_name in self._lrcs:
            raise FederationError(
                f"zone {lrc.zone_name!r} already publishes to this index")
        self._lrcs[lrc.zone_name] = lrc
        if publish:
            self.publish_zone(lrc.zone_name)
        return lrc

    def lrc(self, zone_name: str) -> LocalReplicaCatalog:
        """The registered LRC for ``zone_name`` (raises if unknown)."""
        try:
            return self._lrcs[zone_name]
        except KeyError:
            raise FederationError(
                f"zone {zone_name!r} does not publish here") from None

    def zone_names(self) -> List[str]:
        """Zones publishing into this service, sorted."""
        return sorted(self._lrcs)

    # -- publishing -----------------------------------------------------------

    def _shard_guids(self, lrc: LocalReplicaCatalog
                     ) -> Dict[int, List[str]]:
        partitions: Dict[int, List[str]] = {}
        n_shards = self.index.n_shards
        for guid in lrc.guids():
            partitions.setdefault(shard_of(guid, n_shards), []).append(guid)
        return partitions

    def publish_zone(self, zone_name: str) -> None:
        """(Re)build and publish every shard digest for one zone."""
        lrc = self.lrc(zone_name)
        partitions = self._shard_guids(lrc)
        now = self.now
        for shard_index in range(self.index.n_shards):
            guids = partitions.get(shard_index, ())
            digest = BloomDigest.for_capacity(len(guids))
            for guid in guids:
                digest.add(guid)
            self.index.publish(zone_name, shard_index, digest, now)

    def publish_shards(self, zone_name: str,
                       shard_indexes: Sequence[int]) -> None:
        """Rebuild and publish just ``shard_indexes`` for one zone (the
        dirty-shard path the digest syncer drives)."""
        lrc = self.lrc(zone_name)
        wanted = set(shard_indexes)
        if not wanted:
            return
        partitions: Dict[int, List[str]] = {index: [] for index in wanted}
        n_shards = self.index.n_shards
        for guid in lrc.guids():
            index = shard_of(guid, n_shards)
            if index in wanted:
                partitions[index].append(guid)
        now = self.now
        for shard_index in sorted(wanted):
            guids = partitions[shard_index]
            digest = BloomDigest.for_capacity(len(guids))
            for guid in guids:
                digest.add(guid)
            self.index.publish(zone_name, shard_index, digest, now)

    # -- lookups --------------------------------------------------------------

    def locate(self, guid: str) -> LocateResult:
        """Federation-wide locations for ``guid``, stale-but-never-wrong.

        One shard, a digest test per publishing zone in that shard, an
        authoritative LRC query per digest match — and only
        LRC-confirmed locations in the answer.
        """
        now = self.now
        shard_index, candidates = self.index.candidates(guid)
        digests_checked = self.index.digests_in_shard(shard_index)
        locations: List[ReplicaLocation] = []
        false_positives = 0
        max_staleness = 0.0
        for zone_name, published_at in candidates:
            staleness = max(0.0, now - published_at)
            if staleness > max_staleness:
                max_staleness = staleness
            found = self._lrcs[zone_name].locations(guid)
            if found:
                locations.extend(found)
            else:
                false_positives += 1
        result = LocateResult(
            guid=guid, locations=tuple(locations), shard=shard_index,
            shards_touched=1, digests_checked=digests_checked,
            lrc_queries=len(candidates), false_positives=false_positives,
            max_staleness_s=max_staleness)
        self._account(result)
        return result

    def _account(self, result: LocateResult) -> None:
        self.lookups += 1
        self.shards_touched += result.shards_touched
        self.lrc_queries += result.lrc_queries
        self.false_positives += result.false_positives
        if result.found:
            self.hits += 1
        else:
            self.misses += 1
        if self.env is None:
            return
        telemetry = self.env.telemetry
        if telemetry is None:
            return
        outcome = "hit" if result.found else "miss"
        telemetry.rls_lookups.labels(outcome=outcome).inc()
        telemetry.rls_shards_touched.inc(result.shards_touched)
        if result.lrc_queries:
            telemetry.rls_digest_checks.labels(outcome="match").inc(
                result.lrc_queries - result.false_positives)
            telemetry.rls_digest_checks.labels(outcome="false-positive").inc(
                result.false_positives)
        rejected = result.digests_checked - result.lrc_queries
        if rejected:
            telemetry.rls_digest_checks.labels(outcome="reject").inc(rejected)
        telemetry.rls_staleness.observe(result.max_staleness_s)

    def flush_all(self) -> None:
        """Flush every zone's pending digest publications immediately
        (convergence helper for end-of-run checks; no-op without
        syncers)."""
        for zone_name in sorted(self.syncers):
            self.syncers[zone_name].flush_now()

    def stats(self) -> Dict[str, object]:
        """A plain-dict snapshot for reports and benchmarks."""
        return {
            "zones": len(self._lrcs),
            "n_shards": self.index.n_shards,
            "index_bytes": self.index.size_bytes,
            "lookups": self.lookups, "hits": self.hits,
            "misses": self.misses,
            "false_positives": self.false_positives,
            "lrc_queries": self.lrc_queries,
            "shards_touched": self.shards_touched,
        }


class FlatReplicaDirectory:
    """The single-catalog baseline E25 measures the sharded RLS against.

    One flat list of ``(guid, location)`` rows for the whole federation —
    the "one big replica catalog" a non-federated deployment would keep.
    :meth:`locate` scans it, so cost grows with total federation size
    while the sharded service's lookup cost stays at one shard. Kept as
    the reference model, not a production path.
    """

    def __init__(self) -> None:
        self._rows: List[Tuple[str, ReplicaLocation]] = []
        self.rows_scanned = 0

    def add(self, guid: str, locations: Sequence[ReplicaLocation]) -> None:
        """Append one row per location for ``guid``."""
        for location in locations:
            self._rows.append((guid, location))

    def __len__(self) -> int:
        return len(self._rows)

    def locate(self, guid: str) -> Tuple[ReplicaLocation, ...]:
        """Scan every row for ``guid`` (cost grows with the directory)."""
        found = []
        scanned = 0
        for row_guid, location in self._rows:
            scanned += 1
            if row_guid == guid:
                found.append(location)
        self.rows_scanned += scanned
        return tuple(found)


def attach_rls(federation, n_shards: int = DEFAULT_SHARDS,
               sync_period_s: Optional[float] = None,
               streams=None) -> ReplicaLocationService:
    """Wire a two-tier RLS onto ``federation`` and return it.

    Builds one live :class:`LocalReplicaCatalog` per federated zone,
    registers each with a fresh :class:`ReplicaLocationService`, and sets
    ``federation.rls`` (the duck-typed attach point
    :meth:`~repro.grid.federation.Federation.locate` resolves through).

    With ``sync_period_s`` set, digest propagation is *eventually
    consistent*: each zone gets a seeded
    :class:`~repro.federation.sync.DigestSyncer` that batches catalog
    changes and republishes dirty shards one jittered period later —
    bounded staleness, visible in sim time. Without it, digests are
    republished synchronously on every change (the zero-staleness mode
    unit tests use).
    """
    from repro.federation.sync import DigestSyncer

    if federation.rls is not None:
        raise FederationError("federation already has an RLS attached")
    service = ReplicaLocationService(federation.env, n_shards)
    for zone_name in federation.zones():
        lrc = LocalReplicaCatalog(zone_name, federation.zone(zone_name))
        service.add_zone(lrc, publish=True)
        if sync_period_s is not None:
            service.syncers[zone_name] = DigestSyncer(
                federation.env, service, lrc,
                period_s=sync_period_s, streams=streams)
        else:
            lrc.listeners.append(
                lambda guid, z=zone_name, s=service:
                s.publish_shards(z, [s.index.shard_of(guid)]))
    federation.rls = service
    return service

"""A ready-to-run federated deployment for tests, chaos, and benchmarks.

The shape mirrors the SRB zone-federation deployments (§2.1): several
autonomous zones — each a full datagrid with its own domains, storage,
users, and network — joined by a full mesh of bridges with deliberately
non-uniform capacities (so bridge-cost-aware placement has a signal),
plus the two-tier replica location service with seeded bounded-staleness
digest sync.

Everything is derived deterministically from ``seed`` and the shape
parameters; two builds with the same arguments are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.federation.namespace import FederatedNamespace
from repro.federation.rls import ReplicaLocationService, attach_rls
from repro.grid.acl import Permission
from repro.grid.dgms import DataGridManagementSystem
from repro.grid.federation import Federation
from repro.grid.users import User
from repro.network.topology import Topology
from repro.sim.kernel import Environment
from repro.sim.rng import RandomStreams
from repro.storage import GB, MB, PhysicalStorageResource, StorageClass

__all__ = ["FederationScenario", "federation_scenario", "zone_name"]


def zone_name(index: int) -> str:
    """The canonical scenario zone name for ``index`` (``z0``, ``z1``…)."""
    return f"z{index}"


@dataclass
class FederationScenario:
    """A built federation plus handles to everything the harness needs."""

    env: Environment
    federation: Federation
    namespace: FederatedNamespace
    rls: ReplicaLocationService
    streams: RandomStreams
    #: Zone name → that zone's datagrid / admin user / object paths.
    zones: Dict[str, DataGridManagementSystem] = field(default_factory=dict)
    admins: Dict[str, User] = field(default_factory=dict)
    paths: Dict[str, List[str]] = field(default_factory=dict)

    def run(self, generator):
        """Run a sim process to completion and return its value."""
        return self.env.run_process(generator)


def federation_scenario(n_zones: int = 3, domains_per_zone: int = 2,
                        objects_per_zone: int = 4,
                        object_size: float = 8 * MB, seed: int = 0,
                        sync_period_s: float = 4.0, n_shards: int = 16,
                        replicate_within_zone: bool = True
                        ) -> FederationScenario:
    """Build an ``n_zones``-zone federation on one shared kernel.

    Each zone ``z<i>`` is a full-mesh datagrid of domains ``z<i>-d<j>``
    with one disk per domain, an admin homed at ``d0``, and
    ``objects_per_zone`` objects under ``/data`` spread across the
    domains' disks (plus one intra-zone replica each when
    ``replicate_within_zone`` — so single-resource faults have somewhere
    to fail over to). Zones are bridged all-to-all with deterministic,
    deliberately non-uniform bandwidth/latency; the RLS attaches with a
    :class:`~repro.federation.sync.DigestSyncer` per zone at
    ``sync_period_s``.

    Objects are world-readable and ``/data`` world-writable in every
    zone — cross-zone copies act as the *destination* zone's admin, and
    domain autonomy is exercised by the explicit-grant federation tests,
    not the chaos harness.
    """
    if n_zones < 2:
        raise ValueError(f"a federation needs at least 2 zones: {n_zones}")
    if domains_per_zone < 1:
        raise ValueError(
            f"zones need at least 1 domain: {domains_per_zone}")
    env = Environment()
    streams = RandomStreams(seed)
    federation = Federation(env)
    scenario = FederationScenario(
        env=env, federation=federation, namespace=None, rls=None,
        streams=streams)

    for zone_index in range(n_zones):
        name = zone_name(zone_index)
        domains = [f"{name}-d{domain_index}"
                   for domain_index in range(domains_per_zone)]
        topology = (Topology.full_mesh(domains, latency_s=0.01,
                                       bandwidth_bps=100 * MB)
                    if len(domains) > 1 else Topology())
        dgms = DataGridManagementSystem(env, topology, name=name)
        for domain in domains:
            dgms.register_domain(domain)
            dgms.register_resource(
                f"{domain}-disk", domain,
                PhysicalStorageResource(f"{domain}-disk-1",
                                        StorageClass.DISK, 100 * GB))
        admin = dgms.register_user("admin", domains[0])
        dgms.create_collection(admin, "/data", parents=True)
        dgms.namespace.resolve("/data").acl.grant("*", Permission.WRITE)
        federation.add_zone(name, dgms)
        scenario.zones[name] = dgms
        scenario.admins[name] = admin
        scenario.paths[name] = []

    # Bridges: all-to-all, with capacity/latency varying by zone-index
    # arithmetic so cost-aware placement has real differences to rank.
    for a_index in range(n_zones):
        for b_index in range(a_index + 1, n_zones):
            federation.connect_zones(
                zone_name(a_index), zone_name(b_index),
                bandwidth_bps=(8 + 4 * ((a_index + b_index) % 3)) * MB,
                latency_s=0.1 + 0.05 * ((a_index * b_index) % 3))

    def _populate():
        for zone_index in range(n_zones):
            name = zone_name(zone_index)
            dgms = scenario.zones[name]
            admin = scenario.admins[name]
            for object_index in range(objects_per_zone):
                domain = f"{name}-d{object_index % domains_per_zone}"
                path = f"/data/obj-{object_index:04d}.dat"
                obj = yield dgms.put(
                    admin, path, object_size, f"{domain}-disk",
                    metadata={"zone": name, "index": object_index})
                obj.acl.grant("*", Permission.READ)
                scenario.paths[name].append(path)
                if replicate_within_zone and domains_per_zone > 1:
                    alternate = f"{name}-d{(object_index + 1) % domains_per_zone}"
                    yield dgms.replicate(admin, path, f"{alternate}-disk")

    env.run_process(_populate())

    # RLS after population: the attach publish covers the initial
    # objects, so staleness during a run comes only from new activity.
    scenario.rls = attach_rls(federation, n_shards=n_shards,
                              sync_period_s=sync_period_s, streams=streams)
    scenario.namespace = FederatedNamespace(federation, zone_name(0))
    return scenario

"""Zone-scoped chaos: federation-level fault schedules and invariants.

The single-grid chaos harness (:mod:`repro.workloads.chaos`) proves one
datagrid survives arbitrary seeded fault timing; this module lifts that
to the federation. The fault vocabulary gains two zone-scoped events —
:class:`~repro.faults.model.ZoneOutage` (every resource and intra-zone
link of one zone, down for a window) and
:class:`~repro.faults.model.BridgeDegradation` (an inter-zone bridge
loses bandwidth) — armed by a :class:`FederationFaultDriver` that
composes each zone's refcounted :class:`~repro.faults.model.FaultDriver`
mechanics, so zone faults and any intra-zone schedule stack and release
correctly.

:func:`run_federation_chaos` then drives a cross-zone copy workload plus
a continuous locate audit under such a schedule and checks the
federation's survival invariants:

* **no lost replicas federation-wide** — every object in every zone
  keeps at least one good replica whose allocation really exists;
* **stale but never wrong** — the RLS may *miss* a fresh replica (the
  audit counts those; they are bounded by the sync period) but every
  location it *returns* must be vouched for by the owning zone's
  authoritative catalog at answer time;
* **terminal copies** — every cross-zone copy either completed (and the
  object is really there) or failed terminally; none hang;
* **accounted faults** — every zone fault window begins, ends, and
  leaves a telemetry pair;
* **post-flush convergence** — once every digest syncer flushes, the
  RLS locates every surviving object in every zone that holds it.

Everything is seeded; a violating schedule replays from its seed.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FaultError
from repro.faults.model import (
    ZONE_EVENT_TYPES,
    BridgeDegradation,
    FaultDriver,
    FaultEvent,
    FaultSchedule,
    ZoneOutage,
)
from repro.faults.recovery import attach_recovery
from repro.federation.placement import cross_zone_copy_by_guid
from repro.federation.scenario import FederationScenario, federation_scenario
from repro.sim.rng import RandomStreams
from repro.storage import MB
from repro.telemetry.instrument import attach_telemetry
from repro.workloads.chaos import CHAOS_POLICY, _coerce_sanitizer

__all__ = [
    "FederationChaosReport",
    "FederationFaultDriver",
    "attach_federation_faults",
    "default_federation_seeds",
    "federation_fault_schedule",
    "federation_run_signature",
    "federation_canonical_signature",
    "prove_federation_order_independence",
    "run_federation_chaos",
    "run_federation_sweep",
    "sweep_fingerprint",
]

#: Stream :func:`federation_fault_schedule` draws from.
FEDERATION_SCHEDULE_STREAM = "federation/fault-schedule"

#: Stream the chaos workload's start-time stagger draws from.
WORKLOAD_STREAM = "federation/workload"

#: Zone-scoped event kinds the random schedule picks between.
FEDERATION_RANDOM_KINDS = ("zone-outage", "bridge-degradation")


def default_federation_seeds(count: int = 10) -> List[int]:
    """Seeds the federation chaos sweep runs (``FEDERATION_CHAOS_SEEDS``
    shrinks or grows it — CI smoke runs a handful, E25 at least ten)."""
    return list(range(int(os.environ.get("FEDERATION_CHAOS_SEEDS", count))))


def federation_fault_schedule(streams: RandomStreams, federation,
                              horizon: float, n_events: int = 5,
                              kinds: Sequence[str] = FEDERATION_RANDOM_KINDS
                              ) -> FaultSchedule:
    """A seeded random zone-scoped schedule against ``federation``.

    Draws only from the ``federation/fault-schedule`` substream (never
    perturbing intra-zone streams); starts land in the first three
    quarters of ``horizon``, windows last 5–20 % of it — the same
    geometry as :meth:`~repro.faults.model.FaultSchedule.random`.
    """
    if horizon <= 0:
        raise FaultError(f"horizon must be positive: {horizon}")
    if n_events < 0:
        raise FaultError(f"n_events cannot be negative: {n_events}")
    zones = federation.zones()
    if not zones:
        raise FaultError("federation has no zones to fault")
    bridges = federation.bridges()
    usable = [kind for kind in kinds
              if kind != "bridge-degradation" or bridges]
    if not usable:
        raise FaultError(f"no usable fault kinds out of {tuple(kinds)!r}")
    rng = streams.stream(FEDERATION_SCHEDULE_STREAM)
    events: List[FaultEvent] = []
    for _ in range(n_events):
        kind = rng.choice(usable)
        start = rng.uniform(0.0, 0.75 * horizon)
        duration = rng.uniform(0.05 * horizon, 0.2 * horizon)
        if kind == "zone-outage":
            events.append(ZoneOutage(start, duration, rng.choice(zones)))
        elif kind == "bridge-degradation":
            bridge = rng.choice(bridges)
            events.append(BridgeDegradation(
                start, duration, bridge.zone_a, bridge.zone_b,
                round(rng.uniform(0.1, 0.6), 3)))
        else:
            raise FaultError(f"unknown federation fault kind {kind!r}")
    return FaultSchedule(events)


class FederationFaultDriver:
    """Arms zone-scoped schedules against a federation.

    A zone outage is "hold every physical resource and every intra-zone
    link of the zone, then release them" — the holds go through one
    per-zone :class:`~repro.faults.model.FaultDriver` whose refcounted
    mechanics this driver composes, so an overlapping intra-zone
    schedule (armed on the same mechanics driver) and zone outages
    restore each resource exactly once. Bridge degradations compose
    multiplicatively on the :class:`~repro.grid.federation.Bridge`
    itself, which is what ``bridge_cost`` (and therefore cost-aware
    placement) reads.
    """

    def __init__(self, federation, schedule: FaultSchedule,
                 streams: Optional[RandomStreams] = None) -> None:
        self.federation = federation
        self.env = federation.env
        self.schedule = schedule
        self.begun = 0
        self.ended = 0
        #: (time, phase, kind, target) per transition (mirrors
        #: :attr:`FaultDriver.log`).
        self.log: List[Tuple[float, str, str, str]] = []
        self._armed = False
        # One mechanics driver per zone, sharing the run's streams so a
        # caller can arm intra-zone schedules on the same drivers.
        self.mechanics: Dict[str, FaultDriver] = {
            zone: FaultDriver(federation.zone(zone), FaultSchedule(),
                              streams)
            for zone in federation.zones()}
        # Per zone-outage (resource names, link end pairs), resolved at
        # arm time against the then-pristine topology.
        self._zone_members: Dict[ZoneOutage,
                                 Tuple[List[str],
                                       List[Tuple[str, str]]]] = {}
        self._bridges: Dict[BridgeDegradation, object] = {}

    @property
    def open_faults(self) -> int:
        """Fault windows currently open (begin seen, end not yet)."""
        return self.begun - self.ended

    def arm(self) -> "FederationFaultDriver":
        """Validate the schedule against the federation and schedule
        every begin/end as a kernel timeout. One-shot."""
        if self._armed:
            raise FaultError("federation fault driver is already armed")
        self._armed = True
        self._resolve_targets()
        now = self.env.now
        for event in self.schedule:
            begin = self.env.timeout(max(0.0, event.start - now))
            begin.callbacks.append(lambda _e, ev=event: self._begin(ev))
            end = self.env.timeout(max(0.0, event.end - now))
            end.callbacks.append(lambda _e, ev=event: self._end(ev))
        return self

    def _resolve_targets(self) -> None:
        for event in self.schedule:
            if not isinstance(event, ZONE_EVENT_TYPES):
                raise FaultError(
                    f"{event.kind} targets one datagrid, not a federation; "
                    "arm it with attach_faults on that zone's grid")
            if isinstance(event, ZoneOutage):
                if event.zone not in self.mechanics:
                    raise FaultError(
                        f"unknown zone {event.zone!r} in schedule")
                dgms = self.federation.zone(event.zone)
                names = sorted(dgms.resources.physical_names())
                pairs = [(link.a, link.b) for link in dgms.topology.links]
                self._zone_members[event] = (names, pairs)
            else:
                bridge = self.federation.bridge(event.zone_a, event.zone_b)
                if bridge is None:
                    raise FaultError(
                        f"no bridge {event.target} to degrade")
                self._bridges[event] = bridge

    # -- transitions ---------------------------------------------------------

    def _note(self, phase: str, event: FaultEvent) -> None:
        if phase == "begin":
            self.begun += 1
        else:
            self.ended += 1
        self.log.append((self.env.now, phase, event.kind, event.target))
        t = self.env.telemetry
        if t is not None:
            t.fault_events.labels(kind=event.kind, phase=phase).inc()
            t.log.emit(f"fault.{phase}", fault=event.kind,
                       target=event.target, start=event.start,
                       duration=event.duration)

    def _begin(self, event: FaultEvent) -> None:
        if isinstance(event, ZoneOutage):
            mechanics = self.mechanics[event.zone]
            names, pairs = self._zone_members[event]
            for name in names:
                mechanics.hold_storage(name)
            for a, b in pairs:
                mechanics.hold_link(a, b)
        else:
            self._bridges[event].degrade(event.factor)
        self._note("begin", event)

    def _end(self, event: FaultEvent) -> None:
        if isinstance(event, ZoneOutage):
            mechanics = self.mechanics[event.zone]
            names, pairs = self._zone_members[event]
            for name in names:
                mechanics.release_storage(name)
            for a, b in pairs:
                mechanics.release_link(a, b)
        else:
            self._bridges[event].restore(event.factor)
        self._note("end", event)


def attach_federation_faults(federation, schedule: FaultSchedule,
                             streams: Optional[RandomStreams] = None
                             ) -> FederationFaultDriver:
    """Arm a zone-scoped ``schedule``; returns the armed driver."""
    return FederationFaultDriver(federation, schedule, streams).arm()


# --------------------------------------------------------------------------
# The chaos run
# --------------------------------------------------------------------------


@dataclass
class FederationChaosReport:
    """Outcome of one federation chaos run (plain fields; pickles across
    :func:`repro.farm.run_farm` workers)."""

    seed: int
    n_zones: int
    faults: bool
    recovery: bool
    makespan: float
    faults_begun: int = 0
    faults_ended: int = 0
    copies_attempted: int = 0
    copies_completed: int = 0
    copies_failed: int = 0
    locate_audits: int = 0
    #: Audit probes where a zone held an object the RLS did not yet
    #: report — *allowed* (bounded staleness), counted to prove the
    #: eventual-consistency window is real and visible.
    stale_misses: int = 0
    #: Audit probes where the RLS reported a location the owning zone's
    #: catalog disavows — must be zero (the "never wrong" half).
    wrong_answers: int = 0
    rls_stats: Dict[str, object] = field(default_factory=dict)
    #: Zone → recovery action counts by kind.
    recovery_actions: Dict[str, Dict[str, int]] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    #: Bit-identity fingerprint (see :func:`federation_run_signature`).
    signature: Tuple = ()
    #: Schedule-sanitizer summary (only with ``sanitize=...``): plain
    #: :meth:`~repro.analysis.sanitizer.ScheduleSanitizer.to_dict`.
    sanitizer: Optional[Dict] = None
    #: Order-insensitive fingerprint (see
    #: :func:`federation_canonical_signature`); sanitized runs only.
    canonical: Tuple = ()

    @property
    def ok(self) -> bool:
        """True when every federation invariant held."""
        return not self.violations


def federation_run_signature(scenario: FederationScenario) -> Tuple:
    """A fingerprint that is bit-identical iff two runs behaved the same.

    Covers the clock, every zone's completed transfer timings and byte
    totals, the federation copy counters, and the RLS lookup counters —
    any drift in copy routing, fault timing, sync timing, or placement
    shows up here.
    """
    zones = tuple(
        (name,
         scenario.zones[name].transfers.total_bytes_moved,
         tuple((s.src, s.dst, s.nbytes, s.start_time, s.end_time)
               for s in scenario.zones[name].transfers.completed))
        for name in sorted(scenario.zones))
    rls = scenario.rls
    return (
        scenario.env.now,
        zones,
        scenario.federation.copies_completed,
        scenario.federation.copies_failed,
        (rls.lookups, rls.hits, rls.misses, rls.false_positives,
         rls.lrc_queries),
    )


def federation_canonical_signature(scenario: FederationScenario) -> Tuple:
    """Terminal-outcome fingerprint: what order-independence *means*.

    Permutation proofs diff this, not :func:`federation_run_signature`
    (which stays the exact replay pin). Covered: the makespan, every
    zone's full replica placement (path → sorted physical homes), the
    federation copy outcome counters, and the RLS lookup count.
    Deliberately *not* covered: exact per-transfer float timings, byte
    totals, and RLS hit/miss splits — retry jitter is drawn from
    shared recovery substreams in arrival order (see
    :func:`repro.workloads.chaos.canonical_signature` for the full
    rationale), and a digest flush landing on an audit probe's
    timestamp may legitimately be observed in either order (the
    invariant is "stale but never wrong", checked separately).
    """
    zones = tuple(
        (name,
         tuple(sorted(
             (obj.path,
              tuple(sorted(replica.physical_name
                           for replica in obj.good_replicas())))
             for obj in scenario.zones[name].namespace.iter_objects("/"))))
        for name in sorted(scenario.zones))
    return (
        scenario.env.now,
        zones,
        scenario.federation.copies_completed,
        scenario.federation.copies_failed,
        scenario.rls.lookups,
    )


def sweep_fingerprint(reports: Sequence[FederationChaosReport]) -> str:
    """One hex digest over a whole sweep's signatures (the E25 pin)."""
    blob = "\n".join(repr(report.signature) for report in reports)
    return hashlib.sha256(blob.encode()).hexdigest()


def _run_workload(scenario: FederationScenario, horizon: float,
                  placement_policy: str) -> Tuple[List[Dict], Dict]:
    """Cross-zone copies with staggered starts plus a rolling locate
    audit; returns (copy records, audit counters) once all complete."""
    env = scenario.env
    federation = scenario.federation
    zone_names = sorted(scenario.zones)
    n_zones = len(zone_names)
    rng = scenario.streams.stream(WORKLOAD_STREAM)
    copies: List[Dict] = []
    audits = {"checks": 0, "stale_misses": 0, "wrong": 0}

    jobs = []
    targets: List[Tuple[str, str]] = []   # (origin zone, guid) per object
    for zone_index, name in enumerate(zone_names):
        dgms = scenario.zones[name]
        for object_index, path in enumerate(scenario.paths[name]):
            guid = dgms.namespace.resolve_object(path).guid
            targets.append((name, guid))
            offset = 1 + (object_index % (n_zones - 1))
            dst = zone_names[(zone_index + offset) % n_zones]
            start = rng.uniform(0.0, 0.5 * horizon)
            jobs.append({
                "start": start, "guid": guid, "src": name, "dst": dst,
                "dst_path": f"/data/from-{name}-obj-{object_index:04d}.dat",
                "dst_resource": f"{dst}-d0-disk",
            })

    def _copy_job(job):
        yield env.timeout(job["start"])
        record = {"guid": job["guid"], "src": job["src"],
                  "dst": job["dst"], "dst_path": job["dst_path"],
                  "outcome": "", "error": ""}
        copies.append(record)
        user = scenario.admins[job["dst"]]
        try:
            yield cross_zone_copy_by_guid(
                federation, user, job["guid"], job["dst"],
                job["dst_path"], job["dst_resource"],
                policy=placement_policy)
        except Exception as exc:   # terminal failure is a valid outcome
            record["outcome"] = "failed"
            record["error"] = type(exc).__name__
        else:
            record["outcome"] = "completed"

    def _audit():
        # Two passes over every object, spread across the horizon. Each
        # probe verifies the RLS answer against the authoritative
        # catalogs *at the same instant*, so "wrong" is exact.
        probes = 2 * len(targets)
        period = horizon / max(1, probes)
        for probe_index in range(probes):
            yield env.timeout(period)
            origin, guid = targets[probe_index % len(targets)]
            result = federation.locate(guid)
            audits["checks"] += 1
            for location in result.locations:
                obj = scenario.zones[location.zone].namespace.lookup_guid(
                    guid)
                held = obj is not None and any(
                    replica.physical_name == location.physical_name
                    for replica in obj.good_replicas())
                if not held:
                    audits["wrong"] += 1
            reported = {location.zone for location in result.locations}
            actual = set()
            for zone in zone_names:
                obj = scenario.zones[zone].namespace.lookup_guid(guid)
                if obj is not None and obj.good_replicas():
                    actual.add(zone)
            if actual - reported:
                audits["stale_misses"] += 1

    def _driver():
        processes = [env.process(_copy_job(job)) for job in jobs]
        audit_process = env.process(_audit())
        for process in processes:
            yield process
        yield audit_process

    env.run_process(_driver())
    return copies, audits


def _check_federation_invariants(scenario: FederationScenario,
                                 driver: Optional[FederationFaultDriver],
                                 services: Dict[str, object],
                                 copies: List[Dict],
                                 audits: Dict) -> List[str]:
    violations: List[str] = []
    federation = scenario.federation
    telemetry = scenario.env.telemetry

    # No lost replicas, federation-wide: every zone's catalog and
    # physical allocations agree.
    for name in sorted(scenario.zones):
        dgms = scenario.zones[name]
        for obj in dgms.namespace.iter_objects("/"):
            good = obj.good_replicas()
            if not good:
                violations.append(f"{name}:{obj.path}: no good replicas "
                                  "left")
            for replica in good:
                physical = dgms.resources.physical(
                    replica.physical_name).physical
                if not physical.holds(replica.allocation_id):
                    violations.append(
                        f"{name}:{obj.path}: replica "
                        f"{replica.allocation_id} missing from "
                        f"{replica.physical_name}")

    # Stale but never wrong: the audit may count misses (bounded
    # staleness) but must never have caught an unvouched location.
    if audits["wrong"]:
        violations.append(
            f"RLS returned {audits['wrong']} location answers the owning "
            "zone disavowed")

    # Terminal copies: every cross-zone copy completed or failed — and a
    # completed copy's object really exists at the destination.
    for record in copies:
        label = f"copy {record['guid'][:8]}→{record['dst']}"
        if record["outcome"] not in ("completed", "failed"):
            violations.append(f"{label}: never reached a terminal outcome")
            continue
        if record["outcome"] != "completed":
            continue
        dst = scenario.zones[record["dst"]]
        if not dst.namespace.exists(record["dst_path"]):
            violations.append(
                f"{label}: reported completed but {record['dst_path']} "
                "does not exist")
            continue
        obj = dst.namespace.resolve_object(record["dst_path"])
        if not obj.good_replicas():
            violations.append(
                f"{label}: completed but has no good replica")

    # Accounted faults: every window opened, closed, and (with telemetry
    # attached) left a begin/end record pair.
    if driver is not None:
        if driver.begun != len(driver.schedule):
            violations.append(
                f"{driver.begun}/{len(driver.schedule)} zone fault "
                "windows began")
        if driver.ended != driver.begun:
            violations.append(
                f"{driver.ended}/{driver.begun} zone fault windows ended")
        if telemetry is not None:
            begins = len(telemetry.log.of_kind("fault.begin"))
            ends = len(telemetry.log.of_kind("fault.end"))
            if begins != driver.begun or ends != driver.ended:
                violations.append(
                    f"telemetry saw {begins} begins/{ends} ends for "
                    f"{driver.begun}/{driver.ended} fault transitions")

    # Recovery actions mirrored into telemetry (all zones share the log).
    if services and telemetry is not None:
        kinds = set()
        for service in services.values():
            kinds.update(service.counts)
        logged = sum(len(telemetry.log.of_kind(f"recovery.{kind}"))
                     for kind in kinds)
        total = sum(service.total_actions for service in services.values())
        if logged != total:
            violations.append(
                f"telemetry logged {logged} of {total} recovery actions")

    # Post-flush convergence: with every digest published, the RLS must
    # locate every surviving object in every zone that holds it.
    for name in sorted(scenario.zones):
        dgms = scenario.zones[name]
        for obj in dgms.namespace.iter_objects("/"):
            if not obj.good_replicas():
                continue   # already flagged as lost above
            result = federation.locate(obj.guid)
            if name not in {loc.zone for loc in result.locations}:
                violations.append(
                    f"post-flush locate misses {name}:{obj.path}")
    return violations


def run_federation_chaos(seed: int, faults: bool = True,
                         recovery: bool = True, n_zones: int = 3,
                         domains_per_zone: int = 2,
                         objects_per_zone: int = 3,
                         object_size: float = 8 * MB,
                         horizon: float = 60.0, n_fault_events: int = 5,
                         sync_period_s: float = 4.0,
                         schedule: Optional[FaultSchedule] = None,
                         placement_policy: str = "bridge-cost-aware",
                         sanitize=None) -> FederationChaosReport:
    """One federation chaos run: cross-zone copies and a locate audit
    under a seeded zone-scoped fault schedule.

    ``faults=False`` runs the identical workload with no schedule (the
    bit-identity baseline); ``recovery=False`` leaves every zone
    fail-fast. Pass ``schedule`` to replay a known schedule instead of
    drawing one from the seed. ``sanitize`` attaches the schedule
    sanitizer exactly as in :func:`repro.workloads.chaos.run_chaos` —
    with permutation off the dispatch order (and therefore the pinned
    :func:`federation_run_signature`) is untouched.
    """
    scenario = federation_scenario(
        n_zones=n_zones, domains_per_zone=domains_per_zone,
        objects_per_zone=objects_per_zone, object_size=object_size,
        seed=seed, sync_period_s=sync_period_s)
    attach_telemetry(scenario.env)
    sanitizer = _coerce_sanitizer(sanitize)
    if sanitizer is not None:
        sanitizer.attach(scenario.env)
        # Before recovery/fault attachment: spawn() children (the
        # per-zone recovery families) and later-pulled substreams
        # (workload stagger, fault schedule) inherit draw tracking.
        sanitizer.track_streams(scenario.streams)
        for name in sorted(scenario.zones):
            dgms = scenario.zones[name]
            sanitizer.track_object(f"{name}.transfers", dgms.transfers)
            sanitizer.track_object(f"{name}.namespace", dgms.namespace)
        sanitizer.track_object("rls", scenario.rls)
        sanitizer.track_object("federation", scenario.federation)
    services: Dict[str, object] = {}
    if recovery:
        for zone in sorted(scenario.zones):
            services[zone] = attach_recovery(
                scenario.zones[zone],
                scenario.streams.spawn(f"recovery/{zone}"),
                policy=CHAOS_POLICY)
    driver = None
    if faults:
        if schedule is None:
            schedule = federation_fault_schedule(
                scenario.streams, scenario.federation, horizon,
                n_events=n_fault_events)
        driver = attach_federation_faults(scenario.federation, schedule,
                                          scenario.streams)
    copies, audits = _run_workload(scenario, horizon, placement_policy)
    makespan = scenario.env.now
    # Drain fault windows still open past the workload's end, then flush
    # every syncer so the convergence invariant sees current digests.
    scenario.env.run()
    scenario.rls.flush_all()
    report = FederationChaosReport(
        seed=seed, n_zones=n_zones, faults=faults, recovery=recovery,
        makespan=makespan,
        faults_begun=driver.begun if driver else 0,
        faults_ended=driver.ended if driver else 0,
        copies_attempted=len(copies),
        copies_completed=scenario.federation.copies_completed,
        copies_failed=scenario.federation.copies_failed,
        locate_audits=audits["checks"],
        stale_misses=audits["stale_misses"],
        wrong_answers=audits["wrong"],
        rls_stats=scenario.rls.stats(),
        recovery_actions={
            zone: dict(service.counts)
            for zone, service in sorted(services.items())},
        signature=federation_run_signature(scenario),
    )
    report.violations = _check_federation_invariants(
        scenario, driver, services, copies, audits)
    if sanitizer is not None:
        sanitizer.detach()
        report.sanitizer = sanitizer.to_dict()
        # A permuted schedule that breaks a survival invariant must
        # refute the proof even if the terminal placement matches.
        report.canonical = (federation_canonical_signature(scenario)
                            + (tuple(report.violations),))
    return report


def prove_federation_order_independence(seed: int, *,
                                        order: str = "reverse",
                                        permute_seed: int = 0,
                                        max_runs: int = 40, **kwargs):
    """Prove (or refute with a minimized witness) that the federation
    chaos run for ``seed`` is independent of legal same-timestamp
    dispatch order — the zone-scoped counterpart of
    :func:`repro.workloads.chaos.prove_chaos_order_independence`.
    """
    from repro.analysis.sanitizer import (
        ScheduleSanitizer,
        prove_order_independence,
    )

    def _run(config):
        sanitizer = ScheduleSanitizer(config)
        report = run_federation_chaos(seed, sanitize=sanitizer, **kwargs)
        return report.canonical, sanitizer

    return prove_order_independence(_run, order=order,
                                    permute_seed=permute_seed,
                                    max_runs=max_runs)


def run_federation_sweep(seeds: Optional[List[int]] = None,
                         jobs: Optional[int] = None,
                         **kwargs) -> List[FederationChaosReport]:
    """:func:`run_federation_chaos` for every seed, farmed across cores.

    Each seed's run is fully determined by the seed and shares nothing
    with other seeds; reports come back in seed order, byte-identical to
    the serial loop (``jobs=1``).
    """
    from repro.farm import run_farm

    if seeds is None:
        seeds = default_federation_seeds()
    return run_farm(run_federation_chaos, seeds, jobs=jobs, kwargs=kwargs)

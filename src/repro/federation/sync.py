"""Eventually-consistent digest propagation between the RLS tiers.

A zone's Local Replica Catalog changes the moment its namespace does;
the sharded index only learns about it when the zone *republishes* the
affected shard digests. Real federations batch that publication — the
EU DataGrid RLI accepted soft-state updates on a period — and this
module models exactly that as seeded sim-time machinery:

* every LRC membership change marks the guid's shard **dirty** on the
  zone's :class:`DigestSyncer`;
* the first dirty mark schedules one flush a jittered period later
  (drawn from the zone's own ``federation/sync/<zone>`` substream, so
  sync timing never perturbs any other stochastic component);
* the flush republishes every dirty shard at once and the cycle re-arms
  on the next change.

Staleness is therefore **bounded**: an index answer can lag the
authoritative catalogs by at most ``period_s * (1 + jitter)`` sim
seconds (:attr:`DigestSyncer.staleness_bound_s`), and because flushes
ride kernel timeouts the bound is exact, visible, and testable in sim
time — advance the clock past the bound and a fresh replica becomes
locatable. Idle zones schedule nothing, so a drained simulation
(``env.run()``) terminates: the syncer is event-driven, not a free-
running heartbeat.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.rng import RandomStreams

__all__ = ["DigestSyncer", "SYNC_STREAM_PREFIX"]

#: Per-zone substream prefix sync jitter draws from.
SYNC_STREAM_PREFIX = "federation/sync/"


class DigestSyncer:
    """Bounded-staleness digest publication for one zone."""

    def __init__(self, env, service, lrc, period_s: float = 5.0,
                 jitter: float = 0.2,
                 streams: Optional[RandomStreams] = None) -> None:
        if period_s <= 0:
            raise ValueError(f"sync period must be positive: {period_s}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.env = env
        self.service = service
        self.lrc = lrc
        self.period_s = float(period_s)
        self.jitter = float(jitter)
        streams = streams if streams is not None else RandomStreams(0)
        self.rng = streams.stream(SYNC_STREAM_PREFIX + lrc.zone_name)
        # Dirty shard indexes (dict-as-ordered-set; sorted at flush).
        self._dirty: Dict[int, None] = {}
        self._flush_armed = False
        #: Flush/publication counters for reports and tests.
        self.flushes = 0
        self.shards_published = 0
        lrc.listeners.append(self._on_change)

    @property
    def staleness_bound_s(self) -> float:
        """Worst-case lag between a catalog change and its digest."""
        return self.period_s * (1.0 + self.jitter)

    @property
    def pending_shards(self) -> List[int]:
        """Shards dirty but not yet republished, sorted."""
        return sorted(self._dirty)

    # -- the dirty feed -------------------------------------------------------

    def _on_change(self, guid: str) -> None:
        self._dirty[self.service.index.shard_of(guid)] = None
        if self._flush_armed:
            return   # changes join the already-scheduled batch
        self._flush_armed = True
        delay = self.period_s
        if self.jitter > 0.0:
            delay *= 1.0 + self.rng.uniform(-self.jitter, self.jitter)
        timeout = self.env.timeout(delay)
        timeout.callbacks.append(self._flush)

    def _flush(self, _event) -> None:
        self._flush_armed = False
        self._publish_dirty()

    def _publish_dirty(self) -> None:
        shards = sorted(self._dirty)
        self._dirty.clear()
        if not shards:
            return
        self.service.publish_shards(self.lrc.zone_name, shards)
        self.flushes += 1
        self.shards_published += len(shards)

    def flush_now(self) -> None:
        """Publish every pending dirty shard immediately.

        Convergence helper for end-of-run invariant checks: after all
        syncers flush, every index answer is current. A still-armed
        timer fires later on an empty dirty set and publishes nothing.
        """
        self._publish_dirty()

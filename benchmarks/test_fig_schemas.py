"""F1–F4: regenerate the paper's four schema figures.

The paper's only figures are structural: the Flow (Fig. 1), the
DataGridRequest (Fig. 2), the flowLogic schema (Fig. 3), and the
DataGridResponse (Fig. 4). We regenerate each as a text tree introspected
from the implementation's dataclasses (``repro.dgl.schema.structure_of``)
and check that every element the paper's figures show is present with the
right multiplicity/alternation.
"""

from repro.dgl import (
    DataGridRequest,
    DataGridResponse,
    Flow,
    FlowLogic,
    structure_of,
)


def test_f1_flow_structure(benchmark, experiment):
    text = benchmark(structure_of, Flow)
    report = experiment(
        "F1", "Structure of a Flow (paper Fig. 1)",
        header=["element", "present"],
        expectation="Flow = variables* + flowLogic + children (sub-flows "
                    "or steps)")
    checks = {
        "variables section": "variables: Variable*" in text,
        "flowLogic section": "logic: FlowLogic" in text,
        "children (Flow | Step)*": "children: Flow | Step*" in text,
        "recursion (Flow in Flow)": "…recursive" in structure_of(Flow, 5),
    }
    for element, present in checks.items():
        report.row(element, "yes" if present else "MISSING")
    report.conclusion = ("matches Fig. 1" if all(checks.values())
                         else "STRUCTURE DRIFT")
    assert all(checks.values()), text


def test_f2_request_structure(benchmark, experiment):
    text = benchmark(structure_of, DataGridRequest)
    report = experiment(
        "F2", "Structure of a DataGridRequest (paper Fig. 2)",
        header=["element", "present"],
        expectation="request = document metadata + grid user + virtual "
                    "organization + (Flow | FlowStatusQuery)")
    checks = {
        "grid user": "user: str" in text,
        "virtual organization": "virtual_organization: str" in text,
        "body choice Flow | FlowStatusQuery":
            "body: Flow | FlowStatusQuery" in text,
        "document metadata": "metadata: DocumentMetadata" in text,
    }
    for element, present in checks.items():
        report.row(element, "yes" if present else "MISSING")
    report.conclusion = ("matches Fig. 2" if all(checks.values())
                         else "STRUCTURE DRIFT")
    assert all(checks.values()), text


def test_f3_flowlogic_structure(benchmark, experiment):
    text = benchmark(structure_of, FlowLogic)
    report = experiment(
        "F3", "flowLogic schema (paper Fig. 3)",
        header=["element", "present"],
        expectation="flowLogic = one control-structure choice + "
                    "userDefined rules")
    checks = {
        "control-pattern choice":
            ("pattern: Sequential | Parallel | WhileLoop | Repeat | "
             "ForEach | SwitchCase") in text,
        "user-defined rules": "rules: UserDefinedRule*" in text,
        "rule = condition + actions":
            "condition: str" in text and "actions: Action*" in text,
    }
    for element, present in checks.items():
        report.row(element, "yes" if present else "MISSING")
    report.conclusion = ("matches Fig. 3" if all(checks.values())
                         else "STRUCTURE DRIFT")
    assert all(checks.values()), text


def test_f4_response_structure(benchmark, experiment):
    text = benchmark(structure_of, DataGridResponse)
    report = experiment(
        "F4", "Structure of a DataGridResponse (paper Fig. 4)",
        header=["element", "present"],
        expectation="response = (FlowStatus | RequestAcknowledgement); "
                    "acks carry id + initial status + validity")
    checks = {
        "body choice FlowStatus | RequestAcknowledgement":
            "body: FlowStatus | RequestAcknowledgement" in text,
        "ack request id": "request_id: str" in text,
        "ack validity": "valid: bool" in text,
        "recursive status tree": "children: FlowStatus*" in text,
    }
    for element, present in checks.items():
        report.row(element, "yes" if present else "MISSING")
    report.conclusion = ("matches Fig. 4" if all(checks.values())
                         else "STRUCTURE DRIFT")
    assert all(checks.values()), text

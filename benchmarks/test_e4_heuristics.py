"""E4: scheduling heuristics vs uninformed baselines (§2.3).

The paper's scheduler picks locations by a heuristic cost over "the amount
of data moved, the number of CPU cycles that would be left idle, the clock
time … the bandwidth utilized". Two comparisons:

* **static plans** — min-min / max-min / greedy against random and
  round-robin on a heterogeneous 4-domain grid with data-gravity tasks
  (estimated makespan and WAN bytes);
* **live execution** — the same task bag actually run through the DfMS
  under greedy / round-robin / random late binding (real virtual
  makespan and real WAN bytes).

Shape: informed heuristics beat the uninformed baselines on both makespan
and data moved; min-min is strong on the short-task-heavy mix.
"""

from _helpers import BenchGrid
from repro.dfms.scheduler import CostModel, TaskSpec, schedule_tasks
from repro.dgl import flow_builder
from repro.sim import RandomStreams
from repro.storage import MB

N_TASKS = 24


def build_grid(policy="greedy"):
    streams = RandomStreams(7) if policy == "random" else None
    grid = BenchGrid(n_domains=4, cores_per_domain=2, heterogeneous=True,
                     placement_policy=policy, placement_streams=streams)
    # Input data lives at d0: tasks that read it have data gravity there.
    paths = grid.populate(8, size=200 * MB)
    return grid, paths


def make_tasks(paths):
    """A mix: 16 short CPU tasks + 8 long data-heavy tasks reading d0."""
    tasks = []
    for index in range(16):
        tasks.append(TaskSpec(name=f"short-{index:02d}", duration=20.0))
    for index in range(8):
        tasks.append(TaskSpec(name=f"data-{index:02d}", duration=200.0,
                              input_paths=(paths[index],)))
    return tasks


def flow_for(tasks):
    builder = flow_builder("mix").parallel()
    for task in tasks:
        params = {"duration": task.duration}
        if task.input_paths:
            params["inputs"] = ",".join(task.input_paths)
        builder.step(task.name, "exec", **params)
    return builder.build()


def run_live(policy: str):
    grid, paths = build_grid(policy)
    grid.dgms.transfers.total_bytes_moved = 0.0    # ignore population
    grid.submit_sync(flow_for(make_tasks(paths)))
    return grid.env.now, grid.dgms.transfers.total_bytes_moved


def test_e4_heuristics(benchmark, experiment):
    static = experiment(
        "E4a", "Static plans: estimated makespan / WAN bytes",
        header=["policy", "est_makespan_s", "est_wan_MB"],
        expectation="informed (greedy/min-min/max-min) beat "
                    "random/round-robin")
    grid, paths = build_grid()
    tasks = make_tasks(paths)
    cost_model = CostModel(grid.dgms)
    rng = RandomStreams(7).stream("static")
    estimates = {}
    for policy in ("random", "round_robin", "greedy", "min_min", "max_min",
                   "sufferage"):
        plan = schedule_tasks(tasks, grid.computes, cost_model,
                              policy=policy, rng=rng)
        estimates[policy] = (plan.makespan,
                             plan.estimated_bytes_moved(cost_model))
        static.row(policy, plan.makespan,
                   plan.estimated_bytes_moved(cost_model) / MB)
    informed_best = min(estimates[p][0] for p in ("greedy", "min_min",
                                                  "max_min", "sufferage"))
    uninformed_best = min(estimates[p][0] for p in ("random", "round_robin"))
    static.conclusion = (f"best informed {informed_best:.0f}s vs best "
                         f"uninformed {uninformed_best:.0f}s")
    assert informed_best <= uninformed_best

    live = experiment(
        "E4b", "Live execution under late binding",
        header=["policy", "virtual_makespan_s", "wan_MB"],
        expectation="greedy late binding beats round-robin and random "
                    "on the real run too")
    results = {}
    for policy in ("greedy", "round_robin", "random"):
        makespan, moved = run_live(policy)
        results[policy] = (makespan, moved)
        live.row(policy, makespan, moved / MB)
    live.conclusion = (
        f"greedy wins makespan ({results['greedy'][0]:.0f}s); it trades "
        "extra WAN bytes to reach the fast CPUs — the cost model's "
        "data-vs-compute tradeoff working as §2.3 describes")
    assert results["greedy"][0] <= results["round_robin"][0]
    assert results["greedy"][0] <= results["random"][0]

    benchmark.pedantic(run_live, args=("greedy",), rounds=3, iterations=1)
    benchmark.extra_info["live"] = {
        policy: {"makespan_s": round(m, 1), "wan_mb": round(b / MB, 1)}
        for policy, (m, b) in results.items()}

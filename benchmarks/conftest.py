"""Benchmark-suite plumbing.

Each benchmark regenerates one experiment from EXPERIMENTS.md and records
its result rows through the ``experiment`` fixture. The rows are printed
in the terminal summary (so they survive pytest's output capture) and
attached to the pytest-benchmark report via ``extra_info``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import pytest

_REPORTS: List["ExperimentReport"] = []


@dataclass
class ExperimentReport:
    """Result rows for one experiment."""

    exp_id: str
    title: str
    header: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    expectation: Optional[str] = None
    conclusion: Optional[str] = None

    def row(self, *values) -> None:
        self.rows.append(values)

    def render(self) -> List[str]:
        lines = [f"[{self.exp_id}] {self.title}"]
        if self.expectation:
            lines.append(f"  expectation: {self.expectation}")
        widths = [max(len(str(header_cell)),
                      *(len(_fmt(row[i])) for row in self.rows))
                  if self.rows else len(str(header_cell))
                  for i, header_cell in enumerate(self.header)]
        lines.append("  " + "  ".join(
            str(h).ljust(w) for h, w in zip(self.header, widths)))
        for row in self.rows:
            lines.append("  " + "  ".join(
                _fmt(cell).ljust(w) for cell, w in zip(row, widths)))
        if self.conclusion:
            lines.append(f"  => {self.conclusion}")
        return lines


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


@pytest.fixture
def experiment():
    """Create (and auto-register) an :class:`ExperimentReport`."""

    def _make(exp_id: str, title: str, header: Sequence[str],
              expectation: Optional[str] = None) -> ExperimentReport:
        report = ExperimentReport(exp_id=exp_id, title=title, header=header,
                                  expectation=expectation)
        _REPORTS.append(report)
        return report

    return _make


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_sep("=", "experiment results (paper-shape checks)")
    for report in _REPORTS:
        for line in report.render():
            terminalreporter.write_line(line)
        terminalreporter.write_line("")

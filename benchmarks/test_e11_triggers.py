"""E11: trigger matching throughput + the ordering anomaly (§2.2).

Two measurements:

* **throughput** — events delivered per second of wall time as the number
  of registered triggers grows (10 → 1000). Matching is a linear scan per
  event; the shape to verify is graceful (linear) degradation.
* **ordering anomaly** — §2.2's open issue: "different results might be
  produced based on the order in which triggers defined by multiple users
  are processed for the same event". Two triggers write the same
  attribute; we measure how often the final value differs across
  ordering strategies. The anomaly is REAL (rate 1.0), matching the
  paper's warning — a DfMS must pick and document an ordering.
"""

import time

from _helpers import BenchGrid
from repro.dgl import Operation, flow_builder
from repro.grid import EventKind
from repro.triggers import DatagridTrigger, TriggerManager
from repro.storage import MB

TRIGGER_COUNTS = (10, 100, 1000)
N_EVENTS = 200


def run_throughput(n_triggers: int) -> float:
    grid = BenchGrid(n_domains=1)
    manager = TriggerManager(grid.dgms, server=None)
    for index in range(n_triggers):
        manager.register(DatagridTrigger(
            name=f"t{index:04d}", owner=grid.admin,
            kinds=frozenset({EventKind.METADATA}),
            path_pattern=f"*-{index % 50:02d}.dat",
            condition="value == 'hot'",
            action=Operation("dgl.noop")))
    paths = grid.populate(50, size=MB)
    started = time.perf_counter()

    def storm():
        for event_index in range(N_EVENTS):
            grid.dgms.set_metadata(grid.admin,
                                   paths[event_index % len(paths)],
                                   "value", "hot")
            yield grid.env.timeout(0.0)

    grid.run(storm())
    wall = time.perf_counter() - started
    assert manager.events_seen >= N_EVENTS
    return N_EVENTS / wall


def anomaly_rate() -> float:
    """Fraction of ordering-strategy pairs that disagree on final state."""
    outcomes = {}
    for ordering in ("registration", "priority", "owner"):
        grid = BenchGrid(n_domains=1)
        manager = TriggerManager(grid.dgms, grid.server, ordering=ordering)
        manager.register(DatagridTrigger(
            name="zz-first-registered", owner=grid.admin,
            kinds=frozenset({EventKind.INSERT}), priority=1,
            action=(flow_builder("a").step(
                "s", "srb.set_metadata", path="${event_path}",
                attribute="tag", value="from-zz").build())))
        manager.register(DatagridTrigger(
            name="aa-second-registered", owner=grid.admin,
            kinds=frozenset({EventKind.INSERT}), priority=9,
            action=(flow_builder("b").step(
                "s", "srb.set_metadata", path="${event_path}",
                attribute="tag", value="from-aa").build())))
        grid.populate(1, prefix="contested")
        grid.env.run()
        obj = next(iter(grid.dgms.namespace.iter_objects("/data")))
        outcomes[ordering] = obj.metadata.get("tag")
    distinct = len(set(outcomes.values()))
    pairs = 3
    disagreements = pairs - sum(
        1 for a, b in (("registration", "priority"),
                       ("registration", "owner"),
                       ("priority", "owner"))
        if outcomes[a] == outcomes[b])
    return disagreements / pairs, outcomes


def test_e11_triggers(benchmark, experiment):
    throughput = experiment(
        "E11a", "Trigger matching throughput",
        header=["registered_triggers", "events_per_sec_wall"],
        expectation="linear degradation with trigger count (scan cost)")
    rates = {}
    for count in TRIGGER_COUNTS:
        rates[count] = run_throughput(count)
        throughput.row(count, round(rates[count]))
    # 100x more triggers must not cost more than ~200x the time.
    assert rates[TRIGGER_COUNTS[-1]] > rates[TRIGGER_COUNTS[0]] / 200
    throughput.conclusion = "scan-cost scaling, no cliff"

    anomaly = experiment(
        "E11b", "Multi-user trigger ordering anomaly",
        header=["ordering", "final_tag"],
        expectation="different orderings yield different final state "
                    "(the paper's open issue, reproduced)")
    rate, outcomes = anomaly_rate()
    for ordering, tag in outcomes.items():
        anomaly.row(ordering, tag)
    assert rate > 0.0
    anomaly.conclusion = (f"disagreement rate {rate:.2f}: ordering "
                          "strategy is semantically load-bearing")

    benchmark.pedantic(run_throughput, args=(TRIGGER_COUNTS[1],),
                       rounds=3, iterations=1)
    benchmark.extra_info["events_per_sec"] = {
        str(count): round(rate) for count, rate in rates.items()}

"""E12: provenance query latency vs history size (§2.1, §3.1).

"Provenance information of all the processes managed at any time even
(years) after the execution." The store accumulates histories of 1k → 100k
records (years of virtual operations); we measure the per-subject audit
query (indexed) against a full filtered scan. Shape: the indexed audit
stays effectively flat while the scan grows linearly — audits stay cheap
no matter how old the grid gets.
"""

import time

from _helpers import BenchGrid  # noqa: F401  (sys.path side effect only)
from repro.provenance import ProvenanceRecord, ProvenanceStore

HISTORY_SIZES = (1_000, 10_000, 100_000)
N_SUBJECTS = 500
QUERIES = 200


def build_store(n_records: int) -> ProvenanceStore:
    store = ProvenanceStore()
    operations = ("put", "replicate", "migrate", "checksum", "delete")
    for index in range(n_records):
        store.append(ProvenanceRecord(
            category="dgms",
            operation=operations[index % len(operations)],
            subject=f"/archive/obj-{index % N_SUBJECTS:05d}.dat",
            time=float(index * 3600),     # one op per virtual hour
            actor="archivist@ral"))
    return store


def time_audit(store: ProvenanceStore) -> float:
    started = time.perf_counter()
    for index in range(QUERIES):
        trail = store.for_subject(f"/archive/obj-{index % N_SUBJECTS:05d}.dat")
        assert trail
    return (time.perf_counter() - started) / QUERIES * 1e6


def time_scan(store: ProvenanceStore) -> float:
    started = time.perf_counter()
    results = store.query(operation="migrate")
    assert results
    return (time.perf_counter() - started) * 1e6


def test_e12_provenance(benchmark, experiment):
    report = experiment(
        "E12", "Provenance query latency vs history size",
        header=["records", "virtual_years", "audit_us", "full_scan_us"],
        expectation="indexed per-object audits stay flat; full scans "
                    "grow linearly")
    audits = {}
    for size in HISTORY_SIZES:
        store = build_store(size)
        audits[size] = time_audit(store)
        report.row(size, round(size * 3600 / (365 * 86400), 1),
                   audits[size], time_scan(store))

    # 100x more history must not make audits more than ~10x slower.
    assert audits[HISTORY_SIZES[-1]] < audits[HISTORY_SIZES[0]] * 10 + 50
    report.conclusion = ("audits are O(history-per-object): 'years later' "
                         "queries stay interactive")

    store = build_store(HISTORY_SIZES[1])
    benchmark(time_audit, store)
    benchmark.extra_info["audit_us"] = {
        str(size): round(value, 1) for size, value in audits.items()}

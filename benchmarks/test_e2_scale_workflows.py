"""E2: server scalability in concurrent workflows (§3.1 "Scalability").

"… number of workflows that can be processed." W flows are submitted
asynchronously to one DfMS server; every submission is acknowledged at
virtual time zero (acks never wait on execution), and the server drains
all W concurrently. Shapes: ack latency stays zero as W grows; wall-clock
cost per workflow stays roughly flat; virtual completion time is that of
one flow (they all overlap).
"""

import time

from _helpers import BenchGrid
from repro.workloads import sleep_bag_flow

COUNTS = (1, 10, 100)
STEPS_PER_FLOW = 5
STEP_SECONDS = 10.0


def run_batch(n_workflows: int):
    grid = BenchGrid(n_domains=1)
    started = time.perf_counter()
    acks = []
    for index in range(n_workflows):
        flow = sleep_bag_flow(f"wf-{index}", STEPS_PER_FLOW, STEP_SECONDS)
        acks.append(grid.server.submit(grid.request(flow,
                                                    asynchronous=True)))
    ack_virtual_time = grid.env.now        # all acks already returned
    grid.env.run()                         # drain every flow
    wall = time.perf_counter() - started
    assert all(a.body.valid for a in acks)
    assert grid.server.running_count == 0
    return wall, ack_virtual_time, grid.env.now


def test_e2_scale_workflows(benchmark, experiment):
    report = experiment(
        "E2", "Concurrent workflows per server",
        header=["workflows", "wall_s", "ms_per_wf", "ack_at_virtual_s",
                "virtual_makespan_s"],
        expectation="acks at t=0 regardless of W; flows overlap (virtual "
                    "makespan equals one flow); wall cost per flow flat")
    per_wf = {}
    for count in COUNTS:
        wall, ack_time, makespan = run_batch(count)
        per_wf[count] = wall / count * 1e3
        report.row(count, wall, per_wf[count], ack_time, makespan)
        assert ack_time == 0.0
        assert makespan == STEPS_PER_FLOW * STEP_SECONDS

    benchmark.pedantic(run_batch, args=(COUNTS[-1],), rounds=3,
                       iterations=1)
    benchmark.extra_info["ms_per_workflow"] = {
        str(count): round(value, 2) for count, value in per_wf.items()}
    report.conclusion = ("acknowledgements are immediate and execution "
                         "overlaps fully")
    assert per_wf[COUNTS[-1]] < per_wf[COUNTS[0]] * 5

"""E5: late vs early binding under infrastructure churn (§2.3).

"This late binding allows execution of each iteration at a different
location based on the infrastructure availability just before the tasks
are executed." The baseline pins every exec step up front (early binding,
via the rewriter); the DfMS default binds at the instant each iteration
runs.

Scenario: a 24-iteration loop of compute tasks on a 3-domain grid; midway
through, one compute resource goes offline (churn). Shapes:

* zero churn — both bindings complete, comparable makespans;
* churn — late binding routes around the loss and completes; the
  early-bound document fails the moment its pinned resource is gone.
"""

from _helpers import BenchGrid
from repro.dfms.scheduler import bind_flow_early, pinned_steps
from repro.dgl import ExecutionState, flow_builder

ITERATIONS = 24
TASK_SECONDS = 60.0
CHURN_AT = 300.0


def loop_flow():
    items = "[" + ", ".join(str(i) for i in range(ITERATIONS)) + "]"
    return (flow_builder("campaign")
            .for_each("i", items=items)
            .step("work", "exec", duration=TASK_SECONDS)
            .build())


def run(binding: str, churn: bool):
    grid = BenchGrid(n_domains=3, cores_per_domain=2)
    flow = loop_flow()
    if binding == "early":
        flow = bind_flow_early(flow, "bench", grid.server.placer)
        assert pinned_steps(flow)
    if churn:
        def kill_one():
            yield grid.env.timeout(CHURN_AT)
            grid.computes[0].online = False

        grid.env.process(kill_one())

    def go():
        response = yield grid.env.process(
            grid.server.submit_sync(grid.request(flow)))
        return response

    response = grid.run(go())
    status = response.body
    failed_steps = 1 if status.state is ExecutionState.FAILED else 0
    return status.state, grid.env.now, status.iterations, failed_steps


def test_e5_late_binding(benchmark, experiment):
    report = experiment(
        "E5", "Late vs early binding under churn",
        header=["binding", "churn", "outcome", "virtual_s",
                "iterations_done"],
        expectation="equal without churn; with churn late binding "
                    "completes, early binding fails at its dead pin")
    results = {}
    for binding in ("late", "early"):
        for churn in (False, True):
            state, elapsed, iterations, _ = run(binding, churn)
            results[(binding, churn)] = (state, elapsed, iterations)
            report.row(binding, "yes" if churn else "no", state.value,
                       elapsed, iterations)

    # No churn: both complete, same order of magnitude.
    assert results[("late", False)][0] is ExecutionState.COMPLETED
    assert results[("early", False)][0] is ExecutionState.COMPLETED
    # Churn: late binding completes; early binding fails partway.
    assert results[("late", True)][0] is ExecutionState.COMPLETED
    assert results[("early", True)][0] is ExecutionState.FAILED
    assert results[("early", True)][2] < ITERATIONS
    report.conclusion = ("late binding survives churn that kills the "
                         "early-bound plan")

    benchmark.pedantic(run, args=("late", True), rounds=3, iterations=1)
    benchmark.extra_info["late_churn_makespan_s"] = results[("late",
                                                             True)][1]

"""A3 (ablation / §5 future work): ILM policy strategies for enterprises.

"Distributed data scheduling for datagrid ILM policy strategies for
enterprises" is on the paper's research agenda (§5). This ablation runs
the imploding-star policy with different trim aggressiveness over a
13-week lifecycle and measures the enterprise tradeoff §2.1 frames —
"data can either be deleted or migrated to less expensive storage":

* **retention cost** — integrated storage cost (disk is 20x tape per
  GB-month in the models);
* **access latency** — time to re-read an object at a hospital after the
  lifecycle ran (tape reads pay the mount penalty).

Shape: aggressive trimming cuts cost and raises access latency; lazy
trimming is the mirror image; there is no free lunch, which is exactly why
policy (not code) must own the knob.
"""

from _helpers import BenchGrid  # noqa: F401  (sys.path side effect only)
from repro.ilm import ILMManager, imploding_star_policy
from repro.sim import SECONDS_PER_DAY
from repro.workloads import bbsrc_scenario

DAY = SECONDS_PER_DAY
WEEKS = 13

#: trim_below_value thresholds: 0.95 trims after ~days; 0.1 ~ never
#: within the horizon (half-life 30 days).
STRATEGIES = {
    "aggressive": 0.95,
    "balanced": 0.5,
    "lazy": 0.1,
}


def run_strategy(trim_below: float):
    scenario = bbsrc_scenario(n_hospitals=2, files_per_hospital=4)
    policy = imploding_star_policy(
        name="pull", collection="/bbsrc", archiver_domain="ral",
        archive_resource="ral-tape", trim_below_value=trim_below)
    manager = ILMManager(scenario.server)
    manager.add_policy(policy)
    archivist = scenario.users["archivist"]

    cost = 0.0

    def lifecycle():
        nonlocal cost
        for _ in range(WEEKS):
            yield from manager.run_pass_sync("pull", archivist)
            # Integrate retention cost over the waiting week.
            week = 7 * DAY
            for registered_name in scenario.dgms.resources.physical_names():
                physical = scenario.dgms.resources.physical(
                    registered_name).physical
                cost += physical.retention_cost(week)
            yield scenario.env.timeout(week)

    scenario.run(lifecycle())

    # Re-access: a hospital clinician reads their own objects back.
    hospital = scenario.extras["hospitals"][0]
    clinician = scenario.users[hospital]
    paths = [obj.path for obj in
             scenario.dgms.namespace.iter_objects(f"/bbsrc/{hospital}")]
    start = scenario.env.now

    def reread():
        for path in paths:
            yield scenario.dgms.get(clinician, path, to_domain=hospital)

    scenario.run(reread())
    access_latency = (scenario.env.now - start) / len(paths)
    trimmed = sum(
        1 for obj in scenario.dgms.namespace.iter_objects("/bbsrc")
        if len(obj.good_replicas()) == 1)
    return cost, access_latency, trimmed


def test_a3_ilm_strategies(benchmark, experiment):
    report = experiment(
        "A3", "ILM strategy knob: retention cost vs access latency",
        header=["strategy", "trim_below", "retention_cost",
                "reread_latency_s", "objects_trimmed"],
        expectation="aggressive trimming cuts storage cost but pushes "
                    "re-reads onto tape; lazy is the mirror image")
    results = {}
    for name, threshold in STRATEGIES.items():
        results[name] = run_strategy(threshold)
        cost, latency, trimmed = results[name]
        report.row(name, threshold, cost, latency, trimmed)

    aggressive = results["aggressive"]
    lazy = results["lazy"]
    assert aggressive[0] < lazy[0]            # cheaper retention
    assert aggressive[1] > lazy[1]            # slower re-reads
    assert aggressive[2] > lazy[2]            # more trimmed copies
    report.conclusion = (
        f"aggressive: {lazy[0] / aggressive[0]:.1f}x cheaper, "
        f"{aggressive[1] / max(lazy[1], 1e-9):.0f}x slower re-reads — "
        "the policy knob owns a real business tradeoff")

    benchmark.pedantic(run_strategy, args=(0.5,), rounds=3, iterations=1)
    benchmark.extra_info["results"] = {
        name: {"cost": round(cost, 2), "latency_s": round(latency, 2)}
        for name, (cost, latency, _) in results.items()}

"""E25: federated multi-zone datagrid — index scaling & chaos survival.

The federation subsystem (:mod:`repro.federation`) makes two measurable
claims and one safety claim:

* **sharded-index scaling** — a two-tier RLS lookup touches exactly one
  shard (``crc32(guid) % n_shards``) no matter how large the federation
  grows, so its per-lookup cost stays ~flat from 10k to 1M objects while
  the single-flat-catalog baseline's scan cost grows linearly. At 1M
  objects the sharded lookup must be at least **10x** faster, with the
  one-shard accounting asserted on every answer.
* **stale but never wrong** — every locate answer is re-verified against
  the authoritative per-zone catalogs; false positives cost a wasted
  query, never a phantom location.
* **chaos survival** — a ≥10-seed sweep of cross-zone copy workloads
  under zone outages and bridge degradations must hold every federation
  invariant (no lost replicas, zero wrong RLS answers, terminal copy
  outcomes, post-flush convergence), and the sweep fingerprint must
  match ``federation_chaos_baseline.sha256`` — cross-zone chaos is
  seeded and bit-reproducible.

Results land in ``BENCH_federation.json`` at the repo root.

CI smoke knobs (all optional): ``FEDERATION_BENCH_SIZES`` (comma list)
shrinks the index scaling sweep, ``FEDERATION_CHAOS_SEEDS`` shrinks the
chaos sweep — the hard gates only fire at the default shapes.
"""

import json
import os
import time
from pathlib import Path

from _helpers import BenchGrid  # noqa: F401  (sys.path side effect only)
from repro.federation import (
    FlatReplicaDirectory,
    LocalReplicaCatalog,
    ReplicaLocation,
    ReplicaLocationService,
    default_federation_seeds,
    run_federation_sweep,
    sweep_fingerprint,
)

_REPO_ROOT = Path(__file__).resolve().parents[1]
_RESULT_PATH = _REPO_ROOT / "BENCH_federation.json"

SPEEDUP_GATE = 10.0
DEFAULT_SIZES = "10000,100000,1000000"
N_ZONES = 8
N_SHARDS = 64
#: Sharded probe count per size; the flat baseline probe count shrinks
#: with size so its total scan work stays bounded (the per-lookup mean
#: is what's compared).
SHARDED_PROBES = 200
FLAT_SCAN_BUDGET = 2_000_000
#: The sharded per-lookup cost may grow at most this factor from the
#: smallest to the largest federation to count as ~flat.
FLATNESS_TOLERANCE = 3.0


def _sizes() -> list:
    raw = os.environ.get("FEDERATION_BENCH_SIZES", "") or DEFAULT_SIZES
    return [int(x) for x in raw.split(",") if x.strip()]


def _build_federation_index(total_objects: int):
    """A synthetic federation of ``N_ZONES`` zones holding
    ``total_objects`` guids in all, both as a sharded RLS and as the
    flat single-catalog baseline over the same entries."""
    service = ReplicaLocationService(n_shards=N_SHARDS)
    flat = FlatReplicaDirectory()
    per_zone = total_objects // N_ZONES
    guids = []
    for z in range(N_ZONES):
        zone = f"z{z}"
        lrc = LocalReplicaCatalog(zone)
        service.add_zone(lrc, publish=False)
        home = (ReplicaLocation(zone, f"{zone}-d0", f"{zone}-d0-disk",
                                f"{zone}-d0-disk-1"),)
        for i in range(per_zone):
            guid = f"guid-{zone}-{i:08d}"
            lrc._static[guid] = home   # bulk load: skip listener dispatch
            flat.add(guid, home)
            guids.append(guid)
        service.publish_zone(zone)
    return service, flat, guids


def _probe_guids(guids: list, count: int) -> list:
    step = max(1, len(guids) // count)
    return guids[::step][:count]


def _measure(locate, probes: list) -> float:
    """Mean wall seconds per lookup."""
    start = time.perf_counter()
    for guid in probes:
        locate(guid)
    return (time.perf_counter() - start) / len(probes)


def test_e25_sharded_rls_lookup_scales_flat(benchmark, experiment):
    sizes = _sizes()
    full_size = sizes == [int(x) for x in DEFAULT_SIZES.split(",")]

    report = experiment(
        "E25a", "two-tier RLS vs flat catalog: lookup cost vs federation "
        "size",
        header=["objects", "sharded_us", "flat_us", "speedup",
                "index_kb", "fp"],
        expectation=f"sharded lookup ~flat with size and >= "
                    f"{SPEEDUP_GATE:.0f}x the flat scan at the largest "
                    "federation")

    rows = []
    for total in sizes:
        service, flat, guids = _build_federation_index(total)
        probes = _probe_guids(guids, SHARDED_PROBES)
        # Shard-touch accounting: every answer comes from exactly one
        # shard, checks at most one digest per zone, and is verified.
        for guid in probes[:32]:
            result = service.locate(guid)
            assert result.found, guid
            assert result.shards_touched == 1
            assert result.digests_checked <= N_ZONES
            assert all(location.zone == guid.split("-")[1]
                       for location in result.locations)
        assert service.shards_touched == service.lookups

        sharded_s = _measure(service.locate, probes)
        flat_probes = _probe_guids(
            guids, max(2, FLAT_SCAN_BUDGET // max(total, 1)))
        flat_s = _measure(flat.locate, flat_probes)
        speedup = flat_s / sharded_s
        rows.append({
            "objects": total,
            "zones": N_ZONES,
            "n_shards": N_SHARDS,
            "sharded_us": round(sharded_s * 1e6, 3),
            "flat_us": round(flat_s * 1e6, 3),
            "speedup": round(speedup, 2),
            "index_bytes": service.index.size_bytes,
            "false_positives": service.false_positives,
        })
        report.row(total, round(sharded_s * 1e6, 2),
                   round(flat_s * 1e6, 2), round(speedup, 1),
                   round(service.index.size_bytes / 1024, 1),
                   service.false_positives)

    flatness = rows[-1]["sharded_us"] / rows[0]["sharded_us"]
    report.conclusion = (
        f"sharded lookup grows {flatness:.2f}x over a "
        f"{rows[-1]['objects'] // rows[0]['objects']}x size span while "
        f"the flat scan falls behind {rows[-1]['speedup']:.0f}x")

    service, _, guids = _build_federation_index(sizes[0])
    probes = _probe_guids(guids, min(SHARDED_PROBES, 64))
    benchmark.pedantic(lambda: [service.locate(g) for g in probes],
                       rounds=3, iterations=1)
    benchmark.extra_info["speedup_at_max"] = rows[-1]["speedup"]

    _merge_results(rls_scaling={
        "sizes": sizes,
        "sharded_probes": SHARDED_PROBES,
        "rows": rows,
        "flatness": round(flatness, 3),
        "gate": SPEEDUP_GATE,
    })

    if full_size:
        assert rows[-1]["speedup"] >= SPEEDUP_GATE, (
            f"sharded RLS only {rows[-1]['speedup']:.1f}x over the flat "
            f"catalog at {rows[-1]['objects']} objects "
            f"(gate: {SPEEDUP_GATE:.0f}x)")
        assert flatness <= FLATNESS_TOLERANCE, (
            f"sharded lookup cost grew {flatness:.2f}x from "
            f"{rows[0]['objects']} to {rows[-1]['objects']} objects — "
            "not flat")


def test_e25_federation_chaos_sweep_survives_and_is_pinned(benchmark,
                                                           experiment):
    seeds = default_federation_seeds()
    report = experiment(
        "E25b", "cross-zone chaos sweep: survival invariants + pinned "
        "fingerprint",
        header=["seed", "ok", "copies", "failed", "faults", "stale",
                "wrong"],
        expectation="every seed holds the federation invariants; the "
                    "sweep fingerprint matches "
                    "federation_chaos_baseline.sha256")

    reports = run_federation_sweep(seeds=seeds)
    for r in reports:
        report.row(r.seed, r.ok, r.copies_completed, r.copies_failed,
                   r.faults_begun, r.stale_misses, r.wrong_answers)
    assert all(r.ok for r in reports), [
        (r.seed, r.violations) for r in reports if not r.ok]
    assert all(r.wrong_answers == 0 for r in reports)
    assert any(r.faults_begun > 0 for r in reports)

    fingerprint = sweep_fingerprint(reports)
    baseline_path = Path(__file__).with_name(
        "federation_chaos_baseline.sha256")
    comparable = (len(seeds) >= 10
                  and not os.environ.get("FEDERATION_CHAOS_SEEDS"))
    pinned = None
    if comparable and baseline_path.exists():
        pinned = fingerprint == baseline_path.read_text().strip()
        assert pinned, (
            f"{len(seeds)}-seed federation chaos sweep drifted from the "
            f"pinned baseline ({fingerprint[:12]} vs recorded)")

    report.conclusion = (
        f"{len(seeds)} seeds survived; fingerprint "
        f"{fingerprint[:12]}"
        + (" matches the pinned baseline" if pinned
           else " recorded (shrunk sweep: baseline not comparable)"))

    benchmark.pedantic(lambda: run_federation_sweep(seeds=seeds[:1]),
                       rounds=1, iterations=1)
    benchmark.extra_info["fingerprint12"] = fingerprint[:12]

    _merge_results(chaos_sweep={
        "seeds": len(seeds),
        "fingerprint_sha256": fingerprint,
        "all_ok": all(r.ok for r in reports),
        "copies_completed": sum(r.copies_completed for r in reports),
        "copies_failed": sum(r.copies_failed for r in reports),
        "stale_misses": sum(r.stale_misses for r in reports),
        "wrong_answers": sum(r.wrong_answers for r in reports),
    }, pinned_baseline_matched=pinned)


def _merge_results(**sections) -> None:
    payload = {}
    if _RESULT_PATH.exists():
        payload = json.loads(_RESULT_PATH.read_text())
    payload.update(sections)
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

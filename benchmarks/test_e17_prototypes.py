"""E17: the paper's two reported prototype runs (§4).

"Datagridflow for data-integrity and MD5 calculation was described in DGL
and executed by SRB Matrix servers for the UCSD Library data. SCEC
workflow for ingesting files into the SRB datagrid was also performed
using DGL." Both pipelines run end-to-end here — DGL documents through
the DfMS over the simulated grid — and the checks are completeness ones:
every file ingested/verified, all state queryable, provenance recorded.
"""

from _helpers import BenchGrid  # noqa: F401  (sys.path side effect only)
from repro.baselines import dgl_integrity_flow
from repro.dgl import DataGridRequest, flow_builder
from repro.workloads import scec_scenario, ucsd_library_scenario

N_SCEC_FILES = 10
N_LIBRARY_FILES = 8


def submit(scenario, user, flow, vo):
    def go():
        response = yield scenario.env.process(scenario.server.submit_sync(
            DataGridRequest(user=user.qualified_name,
                            virtual_organization=vo, body=flow)))
        return response

    response = scenario.run(go())
    assert response.body.state.value == "completed", response.body.error
    return response


def run_scec():
    scenario = scec_scenario(n_files=N_SCEC_FILES)
    manifest = scenario.extras["manifest"]
    indices = "[" + ", ".join(str(i) for i in range(len(manifest))) + "]"
    sizes = "[" + ", ".join(f"{e['size']:.0f}" for e in manifest) + "]"
    names = "[" + ", ".join(f"'{e['name']}'" for e in manifest) + "]"
    flow = (flow_builder("scec-ingestion")
            .for_each("i", items=indices)
            .step("ingest", "srb.put", assign_to="path",
                  path="/scec/runs/${" + f"{names}[i]" + "}",
                  size="${" + f"{sizes}[i]" + "}",
                  resource="sdsc-gpfs", source_domain="scec")
            .step("archive", "srb.replicate", path="${path}",
                  resource="sdsc-tape")
            .build())
    submit(scenario, scenario.users["scientist"], flow, "scec")
    ingested = list(scenario.dgms.namespace.iter_objects("/scec/runs"))
    archived = sum(1 for obj in ingested
                   if any(r.physical_name == "sdsc-tape-1"
                          for r in obj.good_replicas()))
    provenance = len(scenario.provenance.query(category="dgms"))
    return scenario.env.now, len(ingested), archived, provenance


def run_library():
    scenario = ucsd_library_scenario(n_files=N_LIBRARY_FILES)
    flow = dgl_integrity_flow("/library/ingest", "library-tape")
    submit(scenario, scenario.users["librarian"], flow, "ucsd-lib")
    objects = list(scenario.dgms.namespace.iter_objects("/library/ingest"))
    verified = sum(1 for obj in objects
                   if obj.checksum and
                   obj.metadata.get("md5") == obj.checksum)
    archived = sum(1 for obj in objects
                   if any(r.physical_name == "library-tape-1"
                          for r in obj.good_replicas()))
    return scenario.env.now, verified, archived


def test_e17_prototypes(benchmark, experiment):
    report = experiment(
        "E17", "The §4 prototype runs, end to end",
        header=["prototype", "virtual_s", "files_ok", "archived",
                "provenance"],
        expectation="both reported DGL prototype pipelines complete with "
                    "all files processed and audited")
    scec_time, ingested, scec_archived, provenance = run_scec()
    report.row("SCEC ingestion", scec_time,
               f"{ingested}/{N_SCEC_FILES}", scec_archived, provenance)
    library_time, verified, library_archived = run_library()
    report.row("UCSD MD5 integrity", library_time,
               f"{verified}/{N_LIBRARY_FILES}", library_archived, "-")

    assert ingested == scec_archived == N_SCEC_FILES
    assert provenance >= 2 * N_SCEC_FILES
    assert verified == library_archived == N_LIBRARY_FILES
    report.conclusion = "both prototype datagridflows reproduce cleanly"

    benchmark.pedantic(run_library, rounds=3, iterations=1)
    benchmark.extra_info["scec_virtual_s"] = round(scec_time, 1)
    benchmark.extra_info["library_virtual_s"] = round(library_time, 1)
